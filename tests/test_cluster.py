"""Tests for the distributed sweep fabric (``repro.cluster``).

The fabric's contract, in order of importance:

* **byte-identical merge** — a distributed run produces exactly the
  table a serial run produces, for any worker count, because results
  merge idempotently by point index and metrics ride JSON (which
  round-trips floats bit-exactly);
* **fault tolerance** — a worker killed mid-shard, a worker that stops
  heartbeating, and duplicate deliveries must all leave the run correct:
  shards re-dispatch with bounded retries, evictions free the work, and
  the merge drops duplicates;
* **graceful degradation** — with no workers, ``DistributedExecutor``
  silently falls back to local execution (or fails hard on request);
* **clean shutdown** — stopping a coordinator with shards in flight
  fails the run crisply and releases every task and socket.

Workers here are real: in-process ``ClusterWorker`` tasks speaking the
actual JSONL protocol over real loopback TCP sockets.  The "hostile"
peers (silent, duplicating) are hand-rolled protocol stubs.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.cluster import (
    ClusterError,
    ClusterWorker,
    Coordinator,
    DistributedExecutor,
    Shard,
    locality_key,
    plan_shards,
)
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    decode_factory,
    decode_points,
    read_message,
    send_message,
)
from repro.errors import ConfigurationError
from repro.exec import SerialExecutor
from repro.service.endpoints import open_endpoint, parse_endpoint
from repro.sweep import ParameterSweep, SweepResult


def run(coro):
    return asyncio.run(coro)


# Factories live at module level: the wire protocol pickles them by
# reference, exactly like ParallelExecutor.
def square_factory(point):
    x = point["x"]
    return {"y": float(x * x), "seed_mod": float(point.seed % 7)}


def slow_factory(point):
    time.sleep(0.03)
    return {"y": float(point["x"] * 3 + point.seed % 5)}


def failing_factory(point):
    raise RuntimeError(f"factory exploded on x={point['x']}")


def make_sweep(xs=(1, 2, 3, 4), trials=1, base_seed=7, factory=square_factory):
    return ParameterSweep(factory, {"x": list(xs)}, trials=trials, base_seed=base_seed)


def rows_of(table):
    return [
        (dict(r.point.values), r.point.trial, r.point.seed, dict(r.metrics))
        for r in table.results
    ]


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestShardPlanning:
    def test_shards_are_locality_pure_and_bounded(self):
        sweep = ParameterSweep(
            square_factory, {"a": [1, 2], "x": [1, 2, 3, 4, 5]}, trials=1, base_seed=1
        )
        pending = list(enumerate(sweep.points()))
        shards = plan_shards(pending, shard_size=3)
        for shard in shards:
            assert len(shard) <= 3
            keys = {locality_key(point) for _, point in shard.pending}
            assert len(keys) == 1  # never mixes localities
        # Every point appears exactly once, in order.
        flat = [index for shard in shards for index in shard.indices]
        assert flat == list(range(len(pending)))

    def test_planning_is_deterministic(self):
        sweep = make_sweep(xs=range(10), trials=2)
        pending = list(enumerate(sweep.points()))
        first = plan_shards(pending, shard_size=4)
        second = plan_shards(pending, shard_size=4)
        assert [s.pending for s in first] == [s.pending for s in second]
        assert [s.id for s in first] == list(range(len(first)))

    def test_locality_groups_by_all_but_last_axis(self):
        sweep = ParameterSweep(
            square_factory, {"a": [1, 2], "x": [10, 20]}, trials=1, base_seed=3
        )
        points = sweep.points()
        # Same "a" -> same locality; different "a" -> different locality.
        assert locality_key(points[0]) == locality_key(points[1])
        assert locality_key(points[0]) != locality_key(points[2])

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            plan_shards([], shard_size=0)

    def test_single_axis_grid_chunks_contiguously(self):
        sweep = make_sweep(xs=range(7))
        shards = plan_shards(list(enumerate(sweep.points())), shard_size=3)
        assert [len(s) for s in shards] == [3, 3, 1]


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_tcp_forms(self):
        for text in ("tcp://127.0.0.1:9000", "127.0.0.1:9000"):
            endpoint = parse_endpoint(text)
            assert endpoint.is_tcp
            assert endpoint.host == "127.0.0.1"
            assert endpoint.port == 9000
            assert str(endpoint) == "tcp://127.0.0.1:9000"

    def test_unix_forms(self):
        for text in ("unix:///tmp/x.sock", "/tmp/x.sock", "relative.sock"):
            endpoint = parse_endpoint(text)
            assert not endpoint.is_tcp
            assert endpoint.path.endswith(".sock")

    def test_bad_endpoints_raise(self):
        with pytest.raises(ConfigurationError):
            parse_endpoint("")
        with pytest.raises(ConfigurationError):
            parse_endpoint("tcp://nohost")
        with pytest.raises(ConfigurationError):
            parse_endpoint("host:99999")


# ----------------------------------------------------------------------
# byte-identical distributed execution
# ----------------------------------------------------------------------
class TestDistributedIdentity:
    def test_two_workers_match_serial_exactly(self):
        sweep = make_sweep(xs=(1, 2, 3, 4, 5), trials=2)
        serial = make_sweep(xs=(1, 2, 3, 4, 5), trials=2).run(
            executor=SerialExecutor()
        )
        executor = DistributedExecutor(workers=2, shard_size=2)
        table = sweep.run(executor=executor)
        assert rows_of(table) == rows_of(serial)
        # Bit-exact, not approximately equal: compare the JSON bytes.
        assert json.dumps(rows_of(table)) == json.dumps(rows_of(serial))
        assert executor.last_run is not None
        assert executor.last_run["fallback"] is False
        assert executor.last_run["workers"] == 2

    def test_worker_killed_mid_run_still_matches_serial(self):
        sweep = make_sweep(xs=range(8), factory=slow_factory)
        serial = make_sweep(xs=range(8), factory=slow_factory).run(
            executor=SerialExecutor()
        )

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending,
                slow_factory,
                shard_size=2,
                heartbeat_timeout=5.0,
                retry_backoff_s=0.02,
                steal_after_s=None,
            )
            address = await coordinator.start("tcp://127.0.0.1:0")
            victim = asyncio.ensure_future(
                ClusterWorker(address, name="victim", heartbeat_interval=0.2).run()
            )
            survivor = asyncio.ensure_future(
                ClusterWorker(address, name="survivor", heartbeat_interval=0.2).run()
            )
            try:
                while coordinator.merged_points < 1:
                    await asyncio.sleep(0.005)
                victim.cancel()  # hard kill: connection drops mid-shard
                results = await asyncio.wait_for(coordinator.results(), 30)
            finally:
                await coordinator.stop()
                for task in (victim, survivor):
                    task.cancel()
                await asyncio.gather(victim, survivor, return_exceptions=True)
            return results, coordinator.redispatches

        results, redispatches = run(scenario())
        points = sweep.points()
        table = sweep.build_table(
            [SweepResult(point=points[i], metrics=m) for i, m, _ in results]
        )
        assert rows_of(table) == rows_of(serial)
        # The victim held a shard when it died, so at least one shard
        # must have travelled the re-dispatch path.
        assert redispatches >= 1

    def test_distributed_under_the_sweep_service(self):
        from repro.service import SweepService

        async def scenario():
            async with SweepService(
                executor=DistributedExecutor(workers=2, shard_size=2)
            ) as service:
                job = service.submit(make_sweep(xs=(1, 2, 3)))
                await job.wait()
                return job.result()

        table = run(scenario())
        serial = make_sweep(xs=(1, 2, 3)).run(executor=SerialExecutor())
        assert rows_of(table) == rows_of(serial)


# ----------------------------------------------------------------------
# fault tolerance
# ----------------------------------------------------------------------
class TestFaultTolerance:
    def test_heartbeat_timeout_evicts_silent_worker(self):
        sweep = make_sweep(xs=range(4))
        events = []

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending,
                square_factory,
                shard_size=2,
                heartbeat_timeout=0.3,
                retry_backoff_s=0.02,
                steal_after_s=None,
                on_event=events.append,
            )
            address = await coordinator.start("tcp://127.0.0.1:0")

            # A hostile stub: registers, accepts a shard, then goes silent.
            reader, writer = await open_endpoint(address)
            await send_message(
                writer,
                {"type": "register", "worker": "zombie", "slots": 1,
                 "version": PROTOCOL_VERSION},
            )
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            shard_msg = await read_message(reader)
            assert shard_msg["type"] == "shard"

            # Now a real worker joins and must end up doing everything.
            worker = asyncio.ensure_future(
                ClusterWorker(address, name="real", heartbeat_interval=0.1).run()
            )
            try:
                results = await asyncio.wait_for(coordinator.results(), 30)
            finally:
                await coordinator.stop()
                worker.cancel()
                await asyncio.gather(worker, return_exceptions=True)
                writer.close()
            return results, coordinator.redispatches

        results, redispatches = run(scenario())
        assert len(results) == 4
        assert redispatches >= 1
        lost = [e for e in events if e.kind == "worker-lost"]
        assert any(e["worker"] == "zombie" for e in lost)
        assert any("heartbeat" in str(e.get("reason")) for e in lost)

    def test_duplicate_deliveries_merge_idempotently(self):
        sweep = make_sweep(xs=(1, 2, 3))
        serial = make_sweep(xs=(1, 2, 3)).run(executor=SerialExecutor())

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending, square_factory, shard_size=8, heartbeat_timeout=5.0
            )
            address = await coordinator.start("tcp://127.0.0.1:0")

            # A stub worker that reports every point TWICE.
            reader, writer = await open_endpoint(address)
            await send_message(
                writer,
                {"type": "register", "worker": "stutter", "slots": 1,
                 "version": PROTOCOL_VERSION},
            )
            await read_message(reader)  # welcome
            shard_msg = await read_message(reader)
            factory = decode_factory(shard_msg["factory"])
            for index, point in decode_points(shard_msg["points"]):
                result = {
                    "type": "point-result",
                    "shard": shard_msg["shard"],
                    "index": index,
                    "metrics": dict(factory(point)),
                    "elapsed_s": 0.001,
                    "cached": False,
                }
                await send_message(writer, result)
                await send_message(writer, result)  # the duplicate
            await send_message(writer, {"type": "shard-done",
                                        "shard": shard_msg["shard"]})
            try:
                results = await asyncio.wait_for(coordinator.results(), 30)
            finally:
                await coordinator.stop()
                writer.close()
            return results, coordinator.duplicate_results

        results, duplicates = run(scenario())
        assert duplicates == 3  # one duplicate per point, all dropped
        assert [(i, m) for i, m, _ in results] == [
            (i, dict(r.metrics)) for i, r in enumerate(serial.results)
        ]

    def test_failing_factory_exhausts_retries_and_fails_the_run(self):
        sweep = make_sweep(xs=(1,), factory=failing_factory)

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending,
                failing_factory,
                shard_size=1,
                heartbeat_timeout=5.0,
                max_retries=1,
                retry_backoff_s=0.01,
            )
            address = await coordinator.start("tcp://127.0.0.1:0")
            worker = asyncio.ensure_future(
                ClusterWorker(address, name="w", heartbeat_interval=0.1).run()
            )
            try:
                with pytest.raises(ClusterError) as excinfo:
                    await asyncio.wait_for(coordinator.results(), 30)
            finally:
                await coordinator.stop()
                worker.cancel()
                await asyncio.gather(worker, return_exceptions=True)
            return str(excinfo.value)

        message = run(scenario())
        assert "factory exploded" in message
        assert "attempt" in message

    def test_coordinator_shutdown_with_inflight_shards(self):
        sweep = make_sweep(xs=range(6), factory=slow_factory)

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending, slow_factory, shard_size=2, heartbeat_timeout=5.0
            )
            address = await coordinator.start("tcp://127.0.0.1:0")
            worker_task = asyncio.ensure_future(
                ClusterWorker(address, name="w", heartbeat_interval=0.1).run()
            )
            while coordinator.merged_points < 1:  # shards are in flight
                await asyncio.sleep(0.005)
            await coordinator.stop()
            with pytest.raises(ClusterError) as excinfo:
                await coordinator.results()
            # The worker must notice the shutdown and exit on its own.
            await asyncio.wait_for(worker_task, 10)
            return str(excinfo.value)

        message = run(scenario())
        assert "unresolved" in message

    def test_straggler_shard_is_stolen_by_idle_worker(self):
        sweep = make_sweep(xs=range(2))
        events = []

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending,
                square_factory,
                shard_size=1,
                heartbeat_timeout=30.0,  # the straggler must NOT be evicted
                steal_after_s=0.2,
                on_event=events.append,
            )
            address = await coordinator.start("tcp://127.0.0.1:0")

            # The straggler: takes its shard, heartbeats forever, never
            # delivers a result.
            reader, writer = await open_endpoint(address)
            await send_message(
                writer,
                {"type": "register", "worker": "straggler", "slots": 1,
                 "version": PROTOCOL_VERSION},
            )
            await read_message(reader)  # welcome
            straggler_shard = await read_message(reader)

            async def keep_beating():
                while True:
                    await asyncio.sleep(0.05)
                    await send_message(
                        writer, {"type": "heartbeat", "worker": "straggler"}
                    )

            beat = asyncio.ensure_future(keep_beating())
            worker = asyncio.ensure_future(
                ClusterWorker(address, name="fast", heartbeat_interval=0.1).run()
            )
            try:
                results = await asyncio.wait_for(coordinator.results(), 30)
            finally:
                beat.cancel()
                await coordinator.stop()
                worker.cancel()
                await asyncio.gather(beat, worker, return_exceptions=True)
                writer.close()
            return results, coordinator.steals, straggler_shard["shard"]

        results, steals, straggler_shard_id = run(scenario())
        assert len(results) == 2
        assert steals >= 1
        stolen = [e for e in events if e.kind == "shard-stolen"]
        assert any(e["shard"] == straggler_shard_id for e in stolen)

    def test_coordinator_restart_with_stale_worker_still_heartbeating(self):
        """A coordinator dies mid-run and a replacement takes over while
        a worker from the old incarnation is still alive and beating at
        the dead socket.  The stale worker must not disturb the new run:
        the merge is byte-identical to serial and the replacement's
        fault counters stay clean."""
        from repro.obs import MetricsRegistry, use_registry

        sweep = make_sweep(xs=(1, 2, 3, 4))
        serial = make_sweep(xs=(1, 2, 3, 4)).run(executor=SerialExecutor())
        registry = MetricsRegistry()

        async def scenario():
            pending = list(enumerate(sweep.points()))
            first = Coordinator(
                pending, square_factory, shard_size=2, heartbeat_timeout=5.0
            )
            address_a = await first.start("tcp://127.0.0.1:0")

            # The stale worker: registers with the first incarnation and
            # holds a shard when that coordinator dies.
            reader, writer = await open_endpoint(address_a)
            await send_message(
                writer,
                {"type": "register", "worker": "stale", "slots": 1,
                 "version": PROTOCOL_VERSION},
            )
            await read_message(reader)  # welcome
            shard_msg = await read_message(reader)
            assert shard_msg["type"] == "shard"
            await first.stop("simulated crash")
            with pytest.raises(ClusterError):
                await first.results()

            # It keeps heartbeating into the dead connection — exactly
            # what a worker that missed the shutdown frame would do.
            async def beat_at_the_void():
                while True:
                    await asyncio.sleep(0.02)
                    try:
                        await send_message(
                            writer, {"type": "heartbeat", "worker": "stale"}
                        )
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        await asyncio.sleep(0.02)

            stale_beat = asyncio.ensure_future(beat_at_the_void())

            # The replacement incarnation reruns the same pending points
            # on a fresh socket with a fresh worker.
            second = Coordinator(
                pending, square_factory, shard_size=2, heartbeat_timeout=5.0
            )
            address_b = await second.start("tcp://127.0.0.1:0")
            worker = asyncio.ensure_future(
                ClusterWorker(address_b, name="fresh", heartbeat_interval=0.1).run()
            )
            try:
                results = await asyncio.wait_for(second.results(), 30)
            finally:
                stale_beat.cancel()
                await second.stop()
                worker.cancel()
                await asyncio.gather(stale_beat, worker, return_exceptions=True)
                writer.close()
            return results, second

        with use_registry(registry):
            results, second = run(scenario())
        points = sweep.points()
        table = sweep.build_table(
            [SweepResult(point=points[i], metrics=m) for i, m, _ in results]
        )
        assert json.dumps(rows_of(table)) == json.dumps(rows_of(serial))
        # The stale worker never reached the replacement: no duplicate
        # merges, no re-dispatches, and only the fresh worker joined it.
        assert second.duplicate_results == 0
        assert second.redispatches == 0
        assert second.workers == ()  # all cleaned up after stop
        # Registry view consistency: both incarnations' joins accumulate
        # on the shared counter, while each instance's views stay local.
        assert registry.counter("cluster.workers_joined").value == 2
        assert registry.counter("cluster.redispatches").value == 0

    def test_immediate_steal_races_normal_completion(self):
        """``steal_after_s=0`` makes every lone in-flight shard stealable
        the moment a worker goes idle, so duplicate dispatches race the
        original's completion.  Whichever copy reports first must win,
        late copies must drop, and the merge must stay byte-identical."""
        from repro.obs import MetricsRegistry, use_registry

        xs = tuple(range(6))
        sweep = make_sweep(xs=xs, factory=slow_factory)
        serial = make_sweep(xs=xs, factory=slow_factory).run(
            executor=SerialExecutor()
        )
        registry = MetricsRegistry()

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending,
                slow_factory,
                shard_size=3,
                heartbeat_timeout=30.0,
                steal_after_s=0.0,  # immediate: steals race completions
            )
            address = await coordinator.start("tcp://127.0.0.1:0")
            workers = [
                asyncio.ensure_future(
                    ClusterWorker(
                        address, name=f"racer-{i}", heartbeat_interval=0.1
                    ).run()
                )
                for i in range(3)
            ]
            try:
                results = await asyncio.wait_for(coordinator.results(), 30)
            finally:
                await coordinator.stop()
                for task in workers:
                    task.cancel()
                await asyncio.gather(*workers, return_exceptions=True)
            return results, coordinator

        with use_registry(registry):
            results, coordinator = run(scenario())
        points = sweep.points()
        table = sweep.build_table(
            [SweepResult(point=points[i], metrics=m) for i, m, _ in results]
        )
        # The race changed nothing observable: byte-identical merge.
        assert json.dumps(rows_of(table)) == json.dumps(rows_of(serial))
        # Two shards, three workers: the idle one must have stolen, and
        # stolen copies never travel the retry path.
        assert coordinator.steals >= 1
        assert coordinator.redispatches == 0
        # Every duplicate the race produced was counted and dropped —
        # never more than one extra delivery per point.
        assert 0 <= coordinator.duplicate_results <= len(xs)
        # Views agree with the shared registry instruments.
        assert registry.counter("cluster.steals").value == coordinator.steals
        assert (
            registry.counter("cluster.duplicate_results").value
            == coordinator.duplicate_results
        )


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_no_workers_falls_back_to_local_execution(self):
        sweep = make_sweep(xs=(1, 2, 3))
        serial = make_sweep(xs=(1, 2, 3)).run(executor=SerialExecutor())
        executor = DistributedExecutor(workers=0, wait_workers_s=0.1)
        table = sweep.run(executor=executor)
        assert rows_of(table) == rows_of(serial)
        assert executor.last_run == {"fallback": True, "workers": 0}

    def test_no_workers_with_fallback_disabled_raises(self):
        sweep = make_sweep(xs=(1, 2))
        executor = DistributedExecutor(
            workers=0, wait_workers_s=0.1, fallback=False
        )
        with pytest.raises(ClusterError):
            sweep.run(executor=executor)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedExecutor(workers=-1)
        with pytest.raises(ConfigurationError):
            DistributedExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            Coordinator([], square_factory, heartbeat_timeout=0.0)
        with pytest.raises(ConfigurationError):
            Coordinator([], square_factory, max_retries=-1)

    def test_empty_grid_completes_without_workers(self):
        async def scenario():
            coordinator = Coordinator([], square_factory)
            assert coordinator.finished
            return await coordinator.results()

        assert run(scenario()) == []


# ----------------------------------------------------------------------
# caching across the wire
# ----------------------------------------------------------------------
class TestWorkerCache:
    def test_worker_side_cache_answers_repeat_points(self, tmp_path):
        xs = (1, 2, 3, 4)
        first = DistributedExecutor(
            workers=2, shard_size=2, cache_dir=str(tmp_path / "wcache")
        )
        table_a = make_sweep(xs=xs).run(executor=first)

        second = DistributedExecutor(
            workers=2, shard_size=2, cache_dir=str(tmp_path / "wcache")
        )
        table_b = make_sweep(xs=xs).run(executor=second)
        assert rows_of(table_a) == rows_of(table_b)
        assert second.last_run["remote_cache_hits"] == len(xs)
