"""Fault-injection tests: the crash-safe, multi-tenant sweep service.

The service's new contract, proven fault by fault:

* **crash safety** — a ``serve --state-dir`` process SIGKILL-ed
  mid-sweep, restarted, completes the same job set byte-identically to
  an uninterrupted run (the WAL + shared result cache together make
  recovery exact, not approximate);
* **WAL robustness** — a torn final record (crashed writer) or junk
  bytes (disk rot) cost exactly the damaged record, never the log;
* **isolation** — a client that dies mid-frame takes down its
  connection, not the service;
* **auth** — an unauthenticated or unknown-token client gets a typed
  ``deny`` frame (:class:`ServiceDeniedError`), an over-quota one a
  typed ``quota-exceeded`` frame (:class:`ServiceQuotaError`), and
  admitted work is unaffected;
* **tenancy** — cancel is owner-scoped (guessable ``job-N`` ids cannot
  be swept by another tenant), watch feeds are tenant-scoped unless
  the account is an admin, and the points quota is enforced *before*
  the grid cross-product is materialised;
* **fairness** — tenants share the queue round-robin, so a storm from
  one cannot starve another;
* **clock skew** — a stepped coordinator clock evicts only the
  genuinely silent worker, and the fleet metrics merge survives the
  eviction.

The SIGKILL path drives a real child process through the real CLI; the
rest runs in-process against real sockets.  Fault primitives live in
``tests/_faults.py``.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading

import pytest

from repro.cluster import ClusterWorker, Coordinator
from repro.cluster.protocol import PROTOCOL_VERSION, read_message, send_message
from repro.exec import ResultCache
from repro.obs import ManualClock, MetricsRegistry
from repro.service import (
    AuthPolicy,
    ClientAccount,
    JobStore,
    Quota,
    ServiceClient,
    ServiceDeniedError,
    ServiceQuotaError,
    SweepServer,
    SweepService,
    SweepSpec,
)
from repro.service.client import submit_and_stream
from repro.service.endpoints import open_endpoint
from repro.sweep import ParameterSweep

from tests._faults import (
    ServiceProcess,
    append_junk,
    poll_metric,
    send_partial_frame,
    truncate_tail,
    wait_for,
    wal_path,
)
from tests._replay import assert_replay


def run(coro):
    return asyncio.run(coro)


def square_factory(point):
    x = point["x"]
    return {"y": float(x * x)}


def make_sweep(xs=(1, 2, 3, 4), base_seed=7) -> ParameterSweep:
    return ParameterSweep(square_factory, {"x": list(xs)}, base_seed=base_seed)


#: A spec whose job runs a couple of seconds — long enough to SIGKILL
#: the service mid-sweep with most points still pending.
CRASH_SPEC = SweepSpec(
    grid={"d": [2, 3, 4, 6]},
    channel="eviction",
    variant="fast",
    bits=16,
    trials=24,
)

#: A tiny spec for requests that only need to be *admitted* quickly.
TINY_SPEC = SweepSpec(
    grid={"d": [2]}, channel="eviction", variant="fast", bits=8
)


def canonical_table(final) -> str:
    """The job-done frame's table as canonical JSON (byte-comparable)."""
    return json.dumps(
        {
            "parameters": final.get("parameters"),
            "metrics": final.get("metrics"),
            "rows": final.get("rows"),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


# ----------------------------------------------------------------------
# crash safety: the acceptance test
# ----------------------------------------------------------------------
class TestCrashSafety:
    def test_sigkill_mid_sweep_recovers_byte_identically(self, tmp_path):
        """Kill ``serve --state-dir`` mid-job; the restart finishes it.

        Run A (uninterrupted) pins the expected table.  Run B is
        SIGKILL-ed after at least one point lands, restarted on the
        same state and cache directories, and must complete the
        recovered job on its own; resubmitting the same spec then
        answers entirely from cache, byte-identical to run A.
        """
        sock_a = str(tmp_path / "a.sock")
        with ServiceProcess(
            sock_a,
            state_dir=str(tmp_path / "state_a"),
            cache_dir=str(tmp_path / "cache_a"),
        ):
            baseline = submit_and_stream(
                sock_a, CRASH_SPEC, events_out=io.StringIO()
            )
        assert baseline.kind == "job-done"
        assert baseline.get("status") == "ok"

        sock_b = str(tmp_path / "b.sock")
        state_b = str(tmp_path / "state_b")
        cache_b = str(tmp_path / "cache_b")
        crashed = ServiceProcess(sock_b, state_dir=state_b, cache_dir=cache_b)
        crashed.start()
        crashed.wait_ready()

        # Stream the submit from a throwaway thread; the SIGKILL will
        # sever its connection mid-stream, which is part of the fault.
        def doomed_submit():
            try:
                submit_and_stream(
                    sock_b, CRASH_SPEC, events_out=io.StringIO()
                )
            except Exception:
                pass  # the crash is the point

        submitter = threading.Thread(target=doomed_submit, daemon=True)
        submitter.start()
        poll_metric(sock_b, "service.points_computed", minimum=1.0)
        crashed.kill()
        submitter.join(timeout=10)

        # The WAL survived the kill with the job still pending.
        assert wal_path(state_b).exists()

        restarted = ServiceProcess(
            sock_b, state_dir=state_b, cache_dir=cache_b
        )
        restarted.start()
        try:
            restarted.wait_ready()
            # The restart reloaded the queue and resumes on its own —
            # no resubmission needed for the job to finish.
            recovered = poll_metric(
                sock_b, "service.jobs_recovered", minimum=1.0
            )
            assert recovered >= 1
            poll_metric(
                sock_b, "service.jobs_finished", minimum=1.0, timeout_s=60
            )

            # Same spec again: every point is already in the shared
            # cache, and the table is byte-identical to run A's.
            final = submit_and_stream(
                sock_b, CRASH_SPEC, events_out=io.StringIO()
            )
        finally:
            restarted.terminate()
        assert final.kind == "job-done"
        assert final.get("status") == "ok"
        assert final.get("computed") == 0
        assert final.get("cache_hits") == final.get("points")
        assert canonical_table(final) == canonical_table(baseline)

    def test_in_process_recovery_replays_byte_identically(self, tmp_path):
        """An unstarted store's queue replays into an identical table.

        The pinned replay fixture holds the uninterrupted run; the
        recovered run must capture byte-identically against it.
        """
        spec = SweepSpec(
            grid={"d": [2, 4]}, channel="eviction", variant="fast", bits=8
        )

        async def uninterrupted():
            service = SweepService(
                cache=ResultCache(str(tmp_path / "cache_ref"))
            )
            service.start()
            try:
                job = service.submit(
                    spec.build_sweep(), spec_payload=spec.to_dict()
                )
                await job.wait()
                return job.result()
            finally:
                await service.stop()

        reference = run(uninterrupted())
        assert_replay("service_crash_recovery", reference)

        # "Crash": jobs hit the WAL but the process dies before any
        # compute — no close, no checkpoint, just an abandoned handle.
        doomed = SweepService(store=JobStore(str(tmp_path / "state")))
        doomed.submit(spec.build_sweep(), spec_payload=spec.to_dict())

        async def recovered_run():
            service = SweepService(
                store=JobStore(str(tmp_path / "state")),
                cache=ResultCache(str(tmp_path / "cache_rec")),
            )
            recovered = await service.recover()
            assert [job.id for job in recovered] == ["job-1"]
            service.start()
            try:
                job = service.jobs["job-1"]
                await job.wait()
                return job.result()
            finally:
                await service.stop()

        table = run(recovered_run())
        assert_replay("service_crash_recovery", table)


# ----------------------------------------------------------------------
# WAL robustness
# ----------------------------------------------------------------------
class TestWalFaults:
    def _seed_store(self, state_dir, jobs: int = 3) -> None:
        service = SweepService(store=JobStore(str(state_dir)))
        for _ in range(jobs):
            service.submit(
                TINY_SPEC.build_sweep(), spec_payload=TINY_SPEC.to_dict()
            )
        service.store.close()

    def test_torn_tail_costs_exactly_the_final_record(self, tmp_path):
        self._seed_store(tmp_path, jobs=3)
        truncate_tail(wal_path(tmp_path), 7)
        state = JobStore(str(tmp_path)).replay()
        assert state.dropped == 1
        assert sorted(state.jobs) == ["job-1", "job-2"]
        assert all(stored.pending for stored in state.jobs.values())

    def test_junk_tail_is_dropped_not_fatal(self, tmp_path):
        self._seed_store(tmp_path, jobs=2)
        append_junk(wal_path(tmp_path))
        state = JobStore(str(tmp_path)).replay()
        assert state.dropped == 1
        assert sorted(state.jobs) == ["job-1", "job-2"]

    def test_unloadable_spec_costs_one_job_not_the_restart(self, tmp_path):
        """A record whose JSON parses but whose spec is damaged is skipped.

        Bit rot *inside* the spec payload (or a schema from another
        version) must cost exactly that job — not raise out of
        ``recover()`` and crash-loop the service on every restart until
        the WAL is hand-edited.  The bad record is counted and the
        closing compaction drops it from the log for good.
        """
        self._seed_store(tmp_path, jobs=2)
        wal = wal_path(tmp_path)
        lines = []
        for line in wal.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            if record.get("record") == "job" and record["id"] == "job-1":
                record["spec"]["channel"] = "tlb"  # damaged: unknown channel
            lines.append(json.dumps(record))
        wal.write_text("\n".join(lines) + "\n", encoding="utf-8")

        async def scenario():
            registry = MetricsRegistry()
            service = SweepService(
                store=JobStore(str(tmp_path)), registry=registry
            )
            recovered = await service.recover()
            service.start()
            try:
                statuses = await asyncio.gather(
                    *(job.wait() for job in recovered)
                )
            finally:
                await service.stop()
            return recovered, statuses, registry.snapshot()

        recovered, statuses, snapshot = run(scenario())
        assert [job.id for job in recovered] == ["job-2"]
        assert all(status.value == "ok" for status in statuses)
        by_name = {m["name"]: m.get("value") for m in snapshot["metrics"]}
        assert by_name.get("service.recover_dropped") == 1
        assert "job-1" not in JobStore(str(tmp_path)).replay().jobs

    def test_recovery_from_torn_tail_still_serves(self, tmp_path):
        """A service restarted on a torn WAL resumes the surviving jobs."""
        self._seed_store(tmp_path, jobs=2)
        truncate_tail(wal_path(tmp_path), 5)

        async def scenario():
            service = SweepService(store=JobStore(str(tmp_path)))
            recovered = await service.recover()
            service.start()
            try:
                statuses = await asyncio.gather(
                    *(job.wait() for job in recovered)
                )
            finally:
                await service.stop()
            return recovered, statuses

        recovered, statuses = run(scenario())
        assert [job.id for job in recovered] == ["job-1"]
        assert all(status.value == "ok" for status in statuses)


# ----------------------------------------------------------------------
# connection faults
# ----------------------------------------------------------------------
class TestConnectionFaults:
    def test_drop_mid_frame_leaves_service_alive(self, tmp_path):
        sock = str(tmp_path / "svc.sock")

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock)
            await server.start()
            try:
                # Half a frame, then vanish — three times for luck.
                for _ in range(3):
                    await asyncio.to_thread(send_partial_frame, sock)
                client = ServiceClient(sock)
                pong = await client.ping()
                return pong
            finally:
                await server.stop()

        pong = run(scenario())
        assert pong.kind == "pong"


# ----------------------------------------------------------------------
# auth and quotas
# ----------------------------------------------------------------------
def _policy(**quota_kwargs) -> AuthPolicy:
    return AuthPolicy(
        {"tok-alice": ClientAccount(name="alice", quota=Quota(**quota_kwargs))}
    )


class TestAuth:
    def test_missing_token_raises_typed_deny(self, tmp_path):
        sock = str(tmp_path / "svc.sock")

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock, auth=_policy())
            await server.start()
            try:
                with pytest.raises(ServiceDeniedError) as missing:
                    await ServiceClient(sock).ping()
                with pytest.raises(ServiceDeniedError) as unknown:
                    await ServiceClient(sock, token="nope").ping()
                pong = await ServiceClient(sock, token="tok-alice").ping()
                return missing.value, unknown.value, pong
            finally:
                await server.stop()

        missing, unknown, pong = run(scenario())
        assert missing.reason == "unauthenticated"
        assert unknown.reason == "unknown-token"
        assert pong.kind == "pong"

    def test_points_per_job_quota_denies_oversized_grid(self, tmp_path):
        sock = str(tmp_path / "svc.sock")
        big = SweepSpec(
            grid={"d": [2, 3, 4, 6]},
            channel="eviction",
            variant="fast",
            bits=8,
        )

        async def scenario():
            service = SweepService()
            server = SweepServer(
                service, sock, auth=_policy(max_points=2)
            )
            await server.start()
            try:
                client = ServiceClient(sock, token="tok-alice")
                with pytest.raises(ServiceQuotaError) as denied:
                    async for _ in client.submit(big):
                        pass
                return denied.value
            finally:
                await server.stop()

        denied = run(scenario())
        assert denied.reason == "points-per-job"

    def test_quota_storm_admits_burst_and_denies_the_rest(self, tmp_path):
        """16 concurrent submits against burst=2: exactly 2 admitted.

        The near-zero refill rate makes the outcome deterministic; the
        14 refusals must be typed, carry the machine-readable reason,
        and tell the client when to retry.
        """
        sock = str(tmp_path / "svc.sock")
        policy = _policy(submit_rate_per_s=0.001, submit_burst=2)

        async def one(index: int):
            client = ServiceClient(sock, token="tok-alice")
            try:
                final = None
                async for event in client.submit(TINY_SPEC):
                    final = event
                return ("ok", final)
            except ServiceQuotaError as exc:
                return ("quota", exc)

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock, auth=policy)
            await server.start()
            try:
                return await asyncio.gather(*(one(i) for i in range(16)))
            finally:
                await server.stop()

        outcomes = run(scenario())
        admitted = [o for o in outcomes if o[0] == "ok"]
        denied = [o for o in outcomes if o[0] == "quota"]
        assert len(admitted) == 2
        assert len(denied) == 14
        for _, final in admitted:
            assert final.kind == "job-done"
            assert final.get("status") == "ok"
        for _, exc in denied:
            assert exc.reason == "submit-rate"
            assert exc.retry_after_s is not None and exc.retry_after_s > 0

    def test_active_jobs_quota_counts_live_jobs_only(self):
        """Direct admission check: quota frees up as jobs finish."""
        policy = _policy(max_active_jobs=2)
        account = policy.authenticate("tok-alice")
        assert isinstance(account, ClientAccount)
        assert policy.admit_submit(account, points=1, active_jobs=1) is None
        denial = policy.admit_submit(account, points=1, active_jobs=2)
        assert denial is not None and denial.reason == "active-jobs"

    def test_points_quota_applies_before_grid_expansion(
        self, tmp_path, monkeypatch
    ):
        """The points quota bounds the expansion *cost*, not just size.

        A denied submission must never materialise the cross-product:
        admission runs on the grid's axis-length product, so a hostile
        client cannot make the server build an arbitrarily large point
        list just to be told no.
        """
        sock = str(tmp_path / "svc.sock")
        huge = SweepSpec(
            grid={
                "d": list(range(64)),
                "M": list(range(64)),
                "p": list(range(64)),
            },
            channel="eviction",
            variant="fast",
            bits=8,
        )

        def never(self):
            raise AssertionError("grid expanded before quota admission")

        monkeypatch.setattr(SweepSpec, "build_sweep", never)

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock, auth=_policy(max_points=1024))
            await server.start()
            try:
                client = ServiceClient(sock, token="tok-alice")
                with pytest.raises(ServiceQuotaError) as denied:
                    async for _ in client.submit(huge):
                        pass
                return denied.value
            finally:
                await server.stop()

        assert run(scenario()).reason == "points-per-job"

    def test_policy_file_parses_admin_flag(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(
            json.dumps(
                {
                    "tokens": {
                        "t-a": {"name": "alice"},
                        "t-o": {"name": "ops", "admin": True},
                    }
                }
            ),
            encoding="utf-8",
        )
        policy = AuthPolicy.from_file(path)
        alice = policy.authenticate("t-a")
        ops = policy.authenticate("t-o")
        assert isinstance(alice, ClientAccount) and not alice.admin
        assert isinstance(ops, ClientAccount) and ops.admin


# ----------------------------------------------------------------------
# tenant isolation
# ----------------------------------------------------------------------
def _tenant_policy() -> AuthPolicy:
    return AuthPolicy(
        {
            "tok-alice": ClientAccount(name="alice"),
            "tok-bob": ClientAccount(name="bob"),
            "tok-ops": ClientAccount(name="ops", admin=True),
        }
    )


class TestTenantIsolation:
    """Auth isolates tenants: cancel and watch are owner-scoped."""

    def test_cancel_is_owner_scoped(self, tmp_path):
        """Job ids are guessable, so cancel must check ownership.

        bob sweeping alice's (predictable) job id gets a typed
        ``not-owner`` deny; alice cancels her own job, the admin
        account cancels anyone's, and unknown ids still answer
        ``ok: false``.
        """
        sock = str(tmp_path / "svc.sock")
        gate = threading.Event()

        def gated(point):
            gate.wait(10)
            return {"y": float(point["x"])}

        async def scenario():
            service = SweepService(workers=2)
            server = SweepServer(service, sock, auth=_tenant_policy())
            await server.start()
            try:
                alices = service.submit(
                    ParameterSweep(gated, {"x": [1]}), client="alice"
                )
                bobs = service.submit(
                    ParameterSweep(gated, {"x": [2]}), client="bob"
                )
                with pytest.raises(ServiceDeniedError) as cross:
                    await ServiceClient(sock, token="tok-bob").cancel(
                        alices.id
                    )
                own = await ServiceClient(sock, token="tok-alice").cancel(
                    alices.id
                )
                admin = await ServiceClient(sock, token="tok-ops").cancel(
                    bobs.id
                )
                unknown = await ServiceClient(sock, token="tok-bob").cancel(
                    "job-999"
                )
                gate.set()
                await asyncio.gather(alices.wait(), bobs.wait())
                return cross.value, own, admin, unknown
            finally:
                gate.set()
                await server.stop()

        cross, own, admin, unknown = run(scenario())
        assert cross.reason == "not-owner"
        assert own is True
        assert admin is True
        assert unknown is False

    def test_watch_is_tenant_scoped(self, tmp_path):
        """A non-admin watcher only sees its own jobs; an admin sees all.

        bob's job runs *first*, so if alice's feed were unscoped his
        ``job-done`` (result rows and all) would reach her before her
        own job even starts.
        """
        sock = str(tmp_path / "svc.sock")

        async def collect(token: str, stop_after: int):
            seen = []
            async for event in ServiceClient(sock, token=token).watch():
                if event.kind == "watching":
                    continue
                seen.append(event)
                if event.kind == "job-done":
                    stop_after -= 1
                    if stop_after == 0:
                        break
            return seen

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock, auth=_tenant_policy())
            await server.start()
            try:
                alice_feed = asyncio.ensure_future(collect("tok-alice", 1))
                ops_feed = asyncio.ensure_future(collect("tok-ops", 2))
                while service.subscriber_count < 2:
                    await asyncio.sleep(0.01)
                bob_job = service.submit(make_sweep(xs=(1,)), client="bob")
                await bob_job.wait()
                alice_job = service.submit(make_sweep(xs=(2,)), client="alice")
                await alice_job.wait()
                alice_events, ops_events = await asyncio.gather(
                    asyncio.wait_for(alice_feed, 10),
                    asyncio.wait_for(ops_feed, 10),
                )
                return bob_job.id, alice_job.id, alice_events, ops_events
            finally:
                await server.stop()

        bob_id, alice_id, alice_events, ops_events = run(scenario())
        assert {e["job"] for e in alice_events} == {alice_id}
        assert {e["job"] for e in ops_events} == {bob_id, alice_id}


# ----------------------------------------------------------------------
# multi-tenant fairness
# ----------------------------------------------------------------------
class TestFairShare:
    def test_queue_interleaves_tenants_round_robin(self):
        """alice's backlog cannot starve bob: service order is A B A A."""

        async def scenario():
            service = SweepService(workers=1)
            a1 = service.submit(make_sweep(xs=(1,)), client="alice")
            a2 = service.submit(make_sweep(xs=(2,)), client="alice")
            a3 = service.submit(make_sweep(xs=(3,)), client="alice")
            b1 = service.submit(make_sweep(xs=(4,)), client="bob")
            service.start()
            try:
                await asyncio.gather(
                    *(job.wait() for job in (a1, a2, a3, b1))
                )
            finally:
                await service.stop()
            return [a1, a2, a3, b1]

        jobs = run(scenario())

        def scheduled_seq(job) -> int:
            for event in job.events:
                if event.kind == "scheduled":
                    return event["seq"]
            raise AssertionError(f"{job.id} never scheduled")

        order = sorted(jobs, key=scheduled_seq)
        assert [job.id for job in order] == [
            jobs[0].id,  # alice-1: first in, served first
            jobs[3].id,  # bob-1: bob has waited longest per served turn
            jobs[1].id,  # alice-2
            jobs[2].id,  # alice-3
        ]


# ----------------------------------------------------------------------
# clock skew (cluster fabric)
# ----------------------------------------------------------------------
class TestClockSkew:
    def test_clock_step_evicts_only_the_silent_worker(self):
        """A forward clock step (NTP-style) during a run.

        The zombie registered before the step and never spoke again —
        it must be evicted.  The live worker's frames re-stamp it at
        the stepped clock, so it survives, absorbs the redispatch, and
        its shipped metrics still merge into the fleet registry.
        """
        clock = ManualClock()
        registry = MetricsRegistry()
        events = []
        sweep = make_sweep(xs=range(4))

        async def scenario():
            pending = list(enumerate(sweep.points()))
            coordinator = Coordinator(
                pending,
                square_factory,
                shard_size=2,
                heartbeat_timeout=5.0,
                retry_backoff_s=0.02,
                steal_after_s=None,
                clock=clock,
                registry=registry,
                on_event=events.append,
            )
            address = await coordinator.start("tcp://127.0.0.1:0")

            # The zombie: registers at t=0, accepts a shard, goes dark.
            reader, writer = await open_endpoint(address)
            await send_message(
                writer,
                {"type": "register", "worker": "zombie", "slots": 1,
                 "version": PROTOCOL_VERSION},
            )
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            shard_msg = await read_message(reader)
            assert shard_msg["type"] == "shard"

            # The clock steps past the heartbeat window, then a live
            # worker joins (its frames are stamped post-step).
            clock.advance(60.0)
            worker = asyncio.ensure_future(
                ClusterWorker(
                    address,
                    name="live",
                    heartbeat_interval=0.05,
                    registry=MetricsRegistry(),
                    ship_metrics=True,
                ).run()
            )
            try:
                # Redispatch backoff is measured on the same (manual)
                # clock: nudge it once the eviction lands so the
                # requeued shard becomes eligible.
                async def eviction_observed():
                    while not any(e.kind == "worker-lost" for e in events):
                        await asyncio.sleep(0.02)

                await asyncio.wait_for(eviction_observed(), 15)
                clock.advance(1.0)
                results = await asyncio.wait_for(coordinator.results(), 30)
            finally:
                await coordinator.stop()
                worker.cancel()
                await asyncio.gather(worker, return_exceptions=True)
                writer.close()
            return results

        results = run(scenario())
        assert len(results) == 4
        evicted = [
            e
            for e in events
            if e.kind == "worker-lost"
            and "heartbeat" in str(e.get("reason"))
        ]
        assert any(e["worker"] == "zombie" for e in evicted)
        assert not any(e["worker"] == "live" for e in evicted)
        names = {m["name"] for m in registry.snapshot()["metrics"]}
        assert "worker.points_done" in names
        assert "cluster.snapshots_merged" in names
