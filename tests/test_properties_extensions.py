"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capacity import bsc_capacity, information_rate
from repro.analysis.threshold import ThresholdDecoder
from repro.channels.coding import (
    DifferentialCode,
    ManchesterCode,
    RepetitionCode,
)
from repro.frontend.lsd import misalignment_collides
from repro.frontend.params import FrontendParams
from repro.isa.assembler import SUPPORTED_MNEMONICS, assemble
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram

DECODER = ThresholdDecoder(
    threshold=100.0, one_is_high=True, mean_zero=50.0, mean_one=150.0
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=48)


def noiseless_measurements(symbols: list[int]) -> list[float]:
    return [150.0 if s else 50.0 for s in symbols]


class TestCodingRoundtrips:
    @given(bit_lists, st.sampled_from([1, 3, 5, 7]))
    @settings(max_examples=60)
    def test_repetition_roundtrip(self, bits, n):
        code = RepetitionCode(n)
        assert code.decode(noiseless_measurements(code.encode(bits)), DECODER) == bits

    @given(bit_lists)
    @settings(max_examples=60)
    def test_manchester_roundtrip(self, bits):
        code = ManchesterCode()
        assert code.decode(noiseless_measurements(code.encode(bits)), DECODER) == bits

    @given(bit_lists)
    @settings(max_examples=60)
    def test_differential_roundtrip(self, bits):
        code = DifferentialCode()
        assert code.decode(noiseless_measurements(code.encode(bits)), DECODER) == bits

    @given(bit_lists, st.integers(min_value=0, max_value=200))
    @settings(max_examples=60)
    def test_manchester_offset_immunity(self, bits, offset):
        """Any common-mode offset leaves Manchester decoding unchanged."""
        code = ManchesterCode()
        shifted = [m + offset for m in noiseless_measurements(code.encode(bits))]
        assert code.decode(shifted, DECODER) == bits

    @given(bit_lists)
    @settings(max_examples=40)
    def test_repetition_tolerates_minority_corruption(self, bits):
        """Flipping one symbol per group never flips the majority of 3."""
        code = RepetitionCode(3)
        measurements = noiseless_measurements(code.encode(bits))
        for group in range(len(bits)):
            corrupted = list(measurements)
            index = group * 3
            corrupted[index] = 200.0 - corrupted[index] + 0.0  # flip one
            assert code.decode(corrupted, DECODER) == bits


class TestMisalignmentRuleProperties:
    params = FrontendParams()
    layout = BlockChainLayout()

    def program(self, aligned: int, misaligned: int) -> LoopProgram:
        return LoopProgram(self.layout.mixed_chain(3, aligned, misaligned), 1)

    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_monotone_in_misaligned_blocks(self, aligned, misaligned):
        """Adding a misaligned block can never un-collide a loop."""
        if misalignment_collides(self.program(aligned, misaligned), self.params):
            assert misalignment_collides(
                self.program(aligned, misaligned + 1), self.params
            )

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20)
    def test_aligned_only_never_collides(self, aligned):
        assert not misalignment_collides(self.program(aligned, 0), self.params)

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40)
    def test_rule_matches_closed_form(self, aligned, misaligned):
        if aligned + misaligned == 0:
            return
        expected = (misaligned >= 1 and aligned + 2 * misaligned > 8) or (
            misaligned >= self.params.lsd_misalign_limit
        )
        assert (
            misalignment_collides(self.program(aligned, misaligned), self.params)
            == expected
        )


class TestAssemblerProperties:
    @given(
        st.lists(st.sampled_from(SUPPORTED_MNEMONICS), min_size=1, max_size=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_listing_roundtrip_structure(self, mnemonics, base_slot):
        listing = "\n".join(f"{m} r0, r1" for m in mnemonics)
        block = assemble(listing, base=base_slot * 32)
        assert len(block.instructions) == len(mnemonics)
        # store decodes to 2 uops, everything else to 1.
        expected_uops = sum(2 if m == "store" else 1 for m in mnemonics)
        assert block.uop_count == expected_uops


class TestCapacityProperties:
    @given(st.floats(min_value=0.0, max_value=0.5),
           st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=60)
    def test_information_never_exceeds_raw(self, error, rate):
        assert information_rate(rate, error) <= rate + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_capacity_bounded(self, p):
        assert 0.0 <= bsc_capacity(p) <= 1.0
