"""Tests for the engine's modelled policies: fill-streak throttling,
replacement policies, uniform delivery, and SMT isolation."""

from __future__ import annotations

import pytest

from repro.frontend.engine import FrontendEngine
from repro.frontend.params import FrontendParams
from repro.frontend.paths import DeliveryPath
from repro.isa.blocks import filler_block
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram


@pytest.fixture
def layout() -> BlockChainLayout:
    return BlockChainLayout()


class TestFillStreakThrottle:
    def test_over_capacity_loop_keeps_dsb_share(self):
        """Figure 3's 4000-uop loop keeps a stable DSB-resident prefix."""
        engine = FrontendEngine()
        program = LoopProgram([filler_block(0x400000, 4000)], 500)
        report = engine.run_loop(program, exact=True)
        share = report.uops_dsb / report.total_uops
        assert 0.05 < share < 0.5

    def test_throttle_disabled_with_huge_limit(self, layout):
        """A large streak limit restores pure-LRU thrash (0% DSB)."""
        params = FrontendParams(mite_fill_streak_limit=10_000)
        engine = FrontendEngine(params)
        program = LoopProgram([filler_block(0x400000, 4000)], 200)
        report = engine.run_loop(program, exact=True)
        assert report.uops_dsb / report.total_uops < 0.02

    def test_attack_bursts_unaffected(self, layout):
        """Overflow-by-one chains (<= N+1 windows) never hit the limit:
        the eviction channel's thrash survives."""
        default = FrontendEngine()
        report = default.run_loop(LoopProgram(layout.chain(3, 9), 100), exact=True)
        no_throttle = FrontendEngine(FrontendParams(mite_fill_streak_limit=10_000))
        baseline = no_throttle.run_loop(
            LoopProgram(layout.chain(3, 9), 100), exact=True
        )
        assert report.cycles == pytest.approx(baseline.cycles)
        assert report.uops_mite == baseline.uops_mite


class TestHashedReplacement:
    def test_hashed_policy_deterministic(self, layout):
        params = FrontendParams(dsb_replacement="hashed")
        runs = []
        for _ in range(2):
            engine = FrontendEngine(params)
            report = engine.run_loop(LoopProgram(layout.chain(3, 9), 200), exact=True)
            runs.append(report.cycles)
        assert runs[0] == runs[1]

    def test_hashed_differs_from_lru(self, layout):
        program = LoopProgram(layout.chain(3, 9), 200)
        lru = FrontendEngine(FrontendParams()).run_loop(program, exact=True)
        hashed = FrontendEngine(
            FrontendParams(dsb_replacement="hashed")
        ).run_loop(program, exact=True)
        assert lru.uops_mite != hashed.uops_mite

    def test_rejects_unknown_policy(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FrontendParams(dsb_replacement="fifo")


class TestUniformDelivery:
    def make_engine(self) -> FrontendEngine:
        params = FrontendParams(
            uniform_delivery=True,
            dsb_window_overhead=0.0,
            lsd_window_overhead=0.0,
            dsb_to_mite_penalty=0.0,
            mite_to_dsb_penalty=0.0,
            lsd_flush_penalty=0.0,
            lsd_capture_cost=0.0,
            misalign_dsb_penalty=0.0,
            lcp_stall=0.0,
        )
        return FrontendEngine(params)

    def test_hit_and_miss_iterations_cost_the_same(self, layout):
        engine = self.make_engine()
        program = LoopProgram(layout.chain(3, 8), 1)
        cold = engine.run_iteration(program.with_iterations(1))
        warm = engine.run_iteration(program.with_iterations(1))
        assert warm.cycles == pytest.approx(cold.cycles)

    def test_lsd_streaming_also_padded(self, layout):
        engine = self.make_engine()
        program = LoopProgram(layout.chain(3, 8), 20)
        report = engine.run_loop(program, exact=True)
        per_iteration = report.cycles / report.iterations
        cold = self.make_engine().run_iteration(program.with_iterations(1))
        assert per_iteration == pytest.approx(cold.cycles, rel=0.05)

    def test_paths_still_tracked(self, layout):
        """Uniform delivery changes timing, not the state machines."""
        engine = self.make_engine()
        report = engine.run_loop(LoopProgram(layout.chain(3, 8), 50), exact=True)
        assert report.uops_lsd > 0  # LSD still captures


class TestSmtIsolation:
    def test_isolated_threads_use_disjoint_sets(self):
        from repro.frontend.dsb import DecodedStreamBuffer

        dsb = DecodedStreamBuffer(FrontendParams(smt_isolation=True))
        addr = 0x400000 + 3 * 32
        assert dsb.effective_index(addr, smt_active=True, thread=0) == 3
        assert dsb.effective_index(addr, smt_active=True, thread=1) == 19

    def test_isolation_only_in_smt_mode(self):
        from repro.frontend.dsb import DecodedStreamBuffer

        dsb = DecodedStreamBuffer(FrontendParams(smt_isolation=True))
        addr = 0x400000 + 3 * 32
        assert dsb.effective_index(addr, smt_active=False, thread=1) == 3

    def test_no_cross_thread_evictions_when_isolated(self):
        from repro.frontend.dsb import DecodedStreamBuffer

        dsb = DecodedStreamBuffer(FrontendParams(smt_isolation=True))
        for slot in range(8):
            dsb.insert(0, 0x400000 + slot * 1024 + 3 * 32, 5, True)
        evicted = dsb.insert(1, 0x400000 + 100 * 1024 + 3 * 32, 5, True)
        assert evicted == []  # lands in the other half


class TestLsdUniformInteraction:
    def test_window_accesses_cached_per_body(self, layout):
        engine = FrontendEngine()
        program = LoopProgram(layout.chain(3, 4), 10)
        first = engine.window_accesses(program)
        second = engine.window_accesses(program)
        assert first is second  # cached

    def test_decode_costs_precomputed(self, layout):
        engine = FrontendEngine()
        accesses = engine.window_accesses(LoopProgram(layout.chain(3, 1), 1))
        assert accesses[0].decode_cycles > 0
        assert accesses[0].plain_decode_cycles == accesses[0].decode_cycles
