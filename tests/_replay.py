"""Deterministic-replay harness: pin a sweep's results *and* telemetry.

The repo's determinism story is that a seeded sweep is a pure function
of its configuration: rerunning it must reproduce every row bit-exactly,
and — with timing routed through an injectable clock — the metrics
snapshot too.  This module turns that claim into a fixture-backed
assertion:

* :func:`capture` serializes one run — the result table plus the
  registry snapshot — as canonical JSON (sorted keys, compact
  separators), so equal runs are equal *bytes*;
* :func:`assert_replay` records that document to
  ``tests/fixtures/replay/<name>.json`` on first run and, on every run
  after, asserts the fresh capture is byte-identical to the committed
  fixture.  A mismatch means a determinism regression (or an intended
  behaviour change — delete the fixture to re-record, and let the diff
  review the change).

The module is deliberately standalone (stdlib + ``repro`` only, no
pytest imports, no package-relative imports) so the benchmark suite can
load it by file path — see ``benchmarks/test_smoke_cluster.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs import MetricsRegistry, snapshot_json

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures" / "replay"

#: Set to re-record every fixture touched by a run (commit the diff).
RECORD_ENV = "REPRO_REPLAY_RECORD"

__all__ = ["FIXTURES_DIR", "RECORD_ENV", "capture", "assert_replay"]


def capture(table, registry: MetricsRegistry | None = None) -> str:
    """One run as canonical JSON: rows, axes, and (optionally) metrics.

    ``table`` is a :class:`repro.sweep.SweepTable`; ``registry`` the
    :class:`~repro.obs.MetricsRegistry` the run recorded into.  Metrics
    only replay byte-stably when the run's timing flowed through a
    deterministic clock (``MetricsRegistry(clock=ManualClock())``), so
    pass ``registry=None`` to pin results alone.
    """
    document = {
        "parameters": list(table.parameter_names),
        "metrics": list(table.metric_names),
        "rows": table.rows(),
    }
    if registry is not None:
        document["snapshot"] = json.loads(snapshot_json(registry))
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def assert_replay(
    name: str,
    table,
    registry: MetricsRegistry | None = None,
    fixtures_dir: Path | None = None,
) -> Path:
    """Record-or-verify one run against its committed fixture.

    First run (no fixture on disk, or ``REPRO_REPLAY_RECORD`` set):
    writes the capture and returns.  Every later run: asserts the fresh
    capture is byte-identical to the fixture.  Returns the fixture path.
    """
    directory = fixtures_dir if fixtures_dir is not None else FIXTURES_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    document = capture(table, registry)
    if not path.exists() or os.environ.get(RECORD_ENV):
        path.write_text(document + "\n")
        return path
    recorded = path.read_text().rstrip("\n")
    if recorded != document:
        raise AssertionError(
            f"replay mismatch for {name!r}: this run's results/metrics "
            f"differ from the committed fixture {path}.  If the change "
            f"is intended, delete the fixture (or set {RECORD_ENV}=1) "
            "and commit the re-recorded file."
        )
    return path
