"""Tests for the parameter-sweep framework."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sweep import ParameterSweep, SweepPoint


def quadratic(point: SweepPoint) -> dict:
    x = point["x"]
    return {"y": float(x * x), "seed_mod": float(point.seed % 7)}


class TestParameterSweep:
    def test_grid_product(self):
        sweep = ParameterSweep(quadratic, {"x": [1, 2], "z": ["a", "b", "c"]})
        assert len(sweep.points()) == 6

    def test_trials_multiply_points(self):
        sweep = ParameterSweep(quadratic, {"x": [1, 2]}, trials=3)
        assert len(sweep.points()) == 6

    def test_seeds_unique_per_point_and_trial(self):
        sweep = ParameterSweep(quadratic, {"x": [1, 2]}, trials=3)
        seeds = [p.seed for p in sweep.points()]
        assert len(set(seeds)) == len(seeds)

    def test_seeds_stable_across_runs(self):
        a = ParameterSweep(quadratic, {"x": [1, 2]}, trials=2).points()
        b = ParameterSweep(quadratic, {"x": [1, 2]}, trials=2).points()
        assert [p.seed for p in a] == [p.seed for p in b]

    def test_run_aggregates(self):
        table = ParameterSweep(quadratic, {"x": [1, 2, 3]}, trials=2).run()
        rows = {row["x"]: row for row in table.rows()}
        assert rows[2]["y_mean"] == pytest.approx(4.0)
        assert rows[3]["y_min"] == rows[3]["y_max"] == pytest.approx(9.0)

    def test_column_in_grid_order(self):
        table = ParameterSweep(quadratic, {"x": [3, 1, 2]}).run()
        assert table.column("y") == [9.0, 1.0, 4.0]

    def test_render(self):
        text = ParameterSweep(quadratic, {"x": [1, 2]}).run().render()
        assert "y_mean" in text
        assert "4.00" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep(quadratic, {})
        with pytest.raises(ConfigurationError):
            ParameterSweep(quadratic, {"x": []})
        with pytest.raises(ConfigurationError):
            ParameterSweep(quadratic, {"x": [1]}, trials=0)

    def test_inconsistent_metrics_rejected(self):
        calls = []

        def flaky(point):
            calls.append(point)
            return {"a": 1.0} if len(calls) == 1 else {"b": 1.0}

        with pytest.raises(ConfigurationError):
            ParameterSweep(flaky, {"x": [1, 2]}).run()

    def test_empty_metrics_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep(lambda p: {}, {"x": [1]}).run()

    def test_mixed_type_axis_supported(self):
        """Axes may mix unorderable value types: seed derivation uses a
        canonical type-tagged encoding, not repr sorting."""
        table = ParameterSweep(quadratic, {"x": [1, 2], "tag": ["a", None]}).run()
        assert len(table.rows()) == 4
        seeds = [p.seed for p in ParameterSweep(
            quadratic, {"x": [1, 2], "tag": ["a", None]}
        ).points()]
        assert len(set(seeds)) == len(seeds)

    def test_int_and_float_axis_values_get_distinct_seeds(self):
        int_points = ParameterSweep(quadratic, {"x": [1]}).points()
        float_points = ParameterSweep(quadratic, {"x": [1.0]}).points()
        assert int_points[0].seed != float_points[0].seed

    def test_last_stats_exposed(self):
        sweep = ParameterSweep(quadratic, {"x": [1, 2]}, trials=2)
        assert sweep.last_stats is None
        sweep.run()
        assert sweep.last_stats.points == 4
        assert sweep.last_stats.executor == "serial"

    def test_run_accepts_parallel_executor(self):
        from repro.exec import ParallelExecutor

        serial = ParameterSweep(quadratic, {"x": [1, 2, 3]}, trials=2).run()
        parallel = ParameterSweep(quadratic, {"x": [1, 2, 3]}, trials=2).run(
            executor=ParallelExecutor(jobs=2)
        )
        assert parallel == serial

    def test_real_channel_sweep(self):
        """End to end: sweep the eviction channel's d like Figure 11."""
        from repro.analysis.bits import alternating_bits
        from repro.channels.base import ChannelConfig
        from repro.channels.eviction import NonMtEvictionChannel
        from repro.machine.machine import Machine
        from repro.machine.specs import GOLD_6226

        def run_point(point: SweepPoint) -> dict:
            machine = Machine(GOLD_6226, seed=point.seed)
            channel = NonMtEvictionChannel(
                machine, ChannelConfig(d=point["d"]), variant="fast"
            )
            result = channel.transmit(alternating_bits(16))
            return {"kbps": result.kbps, "error": result.error_rate}

        table = ParameterSweep(run_point, {"d": [2, 6]}, trials=2).run()
        kbps = table.column("kbps")
        assert all(rate > 100 for rate in kbps)
