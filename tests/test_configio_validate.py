"""Tests for experiment-config serialisation and model self-validation."""

from __future__ import annotations

import json

import pytest

from repro.channels.base import ChannelConfig
from repro.configio import ExperimentConfig
from repro.errors import ConfigurationError
from repro.frontend.params import FrontendParams
from repro.machine.specs import GOLD_6226, XEON_E2174G
from repro.validate import ALL_CHECKS, run_validation


class TestExperimentConfig:
    def test_roundtrip_via_dict(self):
        config = ExperimentConfig(
            spec=XEON_E2174G,
            seed=99,
            params=FrontendParams(dsb_window_overhead=0.2),
            channel=ChannelConfig(d=4, p=20),
        )
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored == config

    def test_roundtrip_via_file(self, tmp_path):
        config = ExperimentConfig(spec=GOLD_6226, seed=7)
        path = config.save(tmp_path / "exp.json")
        restored = ExperimentConfig.load(path)
        assert restored == config

    def test_file_is_plain_json(self, tmp_path):
        path = ExperimentConfig(spec=GOLD_6226).save(tmp_path / "exp.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert data["spec"]["name"] == "Gold 6226"

    def test_build_machine(self):
        config = ExperimentConfig(
            spec=GOLD_6226, seed=12, params=FrontendParams(lcp_stall=2.0)
        )
        machine = config.build_machine()
        assert machine.spec is GOLD_6226
        assert machine.frontend_params.lcp_stall == 2.0
        # Machine-structural fields come from the spec, not the params.
        assert machine.frontend_params.lsd_capacity == GOLD_6226.lsd_entries

    def test_built_machines_reproducible(self):
        config = ExperimentConfig(spec=GOLD_6226, seed=12)
        a = config.build_machine().timer.measure(1000.0).measured_cycles
        b = config.build_machine().timer.measure(1000.0).measured_cycles
        assert a == b

    def test_rejects_wrong_version(self):
        data = ExperimentConfig(spec=GOLD_6226).to_dict()
        data["format_version"] = 999
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict(data)

    def test_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict({"format_version": 1, "seed": 1})

    def test_rejects_invalid_values_on_load(self):
        data = ExperimentConfig(spec=GOLD_6226).to_dict()
        data["params"]["dsb_sets"] = 33  # not a power of two
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.load(tmp_path / "nope.json")

    def test_for_machine_helper(self):
        config = ExperimentConfig.for_machine("gold 6226", seed=4, d=3)
        assert config.spec is GOLD_6226
        assert config.channel.d == 3


class TestValidation:
    def test_all_checks_pass(self):
        results = run_validation(verbose=False)
        failures = [r.name for r in results if not r.passed]
        assert not failures, failures

    def test_check_count(self):
        assert len(ALL_CHECKS) == 10

    def test_cli_validate(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "10/10" in out


class TestWindowCacheAliasing:
    def test_different_bodies_same_addresses_do_not_alias(self):
        """Regression: two programs at the same base address must not
        share cached window decompositions (found by `repro validate`)."""
        from repro.frontend.engine import FrontendEngine
        from repro.isa.blocks import filler_block
        from repro.isa.program import LoopProgram

        engine = FrontendEngine()
        small = LoopProgram([filler_block(0x400000, 400)], 50)
        engine.run_loop(small, exact=True)
        engine.reset_thread(0)
        big = LoopProgram([filler_block(0x400000, 4000)], 50)
        report = engine.run_loop(big, exact=True)
        assert report.total_uops == 4000 * 50  # not the 400-uop layout
