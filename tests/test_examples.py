"""The examples are part of the public contract: they must keep running.

Each example is executed in-process (``runpy``) with stdout captured;
besides not crashing, each must print its scenario's headline artifact.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script -> substring its output must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "Kbps",
    "hyperthread_spy.py": "classified correctly",
    "sgx_trojan.py": "leaked",
    "spectre_frontend.py": "frontend-dsb",
    "microcode_audit.py": "verdict",
    "key_extraction.py": "recovered",
    "defended_server.py": "mitigation",
    "sandboxed_attacker.py": "counting-thread",
}


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script, capsys):
    output = run_example(script, capsys)
    assert EXPECTED_OUTPUT[script] in output
    assert len(output) > 100  # each example narrates its scenario


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)
