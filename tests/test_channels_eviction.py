"""Tests for the eviction-based covert channels."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.eviction import MtEvictionChannel, NonMtEvictionChannel
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G, XEON_E2288G
from repro.measure.noise import QUIET_PROFILE


def quiet_machine(spec=GOLD_6226, seed=10) -> Machine:
    return Machine(spec, seed=seed, timing_noise=QUIET_PROFILE,
                   smt_timing_noise=QUIET_PROFILE)


def quiet_config(**kwargs) -> ChannelConfig:
    base = dict(disturb_rate=0.0, sync_fail_rate=0.0)
    base.update(kwargs)
    return ChannelConfig(**base)


class TestNonMtEviction:
    def test_bit_timing_separation(self):
        """m=1 (overflow the set) must measure slower than m=0."""
        channel = NonMtEvictionChannel(quiet_machine(), quiet_config(), variant="fast")
        for _ in range(2):  # warm up
            channel.send_bit(0)
            channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert one > zero * 1.5

    def test_stealthy_margin_smaller_than_fast_without_lsd(self):
        """Encoding a 0 with decoy work narrows the margin.

        Asserted on an LSD-disabled machine where both variants' m=0
        paths are DSB-delivered; on LSD machines the fast variant's m=0
        body streams from the (slower-per-window) LSD, which offsets the
        decoy work and can invert the comparison.
        """
        fast = NonMtEvictionChannel(
            quiet_machine(XEON_E2174G), quiet_config(), variant="fast"
        )
        stealthy = NonMtEvictionChannel(
            quiet_machine(XEON_E2174G), quiet_config(), variant="stealthy"
        )
        fast.calibrate()
        stealthy.calibrate()
        assert stealthy.decoder.margin < fast.decoder.margin

    def test_perfect_transmission_without_noise(self):
        channel = NonMtEvictionChannel(quiet_machine(), quiet_config(), variant="fast")
        result = channel.transmit(alternating_bits(32))
        assert result.error_rate == 0.0
        assert result.received_bits == result.sent_bits

    def test_transmission_rate_positive(self):
        channel = NonMtEvictionChannel(quiet_machine(), quiet_config())
        result = channel.transmit([1, 0, 1, 1])
        assert result.kbps > 0
        assert result.total_cycles > 0

    def test_works_on_lsd_disabled_machine(self):
        channel = NonMtEvictionChannel(
            quiet_machine(XEON_E2174G), quiet_config(), variant="fast"
        )
        result = channel.transmit(alternating_bits(16))
        assert result.error_rate == 0.0

    def test_works_without_smt(self):
        """Non-MT attacks run fine on the hyperthreading-disabled Azure CPU."""
        channel = NonMtEvictionChannel(quiet_machine(XEON_E2288G), quiet_config())
        result = channel.transmit(alternating_bits(8))
        assert result.error_rate == 0.0

    def test_rejects_bad_variant(self):
        with pytest.raises(ChannelError):
            NonMtEvictionChannel(quiet_machine(), variant="sneaky")

    def test_rejects_bad_d(self):
        with pytest.raises(ChannelError):
            NonMtEvictionChannel(quiet_machine(), quiet_config(d=9))

    def test_rejects_bad_bit(self):
        channel = NonMtEvictionChannel(quiet_machine(), quiet_config())
        with pytest.raises(ChannelError):
            channel.send_bit(2)

    def test_bit_body_structure(self):
        """Init(d) + Encode(N+1-d) + Decode(d), per Section IV-C."""
        channel = NonMtEvictionChannel(quiet_machine(), quiet_config(d=6))
        body1 = channel.bit_body(1)
        assert len(body1) == 6 + 3 + 6
        body0_fast = NonMtEvictionChannel(
            quiet_machine(), quiet_config(d=6), variant="fast"
        ).bit_body(0)
        assert len(body0_fast) == 12


class TestMtEviction:
    def test_requires_smt(self):
        with pytest.raises(ChannelError):
            MtEvictionChannel(quiet_machine(XEON_E2288G))

    def test_bit_separation(self):
        channel = MtEvictionChannel(
            quiet_machine(), quiet_config(p=500, q=50)
        )
        for _ in range(2):
            channel.send_bit(0)
            channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert one > zero * 1.1

    def test_transmission(self):
        channel = MtEvictionChannel(quiet_machine(), quiet_config(p=500, q=50))
        result = channel.transmit(alternating_bits(16))
        assert result.error_rate == 0.0

    def test_defaults_follow_paper(self):
        channel = MtEvictionChannel(quiet_machine())
        assert channel.config.p == 1000
        assert channel.config.q == 100

    def test_slot_durations_monotone(self):
        """Fixed-duration slots: m=0 bits are charged the slot length."""
        channel = MtEvictionChannel(quiet_machine(), quiet_config(p=200, q=20))
        one = channel.send_bit(1)
        zero = channel.send_bit(0)
        assert zero.elapsed_cycles >= one.elapsed_cycles * 0.95

    def test_d_range_validation(self):
        with pytest.raises(ChannelError):
            MtEvictionChannel(quiet_machine(), quiet_config(d=0))


class TestNoiseAndErrors:
    def test_noisy_transmission_has_bounded_errors(self):
        machine = Machine(GOLD_6226, seed=77)
        channel = NonMtEvictionChannel(machine, variant="fast")
        result = channel.transmit(alternating_bits(64))
        assert result.error_rate < 0.10

    def test_sync_slips_create_mt_errors(self):
        machine = Machine(GOLD_6226, seed=77)
        channel = MtEvictionChannel(
            machine, ChannelConfig(p=1000, q=100, sync_fail_rate=0.9)
        )
        result = channel.transmit(alternating_bits(32))
        assert result.error_rate > 0.05  # heavy slipping must hurt
