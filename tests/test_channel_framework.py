"""Tests for the shared covert-channel framework (base protocol)."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import BitSample, ChannelConfig, CovertChannel
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2288G


class FakeChannel(CovertChannel):
    """Deterministic channel: 1 measures 200, 0 measures 100."""

    name = "fake"

    def __init__(self, machine, config=None, noise=0.0, invert=False):
        super().__init__(machine, config)
        self.noise = noise
        self.invert = invert
        self.sent_log: list[int] = []

    def send_bit(self, m: int) -> BitSample:
        m = self._validate_bit(m)
        self.sent_log.append(m)
        high = 100.0 if self.invert else 200.0
        low = 200.0 if self.invert else 100.0
        value = high if m else low
        value += self.noise * (len(self.sent_log) % 3 - 1)
        return BitSample(measurement=value, elapsed_cycles=1000.0, sent=m)


class TestChannelConfig:
    def test_defaults(self):
        config = ChannelConfig()
        assert config.d == 6 and config.M == 8 and config.r == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d": 0},
            {"M": 0},
            {"p": 0},
            {"q": 0},
            {"r": 0},
            {"target_set": -1},
            {"target_set": 5, "decoy_set": 5},
            {"disturb_rate": 1.5},
            {"sync_fail_rate": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ChannelError):
            ChannelConfig(**kwargs)

    def test_with_overrides(self):
        config = ChannelConfig().with_overrides(d=3, p=50)
        assert config.d == 3 and config.p == 50
        assert config.M == 8  # untouched


class TestCalibration:
    def test_calibrate_then_decode(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        decoder = channel.calibrate(8)
        assert decoder.decide(190.0) == 1
        assert decoder.decide(110.0) == 0

    def test_inverted_channel_polarity_learned(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1), invert=True)
        decoder = channel.calibrate(8)
        assert not decoder.one_is_high
        assert decoder.decide(110.0) == 1

    def test_warmup_bits_discarded(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        channel.calibrate(8, warmup_bits=4)
        assert len(channel.sent_log) == 12  # 4 warmup + 8 training

    def test_too_few_training_bits(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        with pytest.raises(ChannelError):
            channel.calibrate(3)

    def test_decoder_before_calibration_raises(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        with pytest.raises(ChannelError):
            _ = channel.decoder


class TestTransmit:
    def test_roundtrip(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        result = channel.transmit([1, 0, 0, 1])
        assert result.received_bits == [1, 0, 0, 1]
        assert result.error_rate == 0.0
        assert result.total_cycles == 4000.0

    def test_rejects_bad_payload(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        with pytest.raises(ChannelError):
            channel.transmit([])
        with pytest.raises(ChannelError):
            channel.transmit([0, 1, 2])

    def test_calibration_not_charged_to_rate(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        result = channel.transmit([1, 0])
        assert result.total_cycles == 2000.0  # message bits only

    def test_reuse_decoder_without_recalibrating(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        channel.calibrate(8)
        sent_before = len(channel.sent_log)
        channel.transmit([1, 0], calibrate=False)
        assert len(channel.sent_log) == sent_before + 2

    def test_result_strings(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        result = channel.transmit([1, 0, 1])
        assert result.sent_string == "101"
        assert result.received_string == "101"


class TestSmtAndRaplGuards:
    def test_requires_smt_guard(self):
        class SmtChannel(FakeChannel):
            requires_smt = True

        with pytest.raises(ChannelError):
            SmtChannel(Machine(XEON_E2288G, seed=1))

    def test_requires_rapl_guard(self):
        import dataclasses

        class RaplChannel(FakeChannel):
            requires_rapl = True

        spec = dataclasses.replace(GOLD_6226, rapl=False, name="no-rapl")
        with pytest.raises(ChannelError):
            RaplChannel(Machine(spec, seed=1))


class TestSlotting:
    def test_slot_grows_monotonically(self):
        channel = FakeChannel(Machine(GOLD_6226, seed=1))
        assert channel._slotted(100.0) == 100.0
        assert channel._slotted(50.0) == 100.0  # stretched to the slot
        assert channel._slotted(200.0) == 200.0  # slot grows

    def test_slip_rate_transition_model(self):
        channel = FakeChannel(
            Machine(GOLD_6226, seed=1), ChannelConfig(sync_fail_rate=0.4)
        )
        first = channel._slip_rate(1)  # no history: treated as an edge
        steady = channel._slip_rate(1)  # run of 1s
        edge = channel._slip_rate(0)  # transition
        assert first == pytest.approx(0.4)
        assert steady == pytest.approx(0.4 * 0.15)
        assert edge == pytest.approx(0.4)
