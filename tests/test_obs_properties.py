"""Property tests for metrics-snapshot determinism.

The replay harness (``tests/_replay.py``) pins snapshots as committed
bytes, so the registry's serialization must be invariant under the two
things Python is allowed to reorder between runs:

* **insertion order** — instruments registered in any order serialize
  identically (identity sort, checked against shuffles);
* **hash order** — tags and names are strings, and dict/set iteration
  order depends on ``PYTHONHASHSEED``; the snapshot must not
  (subprocess check, mirroring ``test_point_key_properties.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import ManualClock, MetricsRegistry, snapshot_json

_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1,
    max_size=12,
)

_instruments = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        _names,
        st.dictionaries(_names, _names, max_size=3),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=12,
)


def _dedupe(spec):
    """Keep one entry per instrument identity.

    Registry identity is (name, sorted tags); a second entry under the
    same identity could legitimately change the outcome (gauge.set is
    last-write-wins, and a kind clash is an intentional error), so the
    commutativity property quantifies over *distinct* instruments.
    """
    seen = set()
    out = []
    for kind, name, tags, amount in spec:
        key = (name, tuple(sorted(tags.items())))
        if key in seen:
            continue
        seen.add(key)
        out.append((kind, name, tags, amount))
    return out


def _populate(registry: MetricsRegistry, spec) -> None:
    for kind, name, tags, amount in spec:
        if kind == "counter":
            registry.counter(name, **tags).inc(amount)
        elif kind == "gauge":
            registry.gauge(name, **tags).set(float(amount))
        else:
            hist = registry.histogram(name, **tags)
            for i in range(amount % 5):
                hist.observe(0.01 * (i + 1))


class TestInsertionOrderInvariance:
    @given(spec=_instruments, seed=st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_snapshot_invariant_under_registration_order(self, spec, seed):
        import random

        deduped = _dedupe(spec)
        forward = MetricsRegistry(clock=ManualClock())
        _populate(forward, deduped)
        shuffled_spec = list(deduped)
        random.Random(seed).shuffle(shuffled_spec)
        shuffled = MetricsRegistry(clock=ManualClock())
        _populate(shuffled, shuffled_spec)
        # Same instruments in any registration order: same bytes.
        assert snapshot_json(forward) == snapshot_json(shuffled)


# A registry deliberately heavy on string tags and names: if snapshot
# serialization leaked dict/set iteration order anywhere, these values
# would expose it across hash seeds.
_HASH_HOSTILE_REGISTRY = """
from repro.obs import ManualClock, MetricsRegistry, snapshot_json

registry = MetricsRegistry(clock=ManualClock(step=0.001))
for worker in ("local-1", "local-2", "remote-alpha", "remote-beta"):
    registry.counter("worker.points_done", worker=worker).inc(3)
    registry.counter("worker.cache_hits", worker=worker, host="h-" + worker).inc()
for executor in ("serial", "parallel", "distributed"):
    registry.counter("exec.points", executor=executor).inc(7)
    registry.histogram("exec.point_latency_s", executor=executor).observe(0.02)
with registry.span("shard.dispatch", shard=1, worker="local-1"):
    pass
registry.gauge("service.queue_depth").set(4)
print(snapshot_json(registry))
"""


class TestHashSeedInvariance:
    def test_snapshot_identical_across_pythonhashseed(self):
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for hash_seed in ("0", "1", "4242", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = repo_src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            result = subprocess.run(
                [sys.executable, "-c", _HASH_HOSTILE_REGISTRY],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert all(out == outputs[0] for out in outputs[1:]), (
            "metrics snapshot drifted across PYTHONHASHSEED values"
        )
        json.loads(outputs[0])  # and it is valid canonical JSON
