"""Tests for the Spectre v1 attack and its covert-channel backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpectreError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.spectre.attack import SpectreV1Attack
from repro.spectre.channels import (
    ALL_SPECTRE_CHANNELS,
    FrontendDsbChannel,
    L1dFlushReload,
    L1dLruChannel,
    L1iFlushReload,
    L1iPrimeProbe,
    MemFlushReload,
)
from repro.spectre.predictor import BranchPredictor
from repro.spectre.victim import SpectreV1Victim, TransientWindow


class TestBranchPredictor:
    def test_initially_not_taken(self):
        assert not BranchPredictor().predict(0x400000)

    def test_trains_to_taken(self):
        predictor = BranchPredictor()
        for _ in range(3):
            predictor.update(0x400000, taken=True)
        assert predictor.predict(0x400000)

    def test_hysteresis_survives_one_not_taken(self):
        """The Spectre property: strongly-taken survives the OOB call."""
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.update(0x400000, taken=True)
        predictor.update(0x400000, taken=False)
        assert predictor.predict(0x400000)

    def test_access_reports_mispredict(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.update(0x400000, taken=True)
        assert predictor.access(0x400000, taken=False)  # mispredicted
        assert not predictor.access(0x400000, taken=True)

    def test_pc_aliasing_distinct(self):
        predictor = BranchPredictor()
        predictor.update(0x400000, True)
        predictor.update(0x400000, True)
        assert not predictor.predict(0x400004)  # different entry

    def test_flush(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.update(0x100, True)
        predictor.flush()
        assert not predictor.predict(0x100)

    def test_validation(self):
        with pytest.raises(SpectreError):
            BranchPredictor(entries=100)


class _RecordingChannel:
    """Test double capturing gadget touches."""

    chunk_bits = 5

    def __init__(self):
        self.touches: list[tuple[int, bool]] = []

    def touch(self, value, transient):
        self.touches.append((value, transient))


class TestVictim:
    def make(self, success_rate=1.0) -> tuple[SpectreV1Victim, BranchPredictor, _RecordingChannel]:
        victim = SpectreV1Victim(
            b"AB",
            rng=np.random.default_rng(0),
            window=TransientWindow(success_rate=success_rate),
        )
        return victim, BranchPredictor(), _RecordingChannel()

    def test_in_bounds_architectural_touch(self):
        victim, predictor, channel = self.make()
        fired = victim.call(0, predictor, channel)
        assert not fired
        assert channel.touches == [(victim.array1[0], False)]

    def test_untrained_oob_no_transient(self):
        victim, predictor, channel = self.make()
        fired = victim.call(victim.oob_index(0), predictor, channel)
        assert not fired
        assert channel.touches == []

    def test_trained_oob_transient_leak(self):
        victim, predictor, channel = self.make()
        for _ in range(4):
            victim.call(0, predictor, channel)
        channel.touches.clear()
        fired = victim.call(victim.oob_index(1), predictor, channel)
        assert fired
        assert channel.touches == [(victim.chunks[1], True)]

    def test_zero_success_rate_never_leaks(self):
        victim, predictor, channel = self.make(success_rate=0.0)
        for _ in range(4):
            victim.call(0, predictor, channel)
        assert not victim.call(victim.oob_index(0), predictor, channel)

    def test_oob_index_validation(self):
        victim, _, _ = self.make()
        with pytest.raises(SpectreError):
            victim.oob_index(victim.n_chunks)

    def test_requires_secret(self):
        with pytest.raises(SpectreError):
            SpectreV1Victim(b"", rng=np.random.default_rng(0))


class TestChannels:
    @pytest.mark.parametrize("cls", ALL_SPECTRE_CHANNELS)
    def test_recovers_secret(self, cls):
        machine = Machine(GOLD_6226, seed=61)
        channel = cls(machine)
        report = SpectreV1Attack(machine, channel, b"Attack!!").run()
        assert report.accuracy >= 0.85
        assert report.recovered == b"Attack!!" or report.chunks_correct >= report.chunks_total - 2

    def test_frontend_channel_is_stealthiest(self):
        """Table VII headline: the frontend channel's L1 miss rate is the
        lowest of all six channels."""
        rates = {}
        for cls in ALL_SPECTRE_CHANNELS:
            machine = Machine(GOLD_6226, seed=61)
            channel = cls(machine)
            rates[cls.__name__] = SpectreV1Attack(machine, channel, b"Secret42").run().l1_miss_rate
        frontend = rates.pop("FrontendDsbChannel")
        assert all(frontend < other for other in rates.values())

    def test_l1i_channels_stealthier_than_l1d(self):
        def rate(cls):
            machine = Machine(GOLD_6226, seed=61)
            return SpectreV1Attack(machine, cls(machine), b"Secret42").run().l1_miss_rate

        assert rate(L1iFlushReload) < rate(L1dFlushReload)
        assert rate(L1iPrimeProbe) < rate(L1dFlushReload)
        assert rate(L1iPrimeProbe) < rate(L1dLruChannel)

    def test_frontend_channel_no_steady_state_misses(self):
        """After the compulsory first fills, frontend probing adds zero
        cache misses: DSB evict/probe cycles never touch the L1I."""
        machine = Machine(GOLD_6226, seed=61)
        channel = FrontendDsbChannel(machine)
        for value in (7, 9):  # warm up: prime blocks + both gadget blocks
            channel.prepare()
            channel.touch(value, transient=True)
            channel.recover()
        before = channel.miss_counts()
        channel.prepare()
        channel.touch(9, transient=True)
        assert channel.recover() == 9
        after = channel.miss_counts()
        assert after.misses == before.misses  # probes never miss L1
        assert after.accesses > before.accesses  # MITE refills did fetch

    def test_mem_flush_reload_byte_chunks(self):
        machine = Machine(GOLD_6226, seed=61)
        assert MemFlushReload(machine).chunk_bits == 8
        assert FrontendDsbChannel(machine).chunk_bits == 5

    def test_channel_value_validation(self):
        machine = Machine(GOLD_6226, seed=61)
        channel = L1iFlushReload(machine)
        with pytest.raises(SpectreError):
            channel.touch(32, transient=True)

    def test_attack_parameter_validation(self):
        machine = Machine(GOLD_6226, seed=61)
        channel = L1iFlushReload(machine)
        with pytest.raises(SpectreError):
            SpectreV1Attack(machine, channel, b"x", trainings=0)
        with pytest.raises(SpectreError):
            SpectreV1Attack(machine, channel, b"x", attempts_per_chunk=0)
