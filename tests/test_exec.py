"""Determinism suite for the execution layer (``repro.exec``).

The contract every scaling feature builds on: parallel execution and
result caching must be *invisible* — same table, same seeds, same bits —
and seed derivation is pinned to golden values so refactors cannot
silently shift every experiment.
"""

from __future__ import annotations

import functools

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    ExecutionStats,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    callable_fingerprint,
    canonical_point_key,
    canonical_value,
    point_seed_name,
)
from repro.rng import derive_seed
from repro.sweep import ParameterSweep, SweepPoint, SweepResult, SweepTable


def quadratic(point: SweepPoint) -> dict:
    """Module-level factory: picklable for the process-pool executor."""
    x = point["x"]
    return {"y": float(x * x), "seed_mod": float(point.seed % 7)}


def awkward_floats(point: SweepPoint) -> dict:
    """Metrics with non-terminating binary expansions: the round-trip
    through the on-disk cache must still be bit-identical."""
    x = point["x"]
    return {"a": 0.1 + 0.2 * x, "b": x / 3.0, "c": 1e-300 * (x + 1)}


def make_sweep(trials: int = 2) -> ParameterSweep:
    return ParameterSweep(quadratic, {"x": [1, 2, 3]}, trials=trials, base_seed=7)


# ----------------------------------------------------------------------
# canonical encoding + seed derivation
# ----------------------------------------------------------------------
class TestCanonicalEncoding:
    def test_type_tags_distinguish_scalars(self):
        assert canonical_value(1) != canonical_value(1.0)
        assert canonical_value(1) != canonical_value(True)
        assert canonical_value(1) != canonical_value("1")
        assert canonical_value(0) != canonical_value(False)

    def test_numeric_equivalence_within_type(self):
        assert canonical_value(1.0) == canonical_value(1.0 + 0.0)
        # repr drift (e.g. 0.1 printing differently) cannot occur:
        # floats encode via hex.
        assert canonical_value(0.1) == ["float", (0.1).hex()]

    def test_mixed_types_on_one_axis_do_not_crash(self):
        # The old repr/sort scheme raised TypeError on int-vs-str axes.
        key_a = canonical_point_key({"x": 1, "mode": "fast"})
        key_b = canonical_point_key({"mode": "fast", "x": 1})
        assert key_a == key_b  # key order never matters

    def test_unorderable_grid_values_sweep_cleanly(self):
        table = ParameterSweep(
            quadratic, {"x": [1, 2], "mode": ["fast", None]}
        ).run()
        assert len(table.rows()) == 4

    def test_containers_encode_recursively(self):
        assert canonical_value([1, "a"]) == ["seq", [["int", 1], ["str", "a"]]]
        assert canonical_value((1, "a")) == canonical_value([1, "a"])
        assert canonical_value({1, 2}) == canonical_value({2, 1})

    def test_golden_point_key(self):
        assert (
            canonical_point_key({"x": 1, "z": "a"})
            == '{"x":["int",1],"z":["str","a"]}'
        )

    def test_golden_seeds(self):
        """Pinned seed values: a change here silently shifts every
        experiment in the repository.  Do not update casually."""
        assert derive_seed(0, point_seed_name({"d": 6}, 0)) == 1859919037931516298
        assert derive_seed(0, point_seed_name({"d": 6.0}, 0)) == 16883461249749157310
        assert derive_seed(0, point_seed_name({"d": True}, 0)) == 13923685620645232500
        points = make_sweep(trials=2).points()
        assert [p.seed for p in points[:4]] == [
            12318746435937831291,
            11626969504137549776,
            5706562028069310972,
            17730203699526921936,
        ]

    def test_fingerprint_distinguishes_functions(self):
        assert callable_fingerprint(quadratic) != callable_fingerprint(awkward_floats)
        assert callable_fingerprint(quadratic) == callable_fingerprint(quadratic)

    def test_fingerprint_partial_binds_arguments(self):
        base = functools.partial(quadratic)
        bound = functools.partial(quadratic, extra=1)
        assert callable_fingerprint(base) != callable_fingerprint(bound)


# ----------------------------------------------------------------------
# executor equivalence
# ----------------------------------------------------------------------
class TestExecutorDeterminism:
    def test_parallel_matches_serial(self):
        serial = make_sweep().run(SerialExecutor())
        parallel = make_sweep().run(ParallelExecutor(jobs=4))
        assert parallel == serial

    def test_parallel_preserves_point_order(self):
        table = make_sweep().run(ParallelExecutor(jobs=4))
        expected = [p.seed for p in make_sweep().points()]
        assert [r.point.seed for r in table.results] == expected

    def test_jobs_one_degenerates_to_serial(self):
        assert make_sweep().run(ParallelExecutor(jobs=1)) == make_sweep().run()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)

    def test_stats_populated(self):
        sweep = make_sweep()
        sweep.run(ParallelExecutor(jobs=2))
        stats = sweep.last_stats
        assert isinstance(stats, ExecutionStats)
        assert stats.points == 6
        assert stats.cache_hits == 0
        assert stats.computed_points == 6
        assert stats.points_per_second > 0
        assert len(stats.timings) == 6
        assert all(not t.cached for t in stats.timings)

    def test_progress_callback_sees_every_point(self):
        seen = []
        make_sweep().run(progress=lambda done, total, t: seen.append((done, total)))
        assert seen == [(i, 6) for i in range(1, 7)]


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_round_trip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = ParameterSweep(awkward_floats, {"x": [1, 2, 3]}, base_seed=3)
        cold = sweep.run(cache=cache)
        assert sweep.last_stats.cache_hits == 0
        warm_sweep = ParameterSweep(awkward_floats, {"x": [1, 2, 3]}, base_seed=3)
        warm = warm_sweep.run(cache=cache)
        assert warm_sweep.last_stats.cache_hits == 3
        assert warm == cold  # includes exact float equality
        for a, b in zip(cold.results, warm.results):
            for name in a.metrics:
                # bit-identical, not just approximately equal
                assert a.metrics[name].hex() == b.metrics[name].hex()

    def test_cache_respects_factory_identity(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ParameterSweep(quadratic, {"x": [1, 2]}).run(cache=cache)
        other = ParameterSweep(awkward_floats, {"x": [1, 2]})
        other.run(cache=cache)
        assert other.last_stats.cache_hits == 0

    def test_cache_distinguishes_trials_and_seeds(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ParameterSweep(quadratic, {"x": [1]}, trials=2).run(cache=cache)
        assert len(cache) == 2
        reseeded = ParameterSweep(quadratic, {"x": [1]}, trials=2, base_seed=99)
        reseeded.run(cache=cache)
        assert reseeded.last_stats.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = ParameterSweep(quadratic, {"x": [1]})
        sweep.run(cache=cache)
        for entry in (tmp_path / "cache").glob("*/*.json"):
            entry.write_text("{not json")
        again = ParameterSweep(quadratic, {"x": [1]})
        again.run(cache=cache)
        assert again.last_stats.cache_hits == 0

    def test_corrupt_entries_evicted_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = ParameterSweep(quadratic, {"x": [1, 2, 3]})
        sweep.run(cache=cache)
        # Damage all three entries three different ways: truncation
        # (killed writer), garbage bytes, and valid JSON of the wrong
        # shape.  Every flavour must read as a miss, not an exception.
        entries = sorted((tmp_path / "cache").glob("*/*.json"))
        assert len(entries) == 3
        entries[0].write_text(entries[0].read_text()[: len(entries[0].read_text()) // 2])
        entries[1].write_bytes(b"\x00\xff not json at all")
        entries[2].write_text('{"version": 1, "metrics": "oops"}')

        healed = ParameterSweep(quadratic, {"x": [1, 2, 3]})
        table = healed.run(cache=cache)
        # All three misses recomputed; the bad files were evicted and
        # the recompute healed the slots.
        assert healed.last_stats.cache_hits == 0
        assert healed.last_stats.cache_corrupt == 3
        assert cache.corrupt_evictions == 3
        assert table == ParameterSweep(quadratic, {"x": [1, 2, 3]}).run()
        assert len(cache) == 3

        # And the healed entries serve a fully warm rerun.
        warm = ParameterSweep(quadratic, {"x": [1, 2, 3]})
        warm.run(cache=cache)
        assert warm.last_stats.cache_hits == 3
        assert warm.last_stats.cache_corrupt == 0

    def test_corrupt_eviction_names_the_evicted_key(self, tmp_path):
        """The eviction is observable: a registry event says *which*
        (point, trial, seed, factory) slot was dropped, not just that
        one was."""
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as registry:
            cache = ResultCache(tmp_path / "cache")
            sweep = ParameterSweep(quadratic, {"x": [1]})
            sweep.run(cache=cache)
            [entry] = (tmp_path / "cache").glob("*/*.json")
            entry.write_text("{broken")
            ParameterSweep(quadratic, {"x": [1]}).run(cache=cache)

            evictions = [
                e for e in registry.events if e.name == "cache.corrupt-evicted"
            ]
            assert len(evictions) == 1
            [point] = sweep.points()
            expected_key = cache.key(point, callable_fingerprint(quadratic))
            assert evictions[0].fields["key"] == expected_key
            assert evictions[0].fields["path"] == str(entry)
            assert registry.counter("cache.corrupt_evictions").value == 1

    def test_stats_corrupt_count_is_per_run(self, tmp_path):
        """ExecutionStats reports this run's evictions, not the cache's
        lifetime total."""
        cache = ResultCache(tmp_path / "cache")
        ParameterSweep(quadratic, {"x": [1]}).run(cache=cache)
        for entry in (tmp_path / "cache").glob("*/*.json"):
            entry.write_text("{broken")
        first = ParameterSweep(quadratic, {"x": [1]})
        first.run(cache=cache)
        assert first.last_stats.cache_corrupt == 1
        second = ParameterSweep(quadratic, {"x": [1]})
        second.run(cache=cache)
        assert second.last_stats.cache_corrupt == 0
        assert cache.corrupt_evictions == 1

    def test_parallel_with_cache_matches_serial(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        serial = make_sweep().run(SerialExecutor())
        half = make_sweep()
        half.run(ParallelExecutor(jobs=2), cache=cache)
        warm = make_sweep()
        table = warm.run(ParallelExecutor(jobs=2), cache=cache)
        assert table == serial
        assert warm.last_stats.cache_hit_rate == 1.0

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        make_sweep().run(cache=cache)
        assert len(cache) == 6
        assert cache.clear() == 6
        assert len(cache) == 0

    def test_cache_path_must_be_directory(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ConfigurationError):
            ResultCache(blocker)


# ----------------------------------------------------------------------
# table aggregation semantics under the new layer
# ----------------------------------------------------------------------
class TestSweepTableGridOrder:
    def _table(self) -> SweepTable:
        return SweepTable(
            parameter_names=("x",),
            metric_names=("y",),
            grid={"x": (3, 1, 2)},
        )

    def _result(self, x: int) -> SweepResult:
        point = SweepPoint(values={"x": x}, trial=0, seed=x)
        return SweepResult(point=point, metrics={"y": float(x * x)})

    def test_rows_follow_grid_order_not_append_order(self):
        table = self._table()
        for x in (2, 3, 1):  # appended out of grid order
            table.append(self._result(x))
        assert [row["x"] for row in table.rows()] == [3, 1, 2]
        assert table.column("y") == [9.0, 1.0, 4.0]

    def test_append_invalidates_cached_rows(self):
        table = self._table()
        table.append(self._result(3))
        assert [row["x"] for row in table.rows()] == [3]
        table.append(self._result(1))
        assert [row["x"] for row in table.rows()] == [3, 1]

    def test_rows_returns_copies(self):
        table = self._table()
        table.append(self._result(3))
        table.rows()[0]["y_mean"] = -1.0
        assert table.rows()[0]["y_mean"] == 9.0

    def test_off_grid_coordinates_keep_appearance_order(self):
        table = self._table()
        table.append(self._result(9))  # not on the declared axis
        table.append(self._result(1))
        assert [row["x"] for row in table.rows()] == [1, 9]
