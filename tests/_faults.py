"""Fault-injection helpers for the crash-safety suite.

The crash-safe service's contract is only worth what the faults it
survives are worth, so the harness injects real ones:

* :class:`ServiceProcess` runs ``python -m repro serve`` as a child
  process that can be ``SIGKILL``-ed mid-job — no atexit handlers, no
  flush-on-exit, exactly the crash the WAL claims to survive;
* :func:`truncate_tail` / :func:`append_junk` corrupt a WAL the way a
  crashed writer does (torn final record) and the way disk rot does
  (undecodable bytes);
* :func:`send_partial_frame` opens a real client connection, writes
  half a frame, and vanishes — the server must drop the connection,
  not the service;
* :func:`wait_for` / :func:`poll_metric` are the polling primitives
  the recovery assertions are built from.

Like ``tests/_replay.py`` this module is standalone (stdlib + repro
only, no pytest) so the benchmark smoke suite can load it by path.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = [
    "REPO_ROOT",
    "ServiceProcess",
    "append_junk",
    "poll_metric",
    "read_frames",
    "send_partial_frame",
    "truncate_tail",
    "wait_for",
    "wal_path",
]


def wait_for(predicate, timeout_s: float = 20.0, interval_s: float = 0.05):
    """Poll ``predicate`` until it returns a truthy value (and return it)."""
    deadline = time.monotonic() + timeout_s
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"condition not reached within {timeout_s:.1f}s: {predicate}"
            )
        time.sleep(interval_s)


class ServiceProcess:
    """One ``python -m repro serve`` child, killable mid-job.

    The process inherits the repo root as cwd and ``src`` on
    ``PYTHONPATH``; stderr (the service's log channel) is captured to
    ``<state_dir or cwd>/serve-<n>.log`` for post-mortems.  ``kill()``
    delivers ``SIGKILL`` — the only signal a crash actually sends.
    """

    _count = 0

    def __init__(
        self,
        socket_path: str | Path,
        *,
        state_dir: str | Path | None = None,
        auth: str | Path | None = None,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        workers: int = 2,
        job_ttl: float | None = None,
        extra_args: tuple[str, ...] = (),
    ) -> None:
        self.socket_path = str(socket_path)
        self.state_dir = str(state_dir) if state_dir is not None else None
        self.auth = str(auth) if auth is not None else None
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.workers = workers
        self.job_ttl = job_ttl
        self.extra_args = tuple(extra_args)
        self.process: subprocess.Popen | None = None
        self.log_path: Path | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServiceProcess":
        if self.process is not None and self.process.poll() is None:
            raise RuntimeError("service process already running")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            self.socket_path,
            "--jobs",
            str(self.jobs),
            "--workers",
            str(self.workers),
        ]
        if self.cache_dir is not None:
            argv += ["--cache-dir", self.cache_dir]
        else:
            argv += ["--no-cache"]
        if self.state_dir is not None:
            argv += ["--state-dir", self.state_dir]
        if self.auth is not None:
            argv += ["--auth", self.auth]
        if self.job_ttl is not None:
            argv += ["--job-ttl", str(self.job_ttl)]
        argv += list(self.extra_args)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        log_dir = Path(self.state_dir) if self.state_dir else REPO_ROOT
        log_dir.mkdir(parents=True, exist_ok=True)
        ServiceProcess._count += 1
        self.log_path = log_dir / f"serve-{ServiceProcess._count}.log"
        with open(self.log_path, "wb") as log:
            self.process = subprocess.Popen(
                argv,
                cwd=REPO_ROOT,
                env=env,
                stdout=log,
                stderr=subprocess.STDOUT,
            )
        return self

    def wait_ready(self, timeout_s: float = 20.0) -> None:
        """Block until the socket answers (any response frame counts)."""

        def probe() -> bool:
            assert self.process is not None
            if self.process.poll() is not None:
                raise AssertionError(
                    f"service exited with {self.process.returncode} before "
                    f"becoming ready; log: {self.read_log()!r}"
                )
            try:
                with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                    sock.settimeout(2.0)
                    sock.connect(self.socket_path)
                    sock.sendall(b'{"op": "ping"}\n')
                    return bool(sock.makefile("rb").readline())
            except OSError:
                return False

        wait_for(probe, timeout_s=timeout_s)

    def kill(self) -> None:
        """SIGKILL — the crash the WAL exists for.  Idempotent."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10)

    def terminate(self) -> None:
        """Polite shutdown (SIGTERM), for test teardown paths."""
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.kill()

    def read_log(self) -> str:
        if self.log_path is None or not self.log_path.exists():
            return ""
        return self.log_path.read_text(errors="replace")

    def __enter__(self) -> "ServiceProcess":
        self.start()
        self.wait_ready()
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


# -- WAL corruption ----------------------------------------------------
def wal_path(state_dir: str | Path) -> Path:
    """The service's write-ahead log inside ``state_dir``."""
    return Path(state_dir) / "jobs.wal"


def truncate_tail(path: str | Path, nbytes: int) -> int:
    """Chop ``nbytes`` off the end of ``path`` (a torn final write)."""
    path = Path(path)
    size = path.stat().st_size
    keep = max(0, size - nbytes)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def append_junk(path: str | Path, data: bytes = b"{not json\n") -> None:
    """Append undecodable bytes — a corrupted trailing record."""
    with open(path, "ab") as handle:
        handle.write(data)


# -- connection faults -------------------------------------------------
def send_partial_frame(
    socket_path: str | Path, data: bytes = b'{"op": "submit", "spec": {'
) -> None:
    """Write half a frame and drop the connection without a newline."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(socket_path))
        sock.sendall(data)
    # closing without the terminating newline is the fault


# -- metrics polling ---------------------------------------------------
def poll_metric(
    socket_path: str | Path,
    name: str,
    *,
    minimum: float = 1.0,
    token: str | None = None,
    timeout_s: float = 30.0,
) -> float:
    """Wait until counter ``name`` on the live service reaches ``minimum``."""
    from repro.service.client import fetch_metrics

    def probe():
        try:
            snapshot = fetch_metrics(str(socket_path), token=token)
        except OSError:
            return None
        total = sum(
            float(m.get("value", 0.0))
            for m in snapshot.get("metrics", [])
            if m.get("name") == name
        )
        return total if total >= minimum else None

    return wait_for(probe, timeout_s=timeout_s)


def read_frames(raw: bytes) -> list[dict]:
    """Decode captured JSONL bytes into frames (helper for raw probes)."""
    frames = []
    for line in raw.splitlines():
        if line.strip():
            frames.append(json.loads(line))
    return frames
