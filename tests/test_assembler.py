"""Tests for the textual assembler."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError
from repro.isa.assembler import SUPPORTED_MNEMONICS, assemble


class TestAssemble:
    def test_standard_mix_block_equivalent(self):
        block = assemble(
            """
            mov r0, 1
            mov r1, 2
            mov r2, 3
            mov r3, 4
            jmp next
            """,
            base=0x400000,
        )
        assert block.size == 25
        assert block.uop_count == 5
        assert block.fits_one_dsb_line()

    def test_semicolon_separated(self):
        block = assemble("mov r0, 1; add r0, r1; jmp out", base=0)
        assert len(block.instructions) == 3

    def test_comments_ignored(self):
        block = assemble(
            "mov r0, 1  # load constant\nadd r0, r1 ; this is a comment\njmp x",
            base=0,
        )
        assert len(block.instructions) == 3

    def test_semicolon_statement_vs_comment(self):
        # ';' followed by a mnemonic is a separator, otherwise a comment.
        block = assemble("mov r0, 1; nop ; trailing words", base=0)
        assert len(block.instructions) == 2

    def test_lcp_mnemonic(self):
        block = assemble("add16 r2, r3", base=0)
        assert block.instructions[0].has_lcp
        assert block.lcp_count == 1

    def test_memory_mnemonics(self):
        block = assemble("load r0\nstore r1", base=0)
        assert block.instructions[0].touches_memory
        assert block.instructions[1].uop_count == 2

    def test_register_wraps_mod4(self):
        block = assemble("mov r7, 1", base=0)
        assert "r3" in block.instructions[0].mnemonic

    def test_case_insensitive(self):
        block = assemble("MOV r0, 1\nJMP x", base=0)
        assert len(block.instructions) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(LayoutError):
            assemble("vphaddd r0, r1", base=0)

    def test_empty_listing(self):
        with pytest.raises(LayoutError):
            assemble("  \n # only comments\n", base=0)

    def test_label_and_base(self):
        block = assemble("nop", base=0x1230 * 32, label="probe")
        assert block.base == 0x1230 * 32
        assert block.label == "probe"

    def test_all_supported_mnemonics_assemble(self):
        for mnemonic in SUPPORTED_MNEMONICS:
            block = assemble(f"{mnemonic} r0, r1", base=0)
            assert block.uop_count >= 1

    def test_runs_on_the_engine(self):
        """Assembled blocks plug straight into the frontend engine."""
        from repro.frontend.engine import FrontendEngine
        from repro.isa.program import LoopProgram

        block = assemble(
            "mov r0, 1\nmov r1, 2\nmov r2, 3\nmov r3, 4\njmp top", base=0x400000
        )
        report = FrontendEngine().run_loop(LoopProgram([block], 100))
        assert report.total_uops == 500
