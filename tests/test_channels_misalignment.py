"""Tests for the misalignment-based covert channels."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.misalignment import (
    MtMisalignmentChannel,
    NonMtMisalignmentChannel,
)
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G, XEON_E2288G
from repro.measure.noise import QUIET_PROFILE


def quiet_machine(spec=GOLD_6226, seed=21) -> Machine:
    return Machine(spec, seed=seed, timing_noise=QUIET_PROFILE,
                   smt_timing_noise=QUIET_PROFILE)


def quiet_config(**kwargs) -> ChannelConfig:
    base = dict(d=5, M=8, disturb_rate=0.0, sync_fail_rate=0.0)
    base.update(kwargs)
    return ChannelConfig(**base)


class TestNonMtMisalignment:
    def test_no_dsb_evictions(self):
        """Misalignment channels must not evict: that is their point
        (Section III-C: fewer accesses, no eviction footprint)."""
        machine = quiet_machine()
        channel = NonMtMisalignmentChannel(machine, quiet_config(), variant="fast")
        channel.send_bit(1)
        channel.send_bit(1)
        assert machine.perf.read("idq.dsb_evictions") == 0

    def test_fast_variant_bit_separation(self):
        channel = NonMtMisalignmentChannel(
            quiet_machine(), quiet_config(), variant="fast"
        )
        for _ in range(2):
            channel.send_bit(0)
            channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert one != pytest.approx(zero, rel=0.01)

    def test_stealthy_variant_smaller_margin_without_lsd(self):
        """On LSD-disabled machines both variants' m=0 bodies run from
        the DSB, so the stealthy decoy work demonstrably narrows the
        margin (on LSD machines the fast variant's m=0 body streams from
        the slower LSD, compressing its own margin instead)."""
        fast = NonMtMisalignmentChannel(
            quiet_machine(XEON_E2174G), quiet_config(), variant="fast"
        )
        stealthy = NonMtMisalignmentChannel(
            quiet_machine(XEON_E2174G), quiet_config(), variant="stealthy"
        )
        fast.calibrate()
        stealthy.calibrate()
        assert stealthy.decoder.margin < fast.decoder.margin

    def test_perfect_noiseless_transmission(self):
        channel = NonMtMisalignmentChannel(
            quiet_machine(), quiet_config(), variant="fast"
        )
        result = channel.transmit(alternating_bits(32))
        assert result.error_rate == 0.0

    def test_lsd_disabled_machine_still_works(self):
        """Without the LSD the encode blocks' extra windows still shift
        the timing (smaller margin, but a usable channel)."""
        channel = NonMtMisalignmentChannel(
            quiet_machine(XEON_E2174G), quiet_config(), variant="fast"
        )
        result = channel.transmit(alternating_bits(16))
        assert result.error_rate == 0.0

    def test_m_bounds(self):
        with pytest.raises(ChannelError):
            NonMtMisalignmentChannel(quiet_machine(), quiet_config(M=9))
        with pytest.raises(ChannelError):
            NonMtMisalignmentChannel(quiet_machine(), quiet_config(d=8, M=8))

    def test_bit_body_uses_misaligned_blocks_for_one(self):
        channel = NonMtMisalignmentChannel(quiet_machine(), quiet_config())
        body1 = channel.bit_body(1)
        spanning = [b for b in body1 if b.spans_windows]
        assert len(spanning) == 3  # M - d
        body0 = channel.bit_body(0)  # stealthy: aligned decoys
        assert not any(b.spans_windows for b in body0)


class TestMtMisalignment:
    def test_requires_smt(self):
        with pytest.raises(ChannelError):
            MtMisalignmentChannel(quiet_machine(XEON_E2288G))

    def test_bit_separation(self):
        channel = MtMisalignmentChannel(
            quiet_machine(), quiet_config(p=500, q=50)
        )
        for _ in range(2):
            channel.send_bit(0)
            channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert abs(one - zero) / zero > 0.02

    def test_transmission(self):
        channel = MtMisalignmentChannel(quiet_machine(), quiet_config(p=500, q=50))
        result = channel.transmit(alternating_bits(16))
        assert result.error_rate == 0.0

    def test_sender_blocks_are_misaligned(self):
        channel = MtMisalignmentChannel(quiet_machine(), quiet_config())
        assert all(b.spans_windows for b in channel._sender_blocks)
        assert not any(b.spans_windows for b in channel._receiver_blocks)

    def test_defaults_follow_paper(self):
        channel = MtMisalignmentChannel(quiet_machine())
        assert channel.config.d == 5
        assert channel.config.M == 8
        assert channel.config.p == 1000
