"""Fuzz-style property tests: engine invariants under arbitrary layouts.

Whatever program shape the engine is fed — aligned, misaligned, LCP-mixed,
set-colliding, window-overlapping — these invariants must hold:

* **uop conservation** — every uop of every iteration is delivered by
  exactly one path;
* **non-negative, finite costs** — cycles and energy never go negative
  or NaN;
* **DSB capacity** — no set ever exceeds its ways;
* **extrapolation consistency** — fast and exact runs agree.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.engine import FrontendEngine
from repro.frontend.params import FrontendParams
from repro.isa.blocks import lcp_block, standard_mix_block
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram

LAYOUT = BlockChainLayout()


@st.composite
def arbitrary_programs(draw) -> LoopProgram:
    """Random mixtures of aligned/misaligned/LCP blocks over random sets."""
    n_blocks = draw(st.integers(min_value=1, max_value=14))
    blocks = []
    for i in range(n_blocks):
        kind = draw(st.sampled_from(["aligned", "misaligned", "lcp"]))
        dsb_set = draw(st.integers(min_value=0, max_value=31))
        slot = draw(st.integers(min_value=0, max_value=20))
        if kind == "aligned":
            blocks.append(
                standard_mix_block(LAYOUT.block_address(dsb_set, slot))
            )
        elif kind == "misaligned":
            blocks.append(
                standard_mix_block(
                    LAYOUT.block_address(dsb_set, slot, misaligned=True)
                )
            )
        else:
            blocks.append(
                lcp_block(LAYOUT.block_address(dsb_set, slot), lcp_sets=4,
                          mixed=draw(st.booleans()))
            )
    iterations = draw(st.integers(min_value=1, max_value=30))
    return LoopProgram(blocks, iterations)


class TestEngineInvariants:
    @given(arbitrary_programs())
    @settings(max_examples=60, deadline=None)
    def test_uop_conservation(self, program):
        engine = FrontendEngine()
        report = engine.run_loop(program, exact=True)
        assert report.total_uops == program.total_uops

    @given(arbitrary_programs())
    @settings(max_examples=60, deadline=None)
    def test_costs_finite_and_positive(self, program):
        engine = FrontendEngine()
        report = engine.run_loop(program, exact=True)
        assert math.isfinite(report.cycles) and report.cycles > 0
        assert math.isfinite(report.energy_nj) and report.energy_nj > 0
        assert 0 < report.ipc <= 4.0 + 1e-9

    @given(arbitrary_programs())
    @settings(max_examples=40, deadline=None)
    def test_dsb_capacity_never_exceeded(self, program):
        engine = FrontendEngine()
        engine.run_loop(program, exact=True)
        for index in range(engine.params.dsb_sets):
            used = sum(line.ways for line in engine.dsb._sets[index].values())
            assert used <= engine.params.dsb_ways

    @given(arbitrary_programs())
    @settings(max_examples=30, deadline=None)
    def test_extrapolation_matches_exact(self, program):
        exact = FrontendEngine().run_loop(program, exact=True)
        fast = FrontendEngine().run_loop(program)
        assert fast.cycles == pytest.approx(exact.cycles, rel=1e-9)
        assert fast.total_uops == exact.total_uops
        assert fast.uops_mite == exact.uops_mite

    @given(arbitrary_programs(), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_smt_mode_never_cheaper(self, program, lsd_enabled):
        """SMT-active frontend arbitration can only add cycles."""
        solo = FrontendEngine(lsd_enabled=lsd_enabled).run_loop(
            program, exact=True
        )
        shared = FrontendEngine(lsd_enabled=lsd_enabled).run_loop(
            program, smt_active=True, exact=True
        )
        assert shared.cycles >= solo.cycles - 1e-9

    @given(arbitrary_programs())
    @settings(max_examples=30, deadline=None)
    def test_lsd_disabled_never_uses_lsd(self, program):
        engine = FrontendEngine(lsd_enabled=False)
        report = engine.run_loop(program, exact=True)
        assert report.uops_lsd == 0

    @given(arbitrary_programs())
    @settings(max_examples=30, deadline=None)
    def test_uniform_delivery_conserves_uops(self, program):
        params = FrontendParams(uniform_delivery=True)
        report = FrontendEngine(params).run_loop(program, exact=True)
        assert report.total_uops == program.total_uops
