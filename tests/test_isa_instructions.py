"""Tests for the instruction model."""

from __future__ import annotations

import pytest

from repro.isa.instructions import (
    Instruction,
    add_imm,
    add_reg,
    add_reg_lcp,
    jmp_rel8,
    jmp_rel32,
    load,
    mov_imm32,
    mov_reg,
    nop,
    store,
)
from repro.isa.uops import Uop, UopKind


class TestFactories:
    def test_mov_imm32_encoding(self):
        instr = mov_imm32()
        assert instr.length == 5
        assert instr.uop_count == 1
        assert not instr.has_lcp
        assert not instr.is_branch

    def test_jmp_rel32(self):
        instr = jmp_rel32()
        assert instr.length == 5
        assert instr.is_branch
        assert instr.uops[0].is_branch

    def test_jmp_rel8_shorter(self):
        assert jmp_rel8().length == 2

    def test_lcp_add(self):
        instr = add_reg_lcp()
        assert instr.has_lcp
        assert instr.length == 3  # 0x66 prefix + 2-byte add
        assert instr.uop_count == 1

    def test_plain_add(self):
        assert add_reg().length == 2
        assert not add_reg().has_lcp
        assert add_imm().length == 6

    def test_nop_single_byte(self):
        assert nop().length == 1
        assert nop().uops[0].kind is UopKind.NOP

    def test_memory_instructions(self):
        assert load().touches_memory
        assert store().touches_memory
        assert store().uop_count == 2  # store-address + store-data
        assert not mov_reg().touches_memory


class TestInstructionValidation:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Instruction("bad", 0, (Uop(UopKind.NOP),))

    def test_rejects_over_15_bytes(self):
        with pytest.raises(ValueError):
            Instruction("bad", 16, (Uop(UopKind.NOP),))

    def test_rejects_no_uops(self):
        with pytest.raises(ValueError):
            Instruction("bad", 1, ())

    def test_complex_detection(self):
        assert store().is_complex
        assert not mov_imm32().is_complex


class TestUop:
    def test_default_ports_from_kind(self):
        assert Uop(UopKind.ALU).ports == frozenset({0, 1, 5, 6})
        assert Uop(UopKind.BRANCH).ports == frozenset({0, 6})
        assert Uop(UopKind.STORE_DATA).ports == frozenset({4})

    def test_custom_ports(self):
        uop = Uop(UopKind.ALU, frozenset({0}))
        assert uop.ports == frozenset({0})

    def test_rejects_unknown_port(self):
        with pytest.raises(ValueError):
            Uop(UopKind.ALU, frozenset({9}))

    def test_memory_flags(self):
        assert Uop(UopKind.LOAD).touches_memory
        assert not Uop(UopKind.ALU).touches_memory
