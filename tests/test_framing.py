"""Tests for covert-channel message framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.base import ChannelConfig
from repro.channels.eviction import NonMtEvictionChannel
from repro.channels.framing import PREAMBLE, FramedProtocol, crc8
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.measure.noise import QUIET_PROFILE


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/ATM of "123456789" is 0xF4.
        assert crc8(b"123456789") == 0xF4

    def test_empty(self):
        assert crc8(b"") == 0

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=60)
    def test_detects_single_byte_corruption(self, data):
        original = crc8(data)
        corrupted = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc8(corrupted) != original

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=40)
    def test_range(self, data):
        assert 0 <= crc8(data) <= 0xFF


class TestFrameCodec:
    @given(st.binary(min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_roundtrip(self, payload):
        bits = FramedProtocol.frame_bits(payload)
        result = FramedProtocol.parse_bits(bits)
        assert result.ok
        assert result.payload == payload

    def test_frame_layout(self):
        bits = FramedProtocol.frame_bits(b"\x42")
        assert len(bits) == 8 + 8 + 8 + 8  # preamble, length, payload, crc
        assert bits[:8] == [1, 0, 1, 0, 1, 0, 1, 0]  # 0xAA

    def test_rejects_bad_preamble(self):
        bits = FramedProtocol.frame_bits(b"hi")
        bits[0] ^= 1
        result = FramedProtocol.parse_bits(bits)
        assert not result.ok and result.reason == "bad preamble"

    def test_rejects_corrupted_payload(self):
        bits = FramedProtocol.frame_bits(b"hello")
        bits[20] ^= 1  # flip a payload bit
        result = FramedProtocol.parse_bits(bits)
        assert not result.ok and result.reason == "crc mismatch"

    def test_rejects_truncated(self):
        bits = FramedProtocol.frame_bits(b"hello")[:20]
        assert FramedProtocol.parse_bits(bits).reason in ("truncated frame", "bad length")

    def test_rejects_oversized_payload(self):
        with pytest.raises(ChannelError):
            FramedProtocol.frame_bits(b"x" * 256)
        with pytest.raises(ChannelError):
            FramedProtocol.frame_bits(b"")

    def test_preamble_constant(self):
        assert PREAMBLE == 0xAA


class TestFramedTransport:
    def make_protocol(self, seed=9) -> FramedProtocol:
        machine = Machine(GOLD_6226, seed=seed, timing_noise=QUIET_PROFILE)
        channel = NonMtEvictionChannel(
            machine, ChannelConfig(disturb_rate=0.0), variant="fast"
        )
        return FramedProtocol(channel)

    def test_clean_channel_delivers_frame(self):
        result = self.make_protocol().send(b"secret!")
        assert result.ok
        assert result.payload == b"secret!"

    def test_fragmented_message(self):
        protocol = self.make_protocol()
        results = protocol.send_message(b"a longer exfiltration payload", fragment_size=8)
        assert len(results) == 4
        assert all(r.ok for r in results)
        assert b"".join(r.payload for r in results) == b"a longer exfiltration payload"

    def test_noisy_channel_rejected_not_garbled(self):
        """Under heavy noise the frame FAILS CRC rather than silently
        delivering corrupted bytes."""
        machine = Machine(GOLD_6226, seed=9)
        machine.timer.profile = machine.timer.profile.scaled(8.0)
        channel = NonMtEvictionChannel(machine, variant="fast")
        protocol = FramedProtocol(channel)
        results = [protocol.send(b"payload-0123456789", calibrate=(i == 0))
                   for i in range(6)]
        for result in results:
            assert result.ok or result.payload == b""

    def test_send_message_validation(self):
        protocol = self.make_protocol()
        with pytest.raises(ChannelError):
            protocol.send_message(b"")
        with pytest.raises(ChannelError):
            protocol.send_message(b"x", fragment_size=0)
