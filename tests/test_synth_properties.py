"""Property tests for the synthesiser's determinism contract.

Two invariances carry the whole ``repro.synth`` design:

* **hash seed** — generator and mutator draws must be byte-identical
  across interpreter runs with different ``PYTHONHASHSEED`` values
  (numpy streams named by ``derive_seed`` erase hash ordering, but a
  single stray ``set`` iteration in the grammar would break replay);
* **executor** — a campaign must produce the same report through the
  serial executor and the distributed cluster fabric, because batch
  scoring is the one stage that fans out.

Plus the grammar-level properties Hypothesis is good at: every genome
the generator can draw round-trips through JSON, stays inside the
grammar bounds, and builds work-balanced bit bodies.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.layout import BlockChainLayout
from repro.synth import CandidateProgram, ProgramGenerator, Segment

_segments = st.builds(
    Segment,
    kind=st.sampled_from(["std", "lcp"]),
    dsb_set=st.integers(0, 31),
    count=st.integers(1, 12),
    misaligned=st.booleans(),
    lcp_sets=st.integers(1, 8),
)

_candidates = st.builds(
    CandidateProgram,
    probe=st.lists(_segments, min_size=1, max_size=4).map(tuple),
    encode=st.lists(_segments, min_size=1, max_size=4).map(tuple),
    decoy_stride=st.integers(1, 31),
    iterations=st.integers(1, 200),
)


class TestGenomeProperties:
    @given(candidate=_candidates)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_is_identity(self, candidate):
        assert CandidateProgram.from_json(candidate.to_json()) == candidate
        # Canonical form: equal genomes are equal bytes.
        assert (
            CandidateProgram.from_json(candidate.to_json()).to_json()
            == candidate.to_json()
        )

    @given(candidate=_candidates)
    @settings(max_examples=50, deadline=None)
    def test_bit_bodies_are_always_work_balanced(self, candidate):
        zero, one = candidate.bodies(BlockChainLayout())
        assert len(zero) == len(one) == candidate.total_blocks
        assert sorted(len(b.instructions) for b in zero) == sorted(
            len(b.instructions) for b in one
        )

    @given(seed=st.integers(0, 2**31), index=st.integers(0, 64))
    @settings(max_examples=50, deadline=None)
    def test_every_fresh_draw_is_inside_the_grammar(self, seed, index):
        # CandidateProgram/Segment validate on construction, so drawing
        # without an exception IS the property; key() must be canonical.
        candidate = ProgramGenerator(seed).generate(index)
        assert CandidateProgram.from_json(candidate.key()) == candidate

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_mutations_stay_inside_the_grammar(self, seed):
        generator = ProgramGenerator(seed)
        a, b = generator.generate(0), generator.generate(1)
        for index in range(8):
            mutated = generator.mutate(a, b, index)
            assert CandidateProgram.from_json(mutated.key()) == mutated


# The subprocess probe: fresh draws AND mutations, serialized
# canonically.  Any hash-ordered container leaking into a draw would
# shift values between interpreter runs with different hash seeds.
_HASH_PROBE = """
import json
from repro.synth import ProgramGenerator

generator = ProgramGenerator(11)
draws = generator.fingerprint_inputs(range(6))
a, b = generator.generate(0), generator.generate(1)
mutations = json.dumps(
    [generator.mutate(a, b, i).to_dict() for i in range(6)],
    sort_keys=True,
    separators=(",", ":"),
)
print(json.dumps([draws, mutations]))
"""


class TestHashSeedInvariance:
    def test_generator_identical_across_pythonhashseed(self):
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for hash_seed in ("0", "1", "4242", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = repo_src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            result = subprocess.run(
                [sys.executable, "-c", _HASH_PROBE],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(json.loads(result.stdout))
        assert all(out == outputs[0] for out in outputs[1:]), (
            "generator drifted across PYTHONHASHSEED values"
        )


class TestDistributedEquivalence:
    def test_cluster_campaign_is_byte_identical_to_serial(self):
        from repro.cluster import DistributedExecutor
        from repro.synth import SearchConfig, SynthSearch

        config = SearchConfig(
            seed=7, budget=8, bits=24, max_findings=1, shrink_budget=16
        )
        serial = SynthSearch(config).run()
        distributed = SynthSearch(config).run(
            executor=DistributedExecutor(workers=2, shard_size=2)
        )
        assert serial.to_json() == distributed.to_json()
