"""Contract tests for the pluggable frontend simulation backends.

The backend abstraction only earns its keep if it is *invisible*: every
registered backend must produce byte-identical :class:`LoopReport`\\ s and
microarchitectural state for every program, and the backend choice must
never leak into sweep point identity (cache keys).  These tests pin that
contract, the registry precedence rules, the steady-state extrapolation
bugfixes that motivated the refactor, and the per-backend observability
instruments.
"""

from __future__ import annotations

import dataclasses
import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.exec import SerialExecutor
from repro.exec.canonical import callable_fingerprint, point_key
from repro.frontend.backends import (
    ENV_VAR,
    available_backends,
    create_backend,
    default_backend_name,
    resolve_backend_name,
    set_default_backend,
)
from repro.frontend.backends.reference import ReferenceBackend
from repro.frontend.backends.vectorized import VectorizedBackend
from repro.frontend.engine import (
    FrontendEngine,
    _IterationCost,
    extrapolate_tail,
)
from repro.isa.blocks import lcp_block, standard_mix_block
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.obs import MetricsRegistry, use_registry
from repro.service.spec import sweep_point_metrics
from repro.sweep import ParameterSweep
from tests._replay import assert_replay

LAYOUT = BlockChainLayout()

BACKENDS = ("reference", "vectorized")


@pytest.fixture(autouse=True)
def _pristine_backend_selection(monkeypatch):
    """No test leaks a process default or env override to the next."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


@st.composite
def arbitrary_programs(draw) -> LoopProgram:
    """Random aligned/misaligned/LCP block mixtures (fuzz-test idiom)."""
    n_blocks = draw(st.integers(min_value=1, max_value=12))
    blocks = []
    for _ in range(n_blocks):
        kind = draw(st.sampled_from(["aligned", "misaligned", "lcp"]))
        dsb_set = draw(st.integers(min_value=0, max_value=31))
        slot = draw(st.integers(min_value=0, max_value=20))
        if kind == "aligned":
            blocks.append(standard_mix_block(LAYOUT.block_address(dsb_set, slot)))
        elif kind == "misaligned":
            blocks.append(
                standard_mix_block(
                    LAYOUT.block_address(dsb_set, slot, misaligned=True)
                )
            )
        else:
            blocks.append(
                lcp_block(
                    LAYOUT.block_address(dsb_set, slot),
                    lcp_sets=4,
                    mixed=draw(st.booleans()),
                )
            )
    iterations = draw(
        st.one_of(
            st.integers(min_value=1, max_value=30),
            st.sampled_from([500, 5_000, 2_000_000]),  # extrapolation regime
        )
    )
    return LoopProgram(blocks, iterations)


def _engine_state(engine: FrontendEngine) -> tuple:
    """Everything observable about an engine's microarchitectural state."""
    return (
        dataclasses.astuple(engine.dsb.stats),
        tuple(
            tuple((key, line.uops, line.ways) for key, line in s.items())
            for s in engine.dsb._sets
        ),
        tuple(
            (
                t,
                lsd.state,
                dataclasses.astuple(lsd.stats),
                lsd._candidate,
                lsd._qualify_streak,
                tuple(sorted(lsd._loop_windows)),
            )
            for t, lsd in sorted(engine.lsds.items())
        ),
        dict(engine._last_path),
        dict(engine._mite_streak),
    )


# ----------------------------------------------------------------------
# registry and selection precedence
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        names = available_backends()
        assert "reference" in names and "vectorized" in names
        assert names == tuple(sorted(names))

    def test_create_returns_fresh_instances(self):
        a = create_backend("vectorized")
        b = create_backend("vectorized")
        assert isinstance(a, VectorizedBackend) and a is not b
        assert isinstance(create_backend("reference"), ReferenceBackend)

    def test_unknown_backend_rejected_with_catalogue(self):
        with pytest.raises(ConfigurationError) as err:
            create_backend("turbo")
        assert "reference" in str(err.value)

    def test_precedence_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        set_default_backend("vectorized")
        assert resolve_backend_name("reference") == "reference"

    def test_precedence_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        set_default_backend("reference")
        assert resolve_backend_name(None) == "reference"

    def test_precedence_env_beats_builtin(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert resolve_backend_name(None) == "vectorized"

    def test_builtin_default_is_reference(self):
        assert resolve_backend_name(None) == "reference"
        assert default_backend_name() == "reference"

    def test_set_default_validates_and_returns_previous(self):
        assert set_default_backend("vectorized") is None
        assert set_default_backend(None) == "vectorized"
        with pytest.raises(ConfigurationError):
            set_default_backend("turbo")

    def test_engine_owns_one_lazily_created_instance(self):
        engine = FrontendEngine(backend="vectorized")
        assert engine.backend is engine.backend
        other = FrontendEngine(backend="vectorized")
        assert engine.backend is not other.backend
        assert engine.backend.name == "vectorized"


# ----------------------------------------------------------------------
# steady-state detection key (bugfix regression)
# ----------------------------------------------------------------------
class TestIterationCostKey:
    BASE = dict(
        cycles=10.0,
        uops_lsd=0,
        uops_dsb=24,
        uops_mite=8,
        windows_lsd=0,
        windows_dsb=4,
        windows_mite=2,
        switches_to_mite=1,
        switches_to_dsb=1,
        lcp_stalls=2,
        lsd_flushes=0,
        lsd_captures=0,
        dsb_evictions=0,
        energy_nj=5.0,
    )

    def test_every_field_participates(self):
        base = _IterationCost(**self.BASE)
        for field in dataclasses.fields(_IterationCost):
            bumped = dataclasses.replace(
                base, **{field.name: getattr(base, field.name) + 1}
            )
            assert bumped.key() != base.key(), field.name

    def test_switch_count_variation_breaks_equality(self):
        """Regression: the old key was the (cycles, uops_lsd, uops_dsb,
        uops_mite, lcp_stalls) subset, so iterations differing only in
        switch/flush/eviction/energy counters compared equal and
        extrapolation scaled the wrong deltas."""
        a = _IterationCost(**self.BASE)
        b = dataclasses.replace(
            a, switches_to_mite=3, switches_to_dsb=3, energy_nj=9.0
        )
        old_subset = ("cycles", "uops_lsd", "uops_dsb", "uops_mite", "lcp_stalls")
        assert all(getattr(a, f) == getattr(b, f) for f in old_subset)
        assert a.key() != b.key()


# ----------------------------------------------------------------------
# scaled() / extrapolate_tail conservation (bugfix regression)
# ----------------------------------------------------------------------
class TestExtrapolationConservation:
    PREV = _IterationCost(
        cycles=12.5,
        uops_lsd=0,
        uops_dsb=30,
        uops_mite=10,
        windows_lsd=0,
        windows_dsb=5,
        windows_mite=2,
        switches_to_mite=2,
        switches_to_dsb=2,
        lcp_stalls=4,
        lsd_flushes=0,
        lsd_captures=0,
        dsb_evictions=1,
        energy_nj=7.25,
    )
    LAST = _IterationCost(
        cycles=9.75,
        uops_lsd=0,
        uops_dsb=36,
        uops_mite=4,
        windows_lsd=0,
        windows_dsb=6,
        windows_mite=1,
        switches_to_mite=1,
        switches_to_dsb=1,
        lcp_stalls=2,
        lsd_flushes=0,
        lsd_captures=0,
        dsb_evictions=0,
        energy_nj=6.5,
    )

    @given(st.integers(min_value=0, max_value=10**7))
    @settings(max_examples=60, deadline=None)
    def test_scaled_integral_factor_is_exact(self, factor):
        report = self.LAST.to_report()
        scaled = report.scaled(factor)
        assert scaled.uops_dsb == report.uops_dsb * factor
        assert scaled.uops_mite == report.uops_mite * factor
        assert scaled.lcp_stalls == report.lcp_stalls * factor
        assert scaled.switches_to_mite == report.switches_to_mite * factor
        assert scaled.cycles == report.cycles * factor

    def test_period_two_odd_remaining_golden(self):
        """5 remaining after ...prev,last ends => prev,last,prev,last,prev."""
        tail = extrapolate_tail(self.PREV, self.LAST, 5, period_two=True)
        assert tail.iterations == 5
        assert tail.simulated_iterations == 0
        assert tail.uops_dsb == 3 * self.PREV.uops_dsb + 2 * self.LAST.uops_dsb
        assert tail.uops_mite == 3 * self.PREV.uops_mite + 2 * self.LAST.uops_mite
        assert tail.lcp_stalls == 3 * self.PREV.lcp_stalls + 2 * self.LAST.lcp_stalls
        assert (
            tail.switches_to_mite
            == 3 * self.PREV.switches_to_mite + 2 * self.LAST.switches_to_mite
        )
        assert tail.dsb_evictions == 3 * self.PREV.dsb_evictions
        assert tail.cycles == 3 * self.PREV.cycles + 2 * self.LAST.cycles

    def test_period_two_even_remaining_golden(self):
        tail = extrapolate_tail(self.PREV, self.LAST, 6, period_two=True)
        assert tail.uops_dsb == 3 * (self.PREV.uops_dsb + self.LAST.uops_dsb)
        assert tail.total_uops == 3 * (
            self.PREV.uops_dsb
            + self.PREV.uops_mite
            + self.LAST.uops_dsb
            + self.LAST.uops_mite
        )

    def test_period_one_matches_repeated_merge(self):
        tail = extrapolate_tail(None, self.LAST, 7, period_two=False)
        manual = self.LAST.to_report()
        for _ in range(6):
            manual.merge(self.LAST.to_report())
        assert tail.uops_dsb == manual.uops_dsb
        assert tail.cycles == pytest.approx(manual.cycles, rel=0, abs=1e-9)

    @given(st.integers(min_value=1, max_value=1_000_001))
    @settings(max_examples=60, deadline=None)
    def test_period_two_conserves_uops_for_any_remaining(self, remaining):
        tail = extrapolate_tail(self.PREV, self.LAST, remaining, period_two=True)
        head = (remaining + 1) // 2
        assert tail.total_uops == head * (
            self.PREV.uops_dsb + self.PREV.uops_mite
        ) + (remaining - head) * (self.LAST.uops_dsb + self.LAST.uops_mite)

    def test_extrapolated_run_conserves_uops_end_to_end(self):
        """A DSB/MITE-alternating loop at sweep-scale iteration counts
        must conserve uops exactly — the banker's-rounding scaled() path
        drifted by one window on odd extrapolations."""
        program = LoopProgram(
            [standard_mix_block(LAYOUT.block_address(s, 3)) for s in range(6)],
            1_000_001,
        )
        for backend in BACKENDS:
            report = FrontendEngine(backend=backend).run_loop(program)
            assert report.total_uops == program.total_uops


# ----------------------------------------------------------------------
# cross-backend bit identity
# ----------------------------------------------------------------------
class TestCrossBackendIdentity:
    @given(
        arbitrary_programs(),
        st.booleans(),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_reports_and_state_byte_identical(self, program, lsd_enabled, runs):
        ref = FrontendEngine(lsd_enabled=lsd_enabled, backend="reference")
        vec = FrontendEngine(lsd_enabled=lsd_enabled, backend="vectorized")
        for _ in range(runs):
            a = ref.run_loop(program)
            b = vec.run_loop(program)
            assert dataclasses.astuple(a) == dataclasses.astuple(b)
        assert _engine_state(ref) == _engine_state(vec)

    @given(arbitrary_programs(), st.integers(min_value=0, max_value=1))
    @settings(max_examples=25, deadline=None)
    def test_two_thread_engines_agree(self, program, thread):
        ref = FrontendEngine(n_threads=2, backend="reference")
        vec = FrontendEngine(n_threads=2, backend="vectorized")
        a = ref.run_loop(program, thread=thread)
        b = vec.run_loop(program, thread=thread)
        assert dataclasses.astuple(a) == dataclasses.astuple(b)
        assert _engine_state(ref) == _engine_state(vec)

    @given(arbitrary_programs())
    @settings(max_examples=25, deadline=None)
    def test_smt_active_falls_back_identically(self, program):
        ref = FrontendEngine(n_threads=2, backend="reference")
        vec = FrontendEngine(n_threads=2, backend="vectorized")
        a = ref.run_loop(program, smt_active=True)
        b = vec.run_loop(program, smt_active=True)
        assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_lsd_toggle_invalidates_cached_qualification(self):
        """Regression: trace tables cached structural LSD qualification
        including the ``enabled`` bit, so a microcode patch flipping the
        LSD on a live core (``Core.set_lsd_enabled``) left the vectorized
        backend streaming a disabled LSD."""
        program = LoopProgram(
            [standard_mix_block(LAYOUT.block_address(s, 7)) for s in range(4)],
            5_000,
        )
        machines = {
            backend: Machine(GOLD_6226, seed=71, backend=backend)
            for backend in BACKENDS
        }
        for enabled, expect_lsd in ((True, True), (False, False), (True, True)):
            reports = {}
            for backend, machine in machines.items():
                machine.core.set_lsd_enabled(enabled)
                reports[backend] = machine.run_loop(program)
                assert (reports[backend].uops_lsd > 0) == expect_lsd, backend
            assert dataclasses.astuple(reports["reference"]) == dataclasses.astuple(
                reports["vectorized"]
            )

    def test_exact_mode_agrees(self):
        program = LoopProgram(
            [standard_mix_block(LAYOUT.block_address(s, 5)) for s in range(4)],
            40,
        )
        a = FrontendEngine(backend="reference").run_loop(program, exact=True)
        b = FrontendEngine(backend="vectorized").run_loop(program, exact=True)
        assert dataclasses.astuple(a) == dataclasses.astuple(b)


# ----------------------------------------------------------------------
# deterministic replay + cache identity
# ----------------------------------------------------------------------
class TestSweepDeterminism:
    GRID = {"d": [2, 4], "p": [3]}

    def _table(self):
        factory = functools.partial(
            sweep_point_metrics, "Gold 6226", "eviction", "stealthy", 16
        )
        sweep = ParameterSweep(factory, self.GRID, trials=1, base_seed=11)
        return sweep.run(executor=SerialExecutor())

    def test_replay_fixture_per_backend(self):
        captures = {}
        for backend in BACKENDS:
            set_default_backend(backend)
            table = self._table()
            assert_replay(f"frontend_backend_{backend}", table)
            captures[backend] = table.rows()
        assert captures["reference"] == captures["vectorized"]

    def test_point_key_ignores_backend_selection(self, monkeypatch):
        factory = functools.partial(
            sweep_point_metrics, "Gold 6226", "eviction", "stealthy", 16
        )
        values = {"d": 2, "p": 3}
        baseline = point_key(values, 0, 11, callable_fingerprint(factory))
        set_default_backend("vectorized")
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert point_key(values, 0, 11, callable_fingerprint(factory)) == baseline


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestBackendInstruments:
    def test_sim_metrics_tagged_per_backend(self):
        program = LoopProgram(
            [standard_mix_block(LAYOUT.block_address(s, 9)) for s in range(3)],
            25,
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            for backend in BACKENDS:
                FrontendEngine(backend=backend).run_loop(program)
        text = json.dumps(registry.snapshot(), sort_keys=True)
        assert "sim.points" in text and "sim.latency" in text
        assert '"reference"' in text and '"vectorized"' in text
