"""Tests for DSB-set-targeted chain layout (Figure 5 properties)."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError
from repro.isa.layout import MISALIGN_OFFSET, BlockChainLayout


@pytest.fixture
def layout() -> BlockChainLayout:
    return BlockChainLayout(dsb_sets=32, region_base=0x400000)


class TestAddressing:
    def test_period_is_1024(self, layout):
        assert layout.period == 32 * 32

    def test_set_index_bits(self, layout):
        """Set index is addr[9:5] (Section III-A2)."""
        assert layout.set_index(0x400000) == 0
        assert layout.set_index(0x400020) == 1
        assert layout.set_index(0x400000 + 31 * 32) == 31
        assert layout.set_index(0x400000 + 32 * 32) == 0  # wraps

    def test_block_address_same_set(self, layout):
        for slot in range(10):
            addr = layout.block_address(dsb_set=5, way_slot=slot)
            assert layout.set_index(addr) == 5

    def test_misaligned_offset(self, layout):
        aligned = layout.block_address(3, 0)
        misaligned = layout.block_address(3, 0, misaligned=True)
        assert misaligned - aligned == MISALIGN_OFFSET == 16

    def test_rejects_bad_set(self, layout):
        with pytest.raises(LayoutError):
            layout.block_address(32, 0)
        with pytest.raises(LayoutError):
            layout.block_address(-1, 0)

    def test_rejects_unaligned_region(self):
        with pytest.raises(LayoutError):
            BlockChainLayout(dsb_sets=32, region_base=0x400010)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(LayoutError):
            BlockChainLayout(dsb_sets=33)


class TestChains:
    def test_chain_all_same_set(self, layout):
        for block in layout.chain(7, 9):
            assert layout.set_index(block.windows[0]) == 7

    def test_chain_distinct_addresses(self, layout):
        bases = [b.base for b in layout.chain(7, 9)]
        assert len(set(bases)) == 9

    def test_first_slot_disjoint(self, layout):
        receiver = layout.chain(3, 6)
        sender = layout.chain(3, 3, first_slot=6)
        assert not {b.base for b in receiver} & {b.base for b in sender}

    def test_misaligned_chain_spans(self, layout):
        for block in layout.chain(3, 4, misaligned=True):
            assert block.spans_windows

    def test_mixed_chain_composition(self, layout):
        blocks = layout.mixed_chain(3, aligned_count=5, misaligned_count=2)
        assert sum(1 for b in blocks if not b.spans_windows) == 5
        assert sum(1 for b in blocks if b.spans_windows) == 2

    def test_mixed_chain_rejects_empty(self, layout):
        with pytest.raises(LayoutError):
            layout.mixed_chain(3, 0, 0)

    def test_sweep_covers_all_sets(self, layout):
        chains = layout.sweep_chains(count_per_set=8)
        assert len(chains) == 32
        for dsb_set, chain in enumerate(chains):
            assert all(layout.set_index(b.windows[0]) == dsb_set for b in chain)

    def test_rejects_empty_chain(self, layout):
        with pytest.raises(LayoutError):
            layout.chain(3, 0)


class TestL1iNonInterference:
    """Figure 5: same-DSB-set chains spread over L1I sets.

    A 1024-byte stride revisits an L1I set every 4 blocks (64 sets x 64
    bytes = 4096 bytes), so even a 9-block chain puts at most 3 blocks
    in any one 8-way L1I set: DSB evictions never imply L1I evictions.
    """

    def test_nine_blocks_at_most_three_per_l1i_set(self, layout):
        l1i_sets: dict[int, int] = {}
        for block in layout.chain(3, 9):
            index = (block.base // 64) % 64
            l1i_sets[index] = l1i_sets.get(index, 0) + 1
        assert max(l1i_sets.values()) <= 3

    def test_chain_never_fills_l1i_ways(self, layout):
        # Even a chain as long as two full DSB sets' worth of ways.
        l1i_sets: dict[int, int] = {}
        for block in layout.chain(3, 16):
            index = (block.base // 64) % 64
            l1i_sets[index] = l1i_sets.get(index, 0) + 1
        assert max(l1i_sets.values()) < 8  # below L1I associativity
