"""Tests for the counting-thread timer fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.eviction import NonMtEvictionChannel
from repro.errors import MeasurementError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.measure.counting_thread import CountingThreadTimer
from repro.measure.noise import QUIET_PROFILE


def make_timer(**kwargs) -> CountingThreadTimer:
    defaults = dict(profile=QUIET_PROFILE, deschedule_rate=0.0)
    defaults.update(kwargs)
    return CountingThreadTimer(np.random.default_rng(0), **defaults)


class TestCountingThreadTimer:
    def test_quantisation(self):
        timer = make_timer(ticks_per_cycle=0.5)  # 2-cycle granularity
        sample = timer.measure(1001.0)
        assert sample.measured_cycles % timer.granularity_cycles == pytest.approx(0.0)

    def test_granularity(self):
        assert make_timer(ticks_per_cycle=0.25).granularity_cycles == 4.0

    def test_mean_tracks_truth(self):
        timer = make_timer(ticks_per_cycle=0.4)
        samples = [timer.measure(10_000.0).measured_cycles for _ in range(300)]
        assert np.mean(samples) == pytest.approx(10_000.0, rel=0.01)

    def test_coarser_than_rdtscp(self):
        """Repeated identical measurements spread over >= 1 granule."""
        timer = make_timer(ticks_per_cycle=0.1)  # 10-cycle granularity
        values = {timer.measure(995.0).measured_cycles for _ in range(100)}
        assert len(values) >= 2
        assert max(values) - min(values) >= timer.granularity_cycles

    def test_deschedule_loses_time(self):
        timer = make_timer(deschedule_rate=1.0, deschedule_mean=5_000.0)
        samples = [timer.measure(100_000.0).measured_cycles for _ in range(200)]
        assert np.mean(samples) < 97_000.0

    def test_validation(self):
        with pytest.raises(MeasurementError):
            make_timer(ticks_per_cycle=0.0)
        with pytest.raises(MeasurementError):
            make_timer(deschedule_rate=1.5)

    def test_channel_still_works_with_counting_thread(self):
        """The paper's claim: attacks survive the loss of rdtscp.

        The eviction channel's margin (hundreds of cycles) dwarfs the
        counting thread's few-cycle granularity.
        """
        machine = Machine(GOLD_6226, seed=88)
        machine.timer = CountingThreadTimer(
            machine.rngs.stream("counting"), ticks_per_cycle=0.4
        )
        channel = NonMtEvictionChannel(
            machine, ChannelConfig(disturb_rate=0.0), variant="stealthy"
        )
        result = channel.transmit(alternating_bits(32))
        assert result.error_rate < 0.10

    def test_fine_grained_channel_suffers_from_coarseness(self):
        """A very coarse counter erodes the small-margin channels."""
        from repro.channels.misalignment import NonMtMisalignmentChannel

        machine = Machine(GOLD_6226, seed=88)
        machine.timer = CountingThreadTimer(
            machine.rngs.stream("coarse"), ticks_per_cycle=0.01  # 100-cycle granule
        )
        channel = NonMtMisalignmentChannel(
            machine, ChannelConfig(d=5, M=8, disturb_rate=0.0), variant="stealthy"
        )
        result = channel.transmit(alternating_bits(48))
        # ~100x coarser than the margin: decoding degrades markedly.
        assert result.error_rate > 0.10
