"""Tests for ``repro.synth`` — genome, generator, oracle, search, CLI.

The synthesiser's contract is determinism end to end: a campaign is a
pure function of ``(SearchConfig, executor)`` where the executor choice
must not matter.  The tests here pin that claim (serial vs parallel vs
cached byte-identity), the genome's structural invariants (work-balanced
bit bodies), the oracle's classification against the defense layer, and
the export path that turns a finding into a registrable scenario.
"""

from __future__ import annotations

import json

import pytest

from repro.defense import (
    MitigationStack,
    UniformPathTiming,
    defended_machine,
    mitigation_from_dict,
)
from repro.defense.evaluation import evaluate_spectre_v2
from repro.errors import ConfigurationError, ReproError
from repro.exec import ParallelExecutor, ResultCache, SerialExecutor
from repro.isa.layout import BlockChainLayout
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, spec_by_name
from repro.obs import MetricsRegistry, use_registry
from repro.scenarios.spec import ScenarioSpec
from repro.synth import (
    CandidateProgram,
    GeneratorConfig,
    LeakageOracle,
    OracleConfig,
    ProgramGenerator,
    SearchConfig,
    Segment,
    SynthSearch,
    path_fingerprint,
    shrink,
)
from repro.cli import main

#: The genome the seed-7 campaign discovered and shrank (also registered
#: as the ``synth-dsb-contention`` builtin scenario): a 5-vs-4 block
#: DSB-set-28 contention sender.
WINNER = {
    "decoy_stride": 19,
    "encode": [
        {"count": 4, "dsb_set": 28, "kind": "std", "lcp_sets": 5,
         "misaligned": False}
    ],
    "iterations": 1,
    "probe": [
        {"count": 5, "dsb_set": 28, "kind": "std", "lcp_sets": 2,
         "misaligned": False}
    ],
}

#: A quick campaign used by every search test (~a dozen oracle runs).
SMOKE = dict(seed=7, budget=8, bits=24, max_findings=1, shrink_budget=16)


def _candidate() -> CandidateProgram:
    return CandidateProgram.from_dict(WINNER)


# ----------------------------------------------------------------------
# genome
# ----------------------------------------------------------------------
class TestSegment:
    def test_round_trip(self):
        segment = Segment(kind="lcp", dsb_set=17, count=3, misaligned=True,
                          lcp_sets=6)
        assert Segment.from_dict(segment.to_dict()) == segment

    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="unknown segment"):
            Segment.from_dict({"kind": "std", "ways": 8})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "avx"},
            {"dsb_set": 32},
            {"dsb_set": -1},
            {"count": 0},
            {"count": 13},
            {"lcp_sets": 0},
        ],
    )
    def test_rejects_out_of_grammar_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            Segment(**kwargs)


class TestCandidateProgram:
    def test_round_trip_and_canonical_key(self):
        candidate = _candidate()
        assert CandidateProgram.from_dict(candidate.to_dict()) == candidate
        assert CandidateProgram.from_json(candidate.to_json()) == candidate
        assert candidate.key() == candidate.to_json()
        assert json.loads(candidate.key()) == json.loads(
            json.dumps(WINNER, sort_keys=True)
        )

    def test_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ConfigurationError, match="unknown candidate"):
            CandidateProgram.from_dict({**WINNER, "extra": 1})
        with pytest.raises(ConfigurationError, match="missing required"):
            CandidateProgram.from_dict({"probe": WINNER["probe"]})

    def test_decoy_is_encode_remapped_by_stride(self):
        candidate = _candidate()
        for encode, decoy in zip(candidate.encode, candidate.decoy):
            assert decoy.dsb_set == (encode.dsb_set + 19) % 32
            assert decoy.count == encode.count
            assert decoy.kind == encode.kind

    def test_bit_bodies_are_work_balanced(self):
        """The stealthy property: both bodies carry identical work."""
        zero, one = _candidate().bodies(BlockChainLayout())
        assert len(zero) == len(one) == _candidate().total_blocks
        # Same instruction multiset — only addresses (DSB sets) differ.
        assert sorted(len(b.instructions) for b in zero) == sorted(
            len(b.instructions) for b in one
        )

    def test_cost_is_blocks_times_iterations(self):
        candidate = _candidate()
        assert candidate.total_blocks == 2 * 5 + 4
        assert candidate.cost == 14 * 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"decoy_stride": 0}, {"decoy_stride": 32}, {"iterations": 0},
         {"iterations": 201}],
    )
    def test_rejects_out_of_range_scalars(self, kwargs):
        payload = {**WINNER, **kwargs}
        with pytest.raises(ConfigurationError):
            CandidateProgram.from_dict(payload)


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
class TestProgramGenerator:
    def test_generate_is_a_pure_function_of_seed_and_index(self):
        a = ProgramGenerator(3)
        b = ProgramGenerator(3)
        assert [a.generate(i) for i in range(8)] == [
            b.generate(i) for i in range(8)
        ]
        # Out-of-order replay sees the same universe.
        assert b.generate(2) == a.generate(2)

    def test_distinct_indices_draw_distinct_candidates(self):
        generator = ProgramGenerator(3)
        keys = {generator.generate(i).key() for i in range(8)}
        assert len(keys) > 4

    def test_mutations_are_deterministic_and_valid(self):
        generator = ProgramGenerator(5)
        a, b = generator.generate(0), generator.generate(1)
        first = [generator.mutate(a, b, i) for i in range(12)]
        second = [ProgramGenerator(5).mutate(a, b, i) for i in range(12)]
        assert first == second  # construction already validates grammar
        assert any(m != a for m in first)

    def test_config_round_trip_rejects_unknown(self):
        config = GeneratorConfig(lcp_rate=0.5, iterations=(4,))
        assert GeneratorConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ConfigurationError, match="unknown generator"):
            GeneratorConfig.from_dict({"temperature": 1.0})


# ----------------------------------------------------------------------
# defense layer satellites: stacks and dict construction
# ----------------------------------------------------------------------
class TestMitigationFromDict:
    def test_none_and_empty_mean_undefended(self):
        assert mitigation_from_dict(None) is None
        assert mitigation_from_dict({"mitigations": []}) is None

    def test_single_name_yields_the_singleton(self):
        mitigation = mitigation_from_dict(
            {"mitigations": ["uniform-path-timing"]}
        )
        assert isinstance(mitigation, UniformPathTiming)

    def test_multiple_names_compose_a_stack(self):
        stack = mitigation_from_dict(
            {"mitigations": ["uniform-path-timing", "disable-lsd"]}
        )
        assert isinstance(stack, MitigationStack)
        assert stack.name == "uniform-path-timing+disable-lsd"

    def test_rejects_unknown_names_and_fields(self):
        with pytest.raises(ConfigurationError, match="unknown mitigation"):
            mitigation_from_dict({"mitigations": ["nope"]})
        with pytest.raises(ConfigurationError, match="unknown defense"):
            mitigation_from_dict({"mitigation": ["disable-lsd"]})
        with pytest.raises(ConfigurationError):
            mitigation_from_dict({"mitigations": "disable-lsd"})

    def test_defended_machine_accepts_dict_and_instance(self):
        spec = spec_by_name("Gold 6226")
        defended = defended_machine(
            spec, 0, {"mitigations": ["uniform-path-timing"]}
        )
        baseline = defended_machine(spec, 0, None)
        assert isinstance(defended, Machine)
        assert isinstance(baseline, Machine)

    def test_evaluate_spectre_v2_rejects_bare_string(self):
        with pytest.raises(ReproError, match="sequence"):
            evaluate_spectre_v2(GOLD_6226, defenses="retpoline")


# ----------------------------------------------------------------------
# oracle
# ----------------------------------------------------------------------
class TestLeakageOracle:
    def test_winner_is_intact_undefended(self):
        oracle = LeakageOracle(OracleConfig(bits=24))
        verdict = oracle.score(_candidate(), seed=7)
        assert verdict.status == "intact"
        assert verdict.leaks
        assert verdict.kbps > 100
        assert verdict.outcome is not None

    def test_uniform_path_timing_breaks_the_dsb_winner(self):
        oracle = LeakageOracle(OracleConfig(bits=24))
        verdict = oracle.score(
            _candidate(), seed=7,
            defense={"mitigations": ["uniform-path-timing"]},
        )
        assert verdict.status in ("broken", "degraded")
        assert not verdict.leaks

    def test_fingerprint_reflects_frontend_transitions(self):
        machine = Machine(GOLD_6226, seed=7)
        fingerprint = path_fingerprint(machine, _candidate())
        bit0, bit1 = fingerprint.split("|")
        assert bit1.endswith("ev+.fl0.cap0.lcp0")  # 1-bit evicts the set
        assert "ev0" in bit0  # 0-bit decoy does not

    def test_metrics_are_flat_and_json_safe(self):
        verdict = LeakageOracle(OracleConfig(bits=24)).score(
            _candidate(), seed=7
        )
        metrics = verdict.metrics()
        json.dumps(metrics)
        assert set(metrics) == {
            "status", "kbps", "error_rate", "accuracy", "cycles",
            "fingerprint",
        }

    def test_config_round_trip_and_validation(self):
        config = OracleConfig(machine="i7-8700", bits=16, training_bits=8)
        assert OracleConfig.from_json(config.to_json()) == config
        with pytest.raises(ConfigurationError):
            OracleConfig(bits=0)
        with pytest.raises(ConfigurationError):
            OracleConfig(training_bits=2)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
class TestShrink:
    def test_minimized_form_still_leaks_and_is_no_larger(self):
        oracle = LeakageOracle(OracleConfig(bits=24))
        fat = CandidateProgram.from_dict({**WINNER, "iterations": 6})
        minimized, steps = shrink(fat, oracle, 7, budget=32)
        assert minimized.cost <= fat.cost
        assert steps <= 32
        seed_name = f"synth/eval/{minimized.key()}"
        from repro.rng import derive_seed

        assert oracle.score(minimized, derive_seed(7, seed_name)).leaks

    def test_zero_budget_is_a_no_op(self):
        oracle = LeakageOracle(OracleConfig(bits=24))
        minimized, steps = shrink(_candidate(), oracle, 7, budget=0)
        assert minimized == _candidate()
        assert steps == 0


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------
class TestSynthSearch:
    def test_smoke_campaign_rediscovers_a_frontend_leak(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            report = SynthSearch(SearchConfig(**SMOKE)).run()
        assert report.findings, "smoke budget failed to find a leak"
        finding = report.findings[0]
        assert finding.undefended["status"] == "intact"
        # Every finding carries its verdict under the configured stack.
        assert "uniform-path-timing" in finding.defenses
        snapshot = {m["name"] for m in registry.snapshot()["metrics"]}
        assert {"synth.candidates", "synth.novel", "synth.finds",
                "synth.corpus"} <= snapshot

    def test_serial_and_parallel_reports_are_byte_identical(self):
        serial = SynthSearch(SearchConfig(**SMOKE)).run(
            executor=SerialExecutor()
        )
        parallel = SynthSearch(SearchConfig(**SMOKE)).run(
            executor=ParallelExecutor(jobs=2)
        )
        assert serial.to_json() == parallel.to_json()

    def test_cache_resume_replays_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = SynthSearch(SearchConfig(**SMOKE)).run(cache=cache)
        second = SynthSearch(SearchConfig(**SMOKE)).run(cache=cache)
        assert first.to_json() == second.to_json()
        assert second.stats is not None
        assert second.stats.cache_hits == second.stats.points

    def test_corpus_novelty_is_keyed_on_fingerprints(self):
        report = SynthSearch(SearchConfig(**SMOKE)).run()
        assert len(report.corpus) == len(report.fingerprints)
        machine = Machine(GOLD_6226, seed=7)
        recomputed = {
            path_fingerprint(machine, candidate)
            for candidate in report.corpus
        }
        assert recomputed == set(report.fingerprints)

    def test_config_round_trip_rejects_unknown(self):
        config = SearchConfig(**SMOKE)
        assert SearchConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ConfigurationError, match="unknown search"):
            SearchConfig.from_dict({"fuel": 10})

    def test_scenario_export_round_trips_and_passes(self):
        report = SynthSearch(SearchConfig(**SMOKE)).run()
        payload = report.scenario_payloads()[0]
        spec = ScenarioSpec.from_dict(payload)
        assert spec.kind == "synth"
        from repro.scenarios.runners import run_scenario

        result = run_scenario(spec, trials=1, registry=MetricsRegistry())
        assert result.passed, result.failures


# ----------------------------------------------------------------------
# the synth scenario kind
# ----------------------------------------------------------------------
class TestSynthScenarioKind:
    def _spec(self, **params) -> ScenarioSpec:
        from repro.analysis.outcome import SuccessCriteria

        return ScenarioSpec(
            name="t", kind="synth", title="t", machine="Gold 6226",
            criteria=SuccessCriteria(max_error_rate=0.2),
            base_seed=7,
            params={"candidate": WINNER, "bits": 24, **params},
        )

    def test_requires_a_candidate(self):
        from repro.scenarios.runners import run_trial

        spec = self._spec()
        object.__setattr__(spec, "params", {"bits": 24})
        with pytest.raises(ConfigurationError, match="candidate"):
            run_trial(spec, 0)

    def test_defended_replay_reports_the_broken_channel(self):
        from repro.scenarios.runners import run_trial

        outcome = run_trial(
            self._spec(defense={"mitigations": ["uniform-path-timing"]}), 7
        )
        assert outcome.error_rate > 0.2  # the stack breaks this genome

    def test_rejects_unknown_params(self):
        from repro.scenarios.runners import run_trial

        with pytest.raises(ConfigurationError, match="unknown synth"):
            run_trial(self._spec(volume=11), 0)


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
class TestCli:
    def test_synth_run_json_is_deterministic(self, capsys, tmp_path):
        argv = [
            "synth", "run", "--seed", "7", "--budget", "8", "--bits", "24",
            "--max-findings", "1", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["findings"]

    def test_synth_run_writes_report_and_scenarios(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        scenarios = tmp_path / "scenarios.json"
        assert main([
            "synth", "run", "--seed", "7", "--budget", "8", "--bits", "24",
            "--max-findings", "1", "--out", str(out),
            "--scenarios-out", str(scenarios),
        ]) == 0
        capsys.readouterr()
        payloads = json.loads(scenarios.read_text())
        assert payloads and payloads[0]["kind"] == "synth"
        ScenarioSpec.from_dict(payloads[0])  # registrable as-is
        assert json.loads(out.read_text())["evaluated"] == 8

    def test_synth_minimize_prints_canonical_genome(self, capsys, tmp_path):
        fat = tmp_path / "cand.json"
        fat.write_text(json.dumps({**WINNER, "iterations": 6}))
        assert main([
            "synth", "minimize", str(fat), "--seed", "7", "--bits", "24",
        ]) == 0
        out = capsys.readouterr().out.strip()
        minimized = CandidateProgram.from_json(out)
        assert minimized.cost <= 14 * 6

    def test_synth_report_summarises_a_saved_run(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main([
            "synth", "run", "--seed", "7", "--budget", "8", "--bits", "24",
            "--max-findings", "1", "--json", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["synth", "report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "finding 0" in text
        assert "undefended" in text

    def test_synth_run_rejects_unknown_mitigation(self, capsys):
        assert main([
            "synth", "run", "--budget", "4", "--defense", "nope",
        ]) == 1
        assert "unknown mitigation" in capsys.readouterr().err
