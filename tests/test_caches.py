"""Tests for the cache models and memory hierarchy."""

from __future__ import annotations

import pytest

from repro.caches.hierarchy import MemoryHierarchy
from repro.caches.presets import l1d_cache, l1i_cache
from repro.caches.sa_cache import SetAssociativeCache
from repro.errors import ConfigurationError


class TestSetAssociativeCache:
    def setup_method(self):
        self.cache = SetAssociativeCache(sets=4, ways=2, line_bytes=64)

    def test_miss_then_hit(self):
        assert not self.cache.access(0x1000)
        assert self.cache.access(0x1000)
        assert self.cache.access(0x1004)  # same line

    def test_set_mapping(self):
        assert self.cache.set_index(0x0) == 0
        assert self.cache.set_index(0x40) == 1
        assert self.cache.set_index(0x100) == 0  # wraps at 4 sets

    def test_lru_eviction(self):
        self.cache.access(0x000)  # set 0
        self.cache.access(0x100)  # set 0
        self.cache.access(0x000)  # refresh first
        self.cache.access(0x200)  # set 0: evicts 0x100 (LRU)
        assert self.cache.probe(0x000)
        assert not self.cache.probe(0x100)

    def test_flush_line(self):
        self.cache.access(0x1000)
        assert self.cache.flush_line(0x1000)
        assert not self.cache.probe(0x1000)
        assert not self.cache.flush_line(0x1000)

    def test_flush_all(self):
        self.cache.access(0x1000)
        self.cache.flush_all()
        assert self.cache.occupancy(self.cache.set_index(0x1000)) == 0

    def test_probe_no_side_effects(self):
        self.cache.access(0x000)
        self.cache.access(0x100)
        self.cache.probe(0x000)  # must not refresh LRU
        self.cache.access(0x200)
        assert not self.cache.probe(0x000)

    def test_lru_stack_order(self):
        self.cache.access(0x000)
        self.cache.access(0x100)
        assert self.cache.lru_stack(0) == [0x000, 0x100]
        self.cache.access(0x000)
        assert self.cache.lru_stack(0) == [0x100, 0x000]

    def test_stats(self):
        self.cache.access(0x0)
        self.cache.access(0x0)
        assert self.cache.stats.hits == 1
        assert self.cache.stats.misses == 1
        assert self.cache.stats.miss_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(sets=3, ways=2, line_bytes=64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(sets=4, ways=0, line_bytes=64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(sets=4, ways=2, line_bytes=60)


class TestPresets:
    def test_l1_geometry_matches_table1(self):
        """Table I: 32KB, 8-way, 64-byte lines, 64 sets."""
        for cache in (l1i_cache(), l1d_cache()):
            assert cache.sets == 64
            assert cache.ways == 8
            assert cache.line_bytes == 64
            assert cache.size_bytes == 32 * 1024


class TestMemoryHierarchy:
    def setup_method(self):
        self.mem = MemoryHierarchy()

    def test_first_access_dram(self):
        result = self.mem.load(0x1000)
        assert result.level == "DRAM"
        assert not result.l1_hit

    def test_second_access_l1(self):
        self.mem.load(0x1000)
        assert self.mem.load(0x1000).level == "L1"

    def test_latency_ordering(self):
        lat = self.mem.latencies
        assert lat.l1 < lat.l2 < lat.llc < lat.dram

    def test_l1_eviction_falls_to_l2(self):
        # Fill one L1 set (8 ways) plus one more line: same L1 set needs
        # a 4096-byte stride (64 sets x 64B).
        for way in range(9):
            self.mem.load(0x1000 + way * 4096)
        result = self.mem.load(0x1000)
        assert result.level == "L2"

    def test_flush_line_reaches_all_levels(self):
        self.mem.load(0x1000)
        self.mem.flush_line(0x1000)
        assert self.mem.load(0x1000).level == "DRAM"

    def test_probe_latency_matches_load_level(self):
        self.mem.load(0x1000)
        assert self.mem.probe_latency(0x1000) == self.mem.latencies.l1
        assert self.mem.probe_latency(0x9999000) == self.mem.latencies.dram

    def test_l1_miss_rate(self):
        self.mem.load(0x1000)
        self.mem.load(0x1000)
        assert self.mem.l1_miss_rate == pytest.approx(0.5)
