"""Tests for the path probes and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors
from repro.channels.probes import PathProbe, path_power_samples, path_timing_samples
from repro.errors import ChannelError
from repro.frontend.paths import DeliveryPath
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G


class TestPathProbe:
    def test_lsd_probe_fits_lsd(self):
        machine = Machine(GOLD_6226, seed=3)
        probe = PathProbe.lsd(machine)
        assert probe.program.uops_per_iteration <= 64

    def test_dsb_probe_exceeds_lsd_fits_dsb(self):
        machine = Machine(GOLD_6226, seed=3)
        probe = PathProbe.dsb(machine)
        assert probe.program.uops_per_iteration > 64
        report = machine.run_loop(probe.program.with_iterations(100))
        assert report.dominant_path() is DeliveryPath.DSB

    def test_mite_probe_thrashes(self):
        machine = Machine(GOLD_6226, seed=3)
        probe = PathProbe.mite(machine)
        report = machine.run_loop(probe.program.with_iterations(100))
        assert report.dominant_path() is DeliveryPath.MITE

    def test_all_probes_pin_their_paths(self):
        machine = Machine(GOLD_6226, seed=3)
        for path, probe in PathProbe.all_probes(machine, iterations=100).items():
            machine.reset()
            report = machine.run_loop(probe.program)
            assert report.dominant_path() is path, path

    def test_lsd_probe_falls_to_dsb_without_lsd(self):
        machine = Machine(XEON_E2174G, seed=3)
        probe = PathProbe.lsd(machine)
        report = machine.run_loop(probe.program.with_iterations(100))
        assert report.dominant_path() is DeliveryPath.DSB


class TestSampleHelpers:
    def test_timing_samples_shape(self):
        machine = Machine(GOLD_6226, seed=3)
        samples = path_timing_samples(machine, samples=10)
        assert set(samples) == set(DeliveryPath)
        assert all(len(obs) == 10 for obs in samples.values())

    def test_power_samples_positive(self):
        machine = Machine(GOLD_6226, seed=3)
        samples = path_power_samples(machine, samples=5, iterations=5000)
        assert all(value > 0 for obs in samples.values() for value in obs)

    def test_rejects_zero_samples(self):
        machine = Machine(GOLD_6226, seed=3)
        with pytest.raises(ChannelError):
            path_timing_samples(machine, samples=0)
        with pytest.raises(ChannelError):
            path_power_samples(machine, samples=0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.LayoutError,
            errors.ExecutionError,
            errors.MeasurementError,
            errors.ChannelError,
            errors.EnclaveError,
            errors.SpectreError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_distinct_branches(self):
        assert not issubclass(errors.ChannelError, errors.LayoutError)
        assert not issubclass(errors.EnclaveError, errors.ChannelError)
