"""Tests for the Decoded Stream Buffer model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.frontend.dsb import DecodedStreamBuffer
from repro.frontend.params import FrontendParams


@pytest.fixture
def dsb() -> DecodedStreamBuffer:
    return DecodedStreamBuffer(FrontendParams())


def window(dsb_set: int, slot: int = 0) -> int:
    """A window address mapping to the given DSB set."""
    return 0x400000 + slot * 1024 + dsb_set * 32


class TestIndexing:
    def test_single_thread_uses_addr_9_5(self, dsb):
        assert dsb.effective_index(window(0), smt_active=False) == 0
        assert dsb.effective_index(window(17), smt_active=False) == 17
        assert dsb.effective_index(window(31), smt_active=False) == 31

    def test_smt_folds_mod_16(self, dsb):
        """Figure 2: with two threads, sets 16 apart collide."""
        assert dsb.effective_index(window(1), smt_active=True) == 1
        assert dsb.effective_index(window(17), smt_active=True) == 1
        assert dsb.effective_index(window(17), smt_active=False) == 17

    def test_rejects_unaligned_address(self, dsb):
        with pytest.raises(ConfigurationError):
            dsb.effective_index(0x400010, smt_active=False)


class TestWaysForUops:
    def test_one_way_up_to_six(self, dsb):
        assert dsb.ways_for_uops(1) == 1
        assert dsb.ways_for_uops(6) == 1

    def test_two_and_three_ways(self, dsb):
        assert dsb.ways_for_uops(7) == 2
        assert dsb.ways_for_uops(12) == 2
        assert dsb.ways_for_uops(18) == 3

    def test_uncacheable_beyond_three_ways(self, dsb):
        assert dsb.ways_for_uops(19) == 0

    def test_rejects_nonpositive(self, dsb):
        with pytest.raises(ConfigurationError):
            dsb.ways_for_uops(0)


class TestCacheBehaviour:
    def test_miss_then_hit(self, dsb):
        assert not dsb.lookup(0, window(3), False)
        dsb.insert(0, window(3), 5, False)
        assert dsb.lookup(0, window(3), False)

    def test_thread_tagged_no_cross_thread_hits(self, dsb):
        dsb.insert(0, window(3), 5, False)
        assert not dsb.lookup(1, window(3), False)

    def test_lru_eviction_order(self, dsb):
        for slot in range(8):
            dsb.insert(0, window(3, slot), 5, False)
        dsb.lookup(0, window(3, 0), False)  # refresh slot 0 to MRU
        evicted = dsb.insert(0, window(3, 8), 5, False)
        assert evicted == [(0, window(3, 1))]  # slot 1 was LRU

    def test_nine_lines_evict_exactly_one(self, dsb):
        """The eviction channel's overflow-by-one (Section III-B)."""
        for slot in range(9):
            dsb.insert(0, window(3, slot), 5, False)
        assert dsb.occupancy() == 8

    def test_multi_way_window_eviction(self, dsb):
        for slot in range(8):
            dsb.insert(0, window(3, slot), 5, False)
        evicted = dsb.insert(0, window(3, 8), 12, False)  # needs 2 ways
        assert len(evicted) == 2

    def test_cross_thread_eviction_in_smt_mode(self, dsb):
        """Both threads' same-set lines compete when SMT-active."""
        for slot in range(8):
            dsb.insert(0, window(3, slot), 5, True)
        evicted = dsb.insert(1, window(3, 100), 5, True)
        assert evicted and evicted[0][0] == 0  # victim belongs to thread 0

    def test_eviction_listener(self, dsb):
        events = []
        dsb.add_eviction_listener(lambda t, w: events.append((t, w)))
        for slot in range(9):
            dsb.insert(0, window(3, slot), 5, False)
        assert events == [(0, window(3, 0))]

    def test_insert_existing_refreshes_without_eviction(self, dsb):
        dsb.insert(0, window(3), 5, False)
        assert dsb.insert(0, window(3), 5, False) == []
        assert dsb.occupancy() == 1

    def test_uncacheable_window_ignored(self, dsb):
        assert dsb.insert(0, window(3), 25, False) == []
        assert dsb.occupancy() == 0
        assert dsb.stats.uncacheable_lookups == 1


class TestMaintenance:
    def test_invalidate(self, dsb):
        dsb.insert(0, window(3), 5, False)
        assert dsb.invalidate(0, window(3))
        assert not dsb.resident(0, window(3), False)
        assert not dsb.invalidate(0, window(3))

    def test_flush_thread(self, dsb):
        dsb.insert(0, window(3), 5, False)
        dsb.insert(1, window(4), 5, False)
        assert dsb.flush_thread(0) == 1
        assert dsb.resident(1, window(4), False)

    def test_flush_all(self, dsb):
        dsb.insert(0, window(3), 5, False)
        dsb.flush()
        assert dsb.occupancy() == 0

    def test_resident_does_not_touch_lru(self, dsb):
        for slot in range(8):
            dsb.insert(0, window(3, slot), 5, False)
        dsb.resident(0, window(3, 0), False)  # must NOT refresh
        evicted = dsb.insert(0, window(3, 8), 5, False)
        assert evicted == [(0, window(3, 0))]

    def test_resident_windows(self, dsb):
        dsb.insert(0, window(3), 5, False)
        dsb.insert(0, window(4), 5, False)
        assert dsb.resident_windows(0) == {window(3), window(4)}

    def test_stats_delta(self, dsb):
        dsb.lookup(0, window(3), False)
        snap = dsb.stats.snapshot()
        dsb.insert(0, window(3), 5, False)
        dsb.lookup(0, window(3), False)
        delta = dsb.stats.delta(snap)
        assert delta.hits == 1
        assert delta.insertions == 1
        assert delta.misses == 0
