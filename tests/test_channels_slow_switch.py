"""Tests for the slow-switch (LCP) channel."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.slow_switch import SlowSwitchChannel
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2288G
from repro.measure.noise import QUIET_PROFILE


def quiet_machine(spec=GOLD_6226) -> Machine:
    return Machine(spec, seed=31, timing_noise=QUIET_PROFILE,
                   smt_timing_noise=QUIET_PROFILE)


def quiet_config(**kwargs) -> ChannelConfig:
    base = dict(disturb_rate=0.0)
    base.update(kwargs)
    return ChannelConfig(**base)


class TestSlowSwitchChannel:
    def test_identical_uop_counts(self):
        """Both encodings execute the same instructions (Section IV-E)."""
        channel = SlowSwitchChannel(quiet_machine(), quiet_config())
        assert channel._mixed.uop_count == channel._ordered.uop_count
        assert channel._mixed.lcp_count == channel._ordered.lcp_count

    def test_mixed_issue_slower(self):
        """m=1 (mixed) pays far more DSB<->MITE switches than m=0."""
        channel = SlowSwitchChannel(quiet_machine(), quiet_config())
        for _ in range(2):
            channel.send_bit(0)
            channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert one > zero * 1.2

    def test_perfect_noiseless_transmission(self):
        channel = SlowSwitchChannel(quiet_machine(), quiet_config())
        result = channel.transmit(alternating_bits(32))
        assert result.error_rate == 0.0

    def test_r_parameter_scales_signal(self):
        small = SlowSwitchChannel(quiet_machine(), quiet_config(r=4))
        large = SlowSwitchChannel(quiet_machine(), quiet_config(r=16))
        small.calibrate()
        large.calibrate()
        assert large.decoder.margin > small.decoder.margin * 2

    def test_runs_on_azure_machine(self):
        """Table IV evaluates slow-switch on G6226 and E-2288G."""
        channel = SlowSwitchChannel(quiet_machine(XEON_E2288G), quiet_config())
        result = channel.transmit(alternating_bits(16))
        assert result.error_rate == 0.0
        assert result.kbps > 0

    def test_noisy_error_rate_bounded(self):
        channel = SlowSwitchChannel(Machine(GOLD_6226, seed=8))
        result = channel.transmit(alternating_bits(64))
        assert result.error_rate < 0.10
