"""Tests for the channel-coding extension."""

from __future__ import annotations

import pytest

from repro.analysis.bits import random_bits
from repro.analysis.threshold import ThresholdDecoder
from repro.channels.base import ChannelConfig
from repro.channels.coding import (
    CodedChannel,
    DifferentialCode,
    ManchesterCode,
    RepetitionCode,
)
from repro.channels.eviction import MtEvictionChannel, NonMtEvictionChannel
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.measure.noise import NONMT_PROFILE


DECODER = ThresholdDecoder(
    threshold=100.0, one_is_high=True, mean_zero=50.0, mean_one=150.0
)


class TestRepetitionCode:
    def test_encode(self):
        assert RepetitionCode(3).encode([1, 0]) == [1, 1, 1, 0, 0, 0]

    def test_decode_majority(self):
        code = RepetitionCode(3)
        # 150,150,50 -> votes 1,1,0 -> 1;  50,150,50 -> 0.
        assert code.decode([150, 150, 50, 50, 150, 50], DECODER) == [1, 0]

    def test_rejects_even_factor(self):
        with pytest.raises(ChannelError):
            RepetitionCode(2)

    def test_rejects_partial_group(self):
        with pytest.raises(ChannelError):
            RepetitionCode(3).decode([150.0, 150.0], DECODER)

    def test_symbols_per_bit(self):
        assert RepetitionCode(5).symbols_per_bit() == 5.0


class TestManchesterCode:
    def test_encode(self):
        assert ManchesterCode().encode([1, 0]) == [1, 0, 0, 1]

    def test_decode_by_difference(self):
        code = ManchesterCode()
        # (150, 50): first > second -> 1;  (50, 150) -> 0.
        assert code.decode([150, 50, 50, 150], DECODER) == [1, 0]

    def test_drift_immunity(self):
        """A constant offset on both halves cannot flip a bit."""
        code = ManchesterCode()
        drifted = [150 + 500, 50 + 500, 50 + 500, 150 + 500]
        assert code.decode(drifted, DECODER) == [1, 0]

    def test_rejects_odd_count(self):
        with pytest.raises(ChannelError):
            ManchesterCode().decode([150.0], DECODER)

    def test_inverted_polarity(self):
        low_decoder = ThresholdDecoder(
            threshold=100.0, one_is_high=False, mean_zero=150.0, mean_one=50.0
        )
        # With one_is_low channels, a 1 pair measures (low, high).
        assert ManchesterCode().decode([50, 150], low_decoder) == [1]


class TestDifferentialCode:
    def test_encode_transitions(self):
        assert DifferentialCode().encode([1, 0, 1, 1]) == [1, 1, 0, 1]

    def test_roundtrip(self):
        code = DifferentialCode()
        bits = [1, 0, 0, 1, 1, 1, 0]
        symbols = code.encode(bits)
        measurements = [150.0 if s else 50.0 for s in symbols]
        assert code.decode(measurements, DECODER) == bits

    def test_single_symbol_error_corrupts_at_most_two_bits(self):
        code = DifferentialCode()
        bits = [0, 0, 0, 0, 0, 0]
        symbols = code.encode(bits)
        measurements = [150.0 if s else 50.0 for s in symbols]
        measurements[2] = 150.0  # one flipped symbol
        decoded = code.decode(measurements, DECODER)
        assert sum(a != b for a, b in zip(decoded, bits)) <= 2


class TestCodedChannel:
    def test_repetition_reduces_mt_errors(self):
        """The headline use: repetition coding cleans up a noisy MT
        channel at a proportional rate cost.  Evaluated on a heavily
        slipping configuration and aggregated over seeds so the
        comparison is statistical, not anecdotal."""
        noisy = ChannelConfig(p=1000, q=100, sync_fail_rate=0.7)

        def run(seed, code=None):
            machine = Machine(GOLD_6226, seed=seed)
            channel = MtEvictionChannel(machine, noisy)
            bits = random_bits(48, machine.rngs.stream("payload"))
            if code is None:
                result = channel.transmit(bits)
            else:
                result = CodedChannel(channel, code).transmit(bits)
            return result.error_rate, result.kbps

        raw = [run(seed) for seed in (11, 22, 33)]
        coded = [run(seed, RepetitionCode(5)) for seed in (11, 22, 33)]
        raw_err = sum(e for e, _ in raw) / len(raw)
        coded_err = sum(e for e, _ in coded) / len(coded)
        assert coded_err < raw_err
        assert coded[0][1] < raw[0][1]  # rate is the price

    def test_manchester_roundtrip_over_real_channel(self):
        machine = Machine(GOLD_6226, seed=321)
        channel = NonMtEvictionChannel(
            machine, ChannelConfig(disturb_rate=0.0), variant="fast"
        )
        bits = random_bits(24, machine.rngs.stream("payload"))
        result = CodedChannel(channel, ManchesterCode()).transmit(bits)
        assert result.decoded_bits == bits
        assert result.code_name == "manchester"

    def test_differential_over_real_channel(self):
        machine = Machine(GOLD_6226, seed=321)
        channel = NonMtEvictionChannel(
            machine, ChannelConfig(disturb_rate=0.0), variant="fast"
        )
        bits = [1, 1, 1, 1, 0, 0, 0, 1]
        result = CodedChannel(channel, DifferentialCode()).transmit(bits)
        assert result.decoded_bits == bits

    def test_payload_validation(self):
        machine = Machine(GOLD_6226, seed=321)
        channel = NonMtEvictionChannel(machine, variant="fast")
        coded = CodedChannel(channel, RepetitionCode(3))
        with pytest.raises(ChannelError):
            coded.transmit([])
        with pytest.raises(ChannelError):
            coded.transmit([0, 2])
