"""Property tests for ``point_key`` stability.

The on-disk :class:`~repro.exec.cache.ResultCache` and the sweep
service's cross-job dedup both treat :func:`repro.exec.canonical.point_key`
as the *identity* of a computation, so two invariances are load-bearing
(and are exactly what the ``det-*`` lint rules guard in the factories):

* **axis order** — a grid point is a mapping, so the key must not
  depend on dict insertion order;
* **hash seed** — the key must be byte-identical across interpreter
  runs with different ``PYTHONHASHSEED`` values, or a service restart
  would silently orphan every cache entry (sets and dicts iterate in
  hash order, which is exactly what the canonical encoding must erase).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.canonical import canonical_point_key, point_key

# Scalar values a grid axis can realistically carry, including the
# types that historically broke repr-based encodings (bool vs int,
# float formatting, mixed types on one axis).
_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.none(),
)

_values = st.one_of(
    _scalars,
    st.lists(_scalars, max_size=4),
    st.frozensets(st.integers(min_value=-50, max_value=50), max_size=4),
    st.dictionaries(st.text(max_size=6), _scalars, max_size=3),
)

_grids = st.dictionaries(
    st.text(min_size=1, max_size=10), _values, min_size=1, max_size=5
)


class TestAxisOrderInvariance:
    @given(values=_grids, trial=st.integers(0, 5), seed=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_key_invariant_under_axis_reordering(self, values, trial, seed):
        reordered = dict(reversed(list(values.items())))
        assert list(reordered) == list(reversed(list(values)))  # real reorder
        assert point_key(values, trial, seed, "f") == point_key(
            reordered, trial, seed, "f"
        )

    @given(values=_grids)
    @settings(max_examples=100, deadline=None)
    def test_canonical_key_is_json_and_order_free(self, values):
        doc = canonical_point_key(values)
        json.loads(doc)  # valid single-line JSON
        shuffled = dict(sorted(values.items(), key=lambda kv: repr(kv)))
        assert canonical_point_key(shuffled) == doc

    @given(values=_grids, trial=st.integers(0, 3), seed=st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_distinct_trials_and_seeds_get_distinct_keys(self, values, trial, seed):
        base = point_key(values, trial, seed, "f")
        assert base != point_key(values, trial + 1, seed, "f")
        assert base != point_key(values, trial, seed + 1, "f")
        assert base != point_key(values, trial, seed, "g")


# A grid deliberately heavy on hash-ordered containers and strings: if
# any part of the canonical encoding leaked iteration order, these are
# the values that would expose it.
_HASH_HOSTILE_GRID = """
import json
from repro.exec.canonical import point_key

values = {
    "message": "hello-world",
    "mask": frozenset(["a", "b", "c", "dd", "eee"]),
    "weights": {"w1": 0.25, "w2": 0.5, "w3": 1.0, "longer-key": -3.5},
    "flags": [True, False, None, "x"],
    "d": 6,
    "ratio": 0.1,
}
print(json.dumps([point_key(values, t, 42, "factory-fp") for t in range(3)]))
"""


class TestHashSeedInvariance:
    def test_point_key_identical_across_pythonhashseed(self):
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for hash_seed in ("0", "1", "4242", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = repo_src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            result = subprocess.run(
                [sys.executable, "-c", _HASH_HOSTILE_GRID],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(json.loads(result.stdout))
        assert all(out == outputs[0] for out in outputs[1:]), (
            "point_key drifted across PYTHONHASHSEED values: "
            f"{outputs}"
        )
        assert len(set(outputs[0])) == 3  # trials still distinct
