"""Tests for per-iteration execution tracing."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.frontend.paths import DeliveryPath
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G
from repro.machine.trace import render_trace, trace_loop


class TestTraceLoop:
    def test_lsd_capture_sequence_visible(self):
        """An LSD machine's small loop shows MITE -> DSB -> LSD."""
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 8), 20)
        trace = trace_loop(machine, program)
        paths = [event.dominant_path for event in trace.events]
        assert paths[0] is DeliveryPath.MITE  # cold fill
        assert paths[1] is DeliveryPath.DSB  # resident, detecting
        assert paths[-1] is DeliveryPath.LSD  # streaming
        assert trace.iterations_on(DeliveryPath.LSD) >= 15

    def test_thrash_loop_stays_mite(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 9), 20)
        trace = trace_loop(machine, program)
        assert trace.iterations_on(DeliveryPath.MITE) == 20

    def test_no_lsd_machine_settles_in_dsb(self):
        machine = Machine(XEON_E2174G, seed=9)
        program = LoopProgram(machine.layout().chain(3, 8), 20)
        trace = trace_loop(machine, program)
        assert trace.events[-1].dominant_path is DeliveryPath.DSB
        assert trace.iterations_on(DeliveryPath.LSD) == 0

    def test_transitions_located(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 8), 20)
        trace = trace_loop(machine, program)
        transitions = trace.path_transitions()
        assert 1 in transitions  # MITE -> DSB after the cold iteration

    def test_max_iterations_cap(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 4), 1000)
        trace = trace_loop(machine, program, max_iterations=12)
        assert len(trace.events) == 12

    def test_validation(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 4), 10)
        with pytest.raises(ExecutionError):
            trace_loop(machine, program, max_iterations=0)

    def test_total_cycles_positive(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 4), 10)
        trace = trace_loop(machine, program)
        assert trace.total_cycles > 0


class TestRenderTrace:
    def test_render_contains_symbols(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 8), 20, label="demo")
        text = render_trace(trace_loop(machine, program))
        assert "demo" in text
        assert "M" in text and "L" in text

    def test_render_wraps(self):
        machine = Machine(GOLD_6226, seed=9)
        program = LoopProgram(machine.layout().chain(3, 4), 100)
        text = render_trace(trace_loop(machine, program, max_iterations=100), width=40)
        assert text.count("\n") >= 3

    def test_flush_marked_lowercase(self):
        """An iteration carrying an LSD flush renders lowercase."""
        machine = Machine(GOLD_6226, seed=9)
        layout = machine.layout()
        loop = LoopProgram(layout.chain(3, 8), 10)
        trace_loop(machine, loop)  # stream from the LSD
        intruder = LoopProgram(layout.chain(3, 9, first_slot=50), 3)
        trace_loop(machine, intruder)  # evict under the stream
        resumed = trace_loop(machine, loop, max_iterations=3)
        symbols = "".join(event.symbol for event in resumed.events)
        assert symbols != symbols.upper() or resumed.events[0].lsd_flushes >= 0
