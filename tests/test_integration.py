"""Cross-module integration tests: full attack pipelines end to end."""

from __future__ import annotations

import pytest

from repro.analysis.bits import random_bits, string_to_bits
from repro.channels.base import ChannelConfig
from repro.channels.eviction import MtEvictionChannel, NonMtEvictionChannel
from repro.channels.misalignment import NonMtMisalignmentChannel
from repro.channels.probes import path_timing_samples, path_power_samples
from repro.channels.slow_switch import SlowSwitchChannel
from repro.frontend.paths import DeliveryPath
from repro.machine.machine import Machine
from repro.machine.specs import ALL_SPECS, GOLD_6226, XEON_E2174G
from repro.analysis.stats import separation, trimmed


class TestEndToEndTransmission:
    def test_ascii_message_roundtrip(self):
        """Send a real message over the fastest channel; decode it back."""
        machine = Machine(GOLD_6226, seed=2024)
        channel = NonMtMisalignmentChannel(
            machine, ChannelConfig(d=5, M=8, disturb_rate=0.0), variant="fast"
        )
        message = "".join(format(b, "08b") for b in b"hi!")
        result = channel.transmit(string_to_bits(message))
        received = bytes(
            int(result.received_string[i : i + 8], 2) for i in range(0, 24, 8)
        )
        assert received == b"hi!"

    def test_random_payload_all_machines(self):
        """Every Table I machine carries a random payload with low error."""
        for spec in ALL_SPECS:
            machine = Machine(spec, seed=2024)
            channel = NonMtEvictionChannel(machine, variant="fast")
            bits = random_bits(48, machine.rngs.stream("payload"))
            result = channel.transmit(bits)
            assert result.error_rate < 0.15, spec.name

    def test_channels_share_machine_state_safely(self):
        """Two channels on one machine keep working (state interleaving)."""
        machine = Machine(GOLD_6226, seed=2024)
        evict = NonMtEvictionChannel(
            machine, ChannelConfig(disturb_rate=0.0, target_set=3), variant="fast"
        )
        switch = SlowSwitchChannel(
            machine, ChannelConfig(disturb_rate=0.0, target_set=11)
        )
        evict.calibrate(8)
        switch.calibrate(8)
        assert evict.decoder.decide(evict.send_bit(1).measurement) == 1
        assert switch.decoder.decide(switch.send_bit(0).measurement) == 0
        assert evict.decoder.decide(evict.send_bit(0).measurement) == 0
        assert switch.decoder.decide(switch.send_bit(1).measurement) == 1

    def test_reproducibility_same_seed(self):
        def run(seed):
            machine = Machine(GOLD_6226, seed=seed)
            channel = NonMtEvictionChannel(machine, variant="stealthy")
            return channel.transmit([1, 0, 1, 1, 0, 0, 1, 0])

        a, b = run(5), run(5)
        assert a.received_bits == b.received_bits
        assert a.total_cycles == b.total_cycles
        assert [s.measurement for s in a.samples] == [s.measurement for s in b.samples]
        c = run(6)
        # A different seed draws different measurement noise.
        assert [s.measurement for s in c.samples] != [s.measurement for s in a.samples]


class TestPathProbeDistributions:
    def test_timing_histogram_modes_separate(self):
        """Figure 4: the three paths give separable timing distributions."""
        machine = Machine(GOLD_6226, seed=9)
        samples = path_timing_samples(machine, samples=120)
        lsd, dsb, mite = (
            trimmed(samples[DeliveryPath.LSD]),
            trimmed(samples[DeliveryPath.DSB]),
            trimmed(samples[DeliveryPath.MITE]),
        )
        assert separation(dsb, mite) > 3.0
        assert separation(lsd, dsb) > 1.0

    def test_power_histogram_modes_separate(self):
        """Figure 12: per-path power is separable through RAPL."""
        machine = Machine(GOLD_6226, seed=9)
        samples = path_power_samples(machine, samples=60, iterations=20_000)
        assert (
            separation(samples[DeliveryPath.DSB], samples[DeliveryPath.MITE]) > 1.5
        )

    def test_lsd_disabled_machine_merges_lsd_dsb_modes(self):
        """On E-2174G the 'LSD' probe actually runs from the DSB."""
        machine = Machine(XEON_E2174G, seed=9)
        samples = path_timing_samples(machine, samples=120)
        lsd_like = trimmed(samples[DeliveryPath.LSD])
        mite = trimmed(samples[DeliveryPath.MITE])
        assert separation(lsd_like, mite) > 3.0


class TestMtPipeline:
    def test_mt_channel_full_pipeline(self):
        machine = Machine(GOLD_6226, seed=13)
        channel = MtEvictionChannel(machine)
        bits = random_bits(24, machine.rngs.stream("mt-payload"))
        result = channel.transmit(bits)
        assert result.error_rate < 0.35
        assert 1.0 < result.kbps < 1000.0

    def test_perf_counters_accumulate_across_pipeline(self):
        machine = Machine(GOLD_6226, seed=13)
        channel = MtEvictionChannel(machine)
        channel.transmit([1, 0, 1, 0])
        assert machine.perf.read("uops_retired.any") > 0
        assert machine.perf.read("idq.mite_uops") > 0
