"""Shared fixtures: machines with and without noise, common layouts."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Property tests must be as reproducible as the simulator itself: fixed
# example generation, no deadline flakiness on slow CI machines.
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G, XEON_E2288G
from repro.measure.noise import QUIET_PROFILE


@pytest.fixture
def gold() -> Machine:
    """Gold 6226 (LSD enabled, SMT) with default noise."""
    return Machine(GOLD_6226, seed=1234)


@pytest.fixture
def gold_quiet() -> Machine:
    """Gold 6226 with all measurement noise disabled."""
    return Machine(
        GOLD_6226,
        seed=1234,
        timing_noise=QUIET_PROFILE,
        smt_timing_noise=QUIET_PROFILE,
    )


@pytest.fixture
def coffeelake() -> Machine:
    """Xeon E-2174G (LSD disabled, SMT, SGX)."""
    return Machine(XEON_E2174G, seed=1234)


@pytest.fixture
def azure() -> Machine:
    """Xeon E-2288G (LSD enabled, no SMT, SGX)."""
    return Machine(XEON_E2288G, seed=1234)
