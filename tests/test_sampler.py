"""Tests for windowed counter sampling."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.eviction import NonMtEvictionChannel
from repro.errors import MeasurementError
from repro.frontend.engine import LoopReport
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.measure.sampler import CounterSampler


def region(cycles: float, evictions: int = 0, flushes: int = 0) -> LoopReport:
    return LoopReport(cycles=cycles, dsb_evictions=evictions, lsd_flushes=flushes)


class TestCounterSampler:
    def test_windows_emitted_by_duration(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(250.0, evictions=10))
        assert len(sampler.samples) == 2  # two full windows, 50 pending

    def test_flush_emits_partial(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(250.0))
        sampler.flush()
        assert len(sampler.samples) == 3

    def test_rates_per_kcycle(self):
        sampler = CounterSampler(window_cycles=1000.0)
        sampler.record(region(1000.0, evictions=5, flushes=2))
        sample = sampler.samples[0]
        assert sample.evictions_per_kcycle == pytest.approx(5.0)
        assert sample.flushes_per_kcycle == pytest.approx(2.0)

    def test_burst_fraction(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(100.0, evictions=50))  # hot window
        sampler.record(region(100.0))  # quiet
        sampler.record(region(100.0))  # quiet
        assert sampler.burst_fraction(threshold=1.0) == pytest.approx(1 / 3)

    def test_peak(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(100.0, evictions=50))
        sampler.record(region(100.0, evictions=5))
        assert sampler.peak() == pytest.approx(500.0)

    def test_empty_raises(self):
        sampler = CounterSampler()
        with pytest.raises(MeasurementError):
            sampler.burst_fraction()
        with pytest.raises(MeasurementError):
            sampler.peak()

    def test_validation(self):
        with pytest.raises(MeasurementError):
            CounterSampler(window_cycles=0.0)

    def test_long_report_splits_events_proportionally(self):
        """A report spanning k windows spreads its events across all k,
        instead of attributing everything to the first window."""
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(400.0, evictions=40))
        rates = [s.evictions_per_kcycle for s in sampler.samples]
        assert len(rates) == 4
        # 10 evictions per 100-cycle window -> 100/kcycle in every window.
        assert rates == pytest.approx([100.0, 100.0, 100.0, 100.0])

    def test_split_respects_partial_overlap(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(50.0))  # advance mid-window, no events
        sampler.record(region(100.0, evictions=10))  # spans both windows
        sampler.flush()
        rates = [s.evictions_per_kcycle for s in sampler.samples]
        # Half the report (5 events) in each window.
        assert rates == pytest.approx([50.0, 50.0])

    def test_zero_cycle_report_lands_in_open_window(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(0.0, evictions=3))
        sampler.record(region(100.0, evictions=1))
        assert sampler.samples[0].evictions_per_kcycle == pytest.approx(40.0)

    def test_burst_fraction_not_skewed_by_long_reports(self):
        """The old first-window attribution turned one long uniform
        report into one inflated window + zeros (burst fraction 1/k);
        the proportional split reports the true sustained rate."""
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(500.0, evictions=50))  # uniform 1/cycle
        assert sampler.burst_fraction(threshold=50.0) == pytest.approx(1.0)
        # And peak reflects the sustained rate, not a 5x-inflated spike.
        assert sampler.peak() == pytest.approx(100.0)

    def test_attack_burstiness_vs_benign(self):
        """Time-series view: the eviction channel keeps the eviction
        rate bursty across windows; a benign hot loop stays at zero."""
        machine = Machine(GOLD_6226, seed=44)
        attack_sampler = CounterSampler(window_cycles=2000.0)
        channel = NonMtEvictionChannel(machine, variant="stealthy")
        channel.calibrate(8)
        for bit in alternating_bits(16):
            program = LoopProgram(channel.bit_body(bit), channel.config.p)
            attack_sampler.record(machine.run_loop(program))
        attack_sampler.flush()

        benign_machine = Machine(GOLD_6226, seed=45)
        benign_sampler = CounterSampler(window_cycles=2000.0)
        hot = LoopProgram(benign_machine.layout().chain(7, 8), 200)
        for _ in range(16):
            benign_sampler.record(benign_machine.run_loop(hot))
        benign_sampler.flush()

        assert attack_sampler.burst_fraction(threshold=1.0) > 0.3
        assert benign_sampler.burst_fraction(threshold=1.0) < 0.1
