"""Tests for windowed counter sampling."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.eviction import NonMtEvictionChannel
from repro.errors import MeasurementError
from repro.frontend.engine import LoopReport
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.measure.sampler import CounterSampler


def region(cycles: float, evictions: int = 0, flushes: int = 0) -> LoopReport:
    return LoopReport(cycles=cycles, dsb_evictions=evictions, lsd_flushes=flushes)


class TestCounterSampler:
    def test_windows_emitted_by_duration(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(250.0, evictions=10))
        assert len(sampler.samples) == 2  # two full windows, 50 pending

    def test_flush_emits_partial(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(250.0))
        sampler.flush()
        assert len(sampler.samples) == 3

    def test_rates_per_kcycle(self):
        sampler = CounterSampler(window_cycles=1000.0)
        sampler.record(region(1000.0, evictions=5, flushes=2))
        sample = sampler.samples[0]
        assert sample.evictions_per_kcycle == pytest.approx(5.0)
        assert sample.flushes_per_kcycle == pytest.approx(2.0)

    def test_burst_fraction(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(100.0, evictions=50))  # hot window
        sampler.record(region(100.0))  # quiet
        sampler.record(region(100.0))  # quiet
        assert sampler.burst_fraction(threshold=1.0) == pytest.approx(1 / 3)

    def test_peak(self):
        sampler = CounterSampler(window_cycles=100.0)
        sampler.record(region(100.0, evictions=50))
        sampler.record(region(100.0, evictions=5))
        assert sampler.peak() == pytest.approx(500.0)

    def test_empty_raises(self):
        sampler = CounterSampler()
        with pytest.raises(MeasurementError):
            sampler.burst_fraction()
        with pytest.raises(MeasurementError):
            sampler.peak()

    def test_validation(self):
        with pytest.raises(MeasurementError):
            CounterSampler(window_cycles=0.0)

    def test_attack_burstiness_vs_benign(self):
        """Time-series view: the eviction channel keeps the eviction
        rate bursty across windows; a benign hot loop stays at zero."""
        machine = Machine(GOLD_6226, seed=44)
        attack_sampler = CounterSampler(window_cycles=2000.0)
        channel = NonMtEvictionChannel(machine, variant="stealthy")
        channel.calibrate(8)
        for bit in alternating_bits(16):
            program = LoopProgram(channel.bit_body(bit), channel.config.p)
            attack_sampler.record(machine.run_loop(program))
        attack_sampler.flush()

        benign_machine = Machine(GOLD_6226, seed=45)
        benign_sampler = CounterSampler(window_cycles=2000.0)
        hot = LoopProgram(benign_machine.layout().chain(7, 8), 200)
        for _ in range(16):
            benign_sampler.record(benign_machine.run_loop(hot))
        benign_sampler.flush()

        assert attack_sampler.burst_fraction(threshold=1.0) > 0.3
        assert benign_sampler.burst_fraction(threshold=1.0) < 0.1
