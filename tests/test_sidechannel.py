"""Tests for the DSB-footprint side channel (key extraction)."""

from __future__ import annotations

import pytest

from repro.analysis.bits import random_bits
from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G
from repro.sidechannel import DsbFootprintAttack, SquareAndMultiplyVictim


def machine(seed: int = 7, spec=GOLD_6226) -> Machine:
    return Machine(spec, seed=seed)


class TestVictim:
    def test_processes_bits_in_order(self):
        m = machine()
        victim = SquareAndMultiplyVictim(m, [1, 0, 1])
        assert victim.bits_remaining == 3
        victim.process_next_bit()
        assert victim.bits_remaining == 2

    def test_one_bit_executes_multiply(self):
        m = machine()
        victim = SquareAndMultiplyVictim(m, [1])
        report = victim.process_next_bit()
        expected = (4 + 3) * 5 * victim.ROUTINE_ITERATIONS
        assert report.total_uops == expected

    def test_zero_bit_skips_multiply(self):
        m = machine()
        victim = SquareAndMultiplyVictim(m, [0])
        report = victim.process_next_bit()
        assert report.total_uops == 4 * 5 * victim.ROUTINE_ITERATIONS

    def test_exhaustion_raises(self):
        m = machine()
        victim = SquareAndMultiplyVictim(m, [0])
        victim.process_next_bit()
        with pytest.raises(ConfigurationError):
            victim.process_next_bit()

    def test_reset(self):
        m = machine()
        victim = SquareAndMultiplyVictim(m, [0, 1])
        victim.process_next_bit()
        victim.reset()
        assert victim.bits_remaining == 2

    def test_validation(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            SquareAndMultiplyVictim(m, [])
        with pytest.raises(ConfigurationError):
            SquareAndMultiplyVictim(m, [0, 2])
        with pytest.raises(ConfigurationError):
            SquareAndMultiplyVictim(m, [1], square_set=5, multiply_set=5)


class TestDsbFootprintAttack:
    def test_full_key_recovery(self):
        m = machine(seed=2024)
        key = random_bits(48, m.rngs.stream("key"))
        victim = SquareAndMultiplyVictim(m, key)
        recovery = DsbFootprintAttack(m, victim, attempts=5).run()
        assert recovery.accuracy == 1.0
        assert list(recovery.recovered_bits) == key

    def test_recovered_int(self):
        m = machine(seed=2024)
        victim = SquareAndMultiplyVictim(m, [1, 0, 1, 1])
        recovery = DsbFootprintAttack(m, victim, attempts=3).run()
        assert recovery.recovered_int == 0b1011

    def test_works_without_lsd(self):
        m = machine(seed=11, spec=XEON_E2174G)
        key = random_bits(32, m.rngs.stream("key"))
        victim = SquareAndMultiplyVictim(m, key)
        recovery = DsbFootprintAttack(m, victim, attempts=5).run()
        assert recovery.accuracy > 0.9

    def test_single_attempt_mostly_right(self):
        m = machine(seed=5)
        key = random_bits(32, m.rngs.stream("key"))
        victim = SquareAndMultiplyVictim(m, key)
        recovery = DsbFootprintAttack(m, victim, attempts=1).run()
        assert recovery.accuracy > 0.8

    def test_no_l1i_misses_beyond_warmup(self):
        """The side channel shares the frontend attacks' cache stealth."""
        m = machine(seed=2024)
        key = random_bits(16, m.rngs.stream("key"))
        victim = SquareAndMultiplyVictim(m, key)
        attack = DsbFootprintAttack(m, victim, attempts=1)
        attack.run()
        warm_misses = m.core.l1i.stats.misses
        victim.reset()
        attack.victim.reset()
        DsbFootprintAttack(m, victim, attempts=1).run()
        assert m.core.l1i.stats.misses == warm_misses  # steady state: none

    def test_validation(self):
        m = machine()
        victim = SquareAndMultiplyVictim(m, [1])
        with pytest.raises(ConfigurationError):
            DsbFootprintAttack(m, victim, attempts=0)
        with pytest.raises(ConfigurationError):
            DsbFootprintAttack(m, victim, prime_ways=9)
