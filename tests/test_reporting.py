"""Tests for the reproduction-report generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.reporting import REPORT_ORDER, collect_sections, write_report


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table1_specs.txt").write_text("Table I content\n")
    (directory / "fig04_timing_histogram.txt").write_text("Figure 4 content\n")
    (directory / "unknown_experiment.txt").write_text("ignored\n")
    return directory


class TestCollectSections:
    def test_collects_known_in_order(self, results_dir):
        sections = collect_sections(results_dir)
        assert [s.stem for s in sections] == ["table1_specs", "fig04_timing_histogram"]

    def test_ignores_unknown_files(self, results_dir):
        stems = {s.stem for s in collect_sections(results_dir)}
        assert "unknown_experiment" not in stems

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            collect_sections(tmp_path / "nope")


class TestWriteReport:
    def test_writes_markdown(self, results_dir, tmp_path):
        output = write_report(results_dir, tmp_path / "REPORT.md")
        text = output.read_text()
        assert text.startswith("# Leaky Frontends")
        assert "## Table I — machine specifications" in text
        assert "Table I content" in text
        assert "Sections present: 2/" in text

    def test_empty_results_rejected(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(ConfigurationError):
            write_report(empty, tmp_path / "REPORT.md")

    def test_order_table_consistent(self):
        stems = [stem for stem, _ in REPORT_ORDER]
        assert len(stems) == len(set(stems))
        assert "table7_spectre" in stems
        assert "defense_matrix" in stems

    def test_cli_report(self, results_dir, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "R.md"
        assert main(
            ["report", "--results", str(results_dir), "--output", str(output)]
        ) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out
