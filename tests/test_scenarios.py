"""Tests for the declarative scenario registry (``repro.scenarios``).

Four contracts from the scenario subsystem's design:

* **Specs are data** — JSON round trips are byte-identical, unknown
  fields and impossible thresholds are rejected at parse time;
* **The registry is the single name→spec source** — idempotent
  registration, helpful unknown-name errors;
* **Runs are deterministic** — each builtin scenario replays
  byte-identically against a committed fixture under *both* simulation
  backends (one fixture per scenario: the backends must agree on the
  bytes, not just each with itself);
* **The builtins meet their acceptance criteria** — a reduced-trial
  smoke run of each scenario passes in tier-1 time.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.outcome import ScenarioOutcome, SuccessCriteria, leak_kbps
from repro.errors import ConfigurationError
from repro.exec import SerialExecutor
from repro.frontend.backends import ENV_VAR, set_default_backend
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.obs import MetricsRegistry, use_registry
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    ScenarioSpec,
    ScenarioSweepSpec,
    all_specs,
    get,
    names,
    register,
    run_scenario,
    run_trial,
    unregister,
)
from repro.spectre import FrontendDsbChannel, SpectreV1Attack
from tests._replay import assert_replay

BACKENDS = ("reference", "vectorized")


@pytest.fixture(autouse=True)
def _pristine_backend_selection(monkeypatch):
    """No test leaks a backend default or env override to the next."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


def _spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="unit-test",
        kind="channel",
        title="unit test scenario",
        machine="Gold 6226",
        criteria=SuccessCriteria(max_error_rate=0.5),
        trials=1,
        base_seed=7,
        params={"channel": "eviction", "bits": 16},
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ----------------------------------------------------------------------
# outcome accounting (the shared AttackReport/TransmissionResult fix)
# ----------------------------------------------------------------------
class TestOutcome:
    def test_leak_kbps_units(self):
        # 1000 bits in 1e9 cycles at 1 GHz is one second: 1 Kbps.
        assert leak_kbps(1000, 1e9, 1e9) == pytest.approx(1.0)

    def test_from_counts_defaults_error_to_one_minus_accuracy(self):
        outcome = ScenarioOutcome.from_counts(
            label="x", machine="m", units_total=10, units_correct=9,
            bits=10, cycles=100.0, frequency_hz=1e9,
        )
        assert outcome.accuracy == pytest.approx(0.9)
        assert outcome.error_rate == pytest.approx(0.1)

    def test_aggregate_pools_counts_and_bits(self):
        parts = [
            ScenarioOutcome.from_counts(
                label="x", machine="m", units_total=10, units_correct=10,
                bits=10, cycles=100.0, frequency_hz=1e9,
            ),
            ScenarioOutcome.from_counts(
                label="x", machine="m", units_total=10, units_correct=8,
                bits=10, cycles=300.0, frequency_hz=1e9,
            ),
        ]
        pooled = ScenarioOutcome.aggregate(parts)
        assert pooled.units_total == 20
        assert pooled.accuracy == pytest.approx(0.9)
        assert pooled.cycles == pytest.approx(400.0)

    def test_criteria_require_at_least_one_threshold(self):
        with pytest.raises(ConfigurationError):
            SuccessCriteria()

    def test_criteria_reject_out_of_range_rates(self):
        with pytest.raises(ConfigurationError):
            SuccessCriteria(min_accuracy=1.5)

    def test_criteria_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="min_acuracy"):
            SuccessCriteria.from_dict({"min_acuracy": 0.9})

    def test_failures_name_each_unmet_threshold(self):
        outcome = ScenarioOutcome.from_counts(
            label="x", machine="m", units_total=10, units_correct=5,
            bits=10, cycles=1e9, frequency_hz=1e9,
        )
        criteria = SuccessCriteria(min_accuracy=0.9, min_kbps=1.0)
        failed = criteria.failures(outcome)
        assert len(failed) == 2
        assert not criteria.passed(outcome)

    def test_spectre_report_kbps_matches_outcome(self, gold):
        """AttackReport.leak_kbps flows through the shared helper."""
        report = SpectreV1Attack(
            gold, FrontendDsbChannel(gold), b"ab"
        ).run()
        outcome = report.to_outcome(gold.spec.name)
        assert report.leak_kbps == pytest.approx(outcome.kbps)
        assert outcome.bits == report.chunks_total * report.chunk_bits


# ----------------------------------------------------------------------
# specs and registry
# ----------------------------------------------------------------------
class TestSpec:
    def test_json_round_trip_is_byte_identical(self):
        for spec in BUILTIN_SCENARIOS:
            text = spec.to_json()
            again = ScenarioSpec.from_json(text)
            assert again == spec
            assert again.to_json() == text

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            _spec(kind="rowhammer")

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError, match="trials"):
            _spec(trials=0)

    def test_rejects_unknown_payload_fields(self):
        payload = _spec().to_dict()
        payload["colour"] = "red"
        with pytest.raises(ConfigurationError, match="colour"):
            ScenarioSpec.from_dict(payload)

    def test_rejects_missing_criteria(self):
        payload = _spec().to_dict()
        del payload["criteria"]
        with pytest.raises(ConfigurationError, match="criteria"):
            ScenarioSpec.from_dict(payload)

    def test_params_are_frozen_copies(self):
        params = {"channel": "eviction"}
        spec = _spec(params=params)
        params["channel"] = "misalignment"
        assert spec.params["channel"] == "eviction"

    def test_with_overrides_merges_params(self):
        spec = _spec().with_overrides(params={"bits": 32}, trials=5)
        assert spec.params["bits"] == 32
        assert spec.params["channel"] == "eviction"
        assert spec.trials == 5
        assert _spec().trials == 1  # original untouched


class TestRegistry:
    def test_builtins_are_registered(self):
        assert names() == (
            "frontal",
            "retirement-channel",
            "spectre-v2",
            "synth-dsb-contention",
        )
        assert tuple(spec.name for spec in all_specs()) == names()

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="retirement-channel"):
            get("nope")

    def test_register_is_idempotent_on_identical_specs(self):
        register(BUILTIN_SCENARIOS[0])  # same value: no error
        assert names().count("frontal") == 1

    def test_register_rejects_conflicting_redefinition(self):
        conflicting = BUILTIN_SCENARIOS[0].with_overrides(trials=99)
        with pytest.raises(ConfigurationError, match="already registered"):
            register(conflicting)

    def test_unregister_then_register(self):
        spec = _spec(name="ephemeral")
        register(spec)
        assert "ephemeral" in names()
        unregister("ephemeral")
        assert "ephemeral" not in names()


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
class TestRunners:
    def test_unknown_runner_params_are_rejected(self):
        spec = _spec(params={"channel": "eviction", "wombat": 3})
        with pytest.raises(ConfigurationError, match="wombat"):
            run_trial(spec, seed=1)

    def test_channel_scenario_needs_a_channel(self):
        spec = _spec(params={"bits": 16})
        with pytest.raises(ConfigurationError, match="channel"):
            run_trial(spec, seed=1)

    def test_spectre_v2_rejects_unknown_medium(self):
        spec = _spec(
            kind="spectre-v2",
            params={"secret": "ab", "channel": "telepathy"},
        )
        with pytest.raises(ConfigurationError, match="telepathy"):
            run_trial(spec, seed=1)

    def test_run_scenario_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError, match="trials"):
            run_scenario(get("retirement-channel"), trials=0)

    def test_run_scenario_records_metrics(self):
        registry = MetricsRegistry()
        spec = get("retirement-channel").with_overrides(params={"bits": 32})
        result = run_scenario(
            spec, trials=2, base_seed=5, registry=registry
        )
        assert len(result.per_trial) == 2
        snapshot = {
            (m["name"], m["tags"].get("scenario")): m["value"]
            for m in registry.snapshot()["metrics"]
        }
        assert snapshot[("scenario.runs", "retirement-channel")] == 1
        assert snapshot[("scenario.trials", "retirement-channel")] == 2
        assert snapshot[("scenario.accuracy", "retirement-channel")] == (
            pytest.approx(result.outcome.accuracy)
        )

    def test_trials_pool_into_the_outcome(self):
        spec = get("retirement-channel").with_overrides(params={"bits": 32})
        result = run_scenario(spec, trials=2, base_seed=5)
        assert result.outcome.bits == sum(o.bits for o in result.per_trial)
        assert result.outcome.units_total == sum(
            o.units_total for o in result.per_trial
        )


# ----------------------------------------------------------------------
# tier-1 smoke: every builtin meets its criteria at reduced trials
# ----------------------------------------------------------------------
class TestBuiltinSmoke:
    @pytest.mark.parametrize(
        "name", [spec.name for spec in BUILTIN_SCENARIOS]
    )
    def test_builtin_passes_criteria(self, name):
        result = run_scenario(get(name), trials=1, registry=MetricsRegistry())
        assert result.passed, result.failures


# ----------------------------------------------------------------------
# deterministic replay: one fixture per scenario, both backends
# ----------------------------------------------------------------------
#: Reduced grids so the replay sweeps stay tier-1 fast.
_REPLAY_GRIDS = {
    "frontal": {"steps_per_branch": [3]},
    "retirement-channel": {"bits": [64]},
    "spectre-v2": {"attempts_per_chunk": [1]},
    "synth-dsb-contention": {"bits": [16]},
}


class TestReplay:
    @pytest.mark.parametrize(
        "name", [spec.name for spec in BUILTIN_SCENARIOS]
    )
    def test_scenario_sweep_replays_on_both_backends(self, name, monkeypatch):
        """Same fixture bytes under every REPRO_SIM_BACKEND value.

        Pinning both backends against a *single* committed fixture
        asserts determinism and cross-backend equivalence in one shot.
        """
        sweep_spec = ScenarioSweepSpec(
            scenario=name, grid=_REPLAY_GRIDS[name], trials=1, base_seed=3
        )
        for backend in BACKENDS:
            monkeypatch.setenv(ENV_VAR, backend)
            # Rows only: the registry snapshot carries backend-tagged
            # sim.* instruments, which legitimately differ per backend.
            with use_registry(MetricsRegistry()):
                table = sweep_spec.build_sweep().run(executor=SerialExecutor())
            assert_replay(f"scenario_{name}", table)


# ----------------------------------------------------------------------
# scenario sweeps as service payloads
# ----------------------------------------------------------------------
class TestScenarioSweepSpec:
    def test_payload_round_trip(self):
        spec = ScenarioSweepSpec(
            scenario="spectre-v2",
            grid={"attempts_per_chunk": [1, 3]},
            trials=2,
            base_seed=9,
            label="grid",
        )
        assert ScenarioSweepSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="nope"):
            ScenarioSweepSpec(scenario="nope", grid={"bits": [1]})

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError, match="grid"):
            ScenarioSweepSpec(scenario="frontal", grid={})

    def test_rejects_unknown_payload_fields(self):
        with pytest.raises(ConfigurationError, match="bitz"):
            ScenarioSweepSpec.from_dict(
                {"scenario": "frontal", "grid": {"steps_per_branch": [3]},
                 "bitz": 4}
            )

    def test_sweep_rows_match_direct_trials(self):
        spec = ScenarioSweepSpec(
            scenario="retirement-channel",
            grid={"bits": [32, 64]},
            trials=1,
            base_seed=3,
        )
        table = spec.build_sweep().run(executor=SerialExecutor())
        rows = {row["bits"]: row for row in table.rows()}
        assert set(rows) == {32, 64}
        for bits, row in rows.items():
            assert row["bits_mean"] == pytest.approx(float(bits))


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for spec in BUILTIN_SCENARIOS:
            assert spec.name in out

    def test_describe_json_is_canonical(self, capsys):
        from repro.cli import main

        assert main(["scenario", "describe", "frontal", "--json"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == get("frontal").to_json()

    def test_run_json_and_metrics_out(self, capsys, tmp_path):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["scenario", "run", "retirement-channel", "--trials", "1",
             "--json", "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["trials"] == 1
        snapshot = json.loads(metrics_path.read_text())
        assert any(
            m["name"] == "scenario.runs" for m in snapshot["metrics"]
        )

    def test_run_unknown_name_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", "nope"]) == 1
        assert "registered scenarios" in capsys.readouterr().err

    def test_run_failing_criteria_exits_nonzero(self, capsys):
        from repro.cli import main

        impossible = _spec(
            name="impossible",
            criteria=SuccessCriteria(min_kbps=1e12),
            params={"channel": "eviction", "bits": 16},
        )
        register(impossible)
        try:
            assert main(["scenario", "run", "impossible"]) == 1
            out = capsys.readouterr().out
            assert "FAIL" in out
        finally:
            unregister("impossible")

    def test_bench_suite_scenarios_rejects_check(self, capsys):
        from repro.cli import main

        assert main(["bench", "--suite", "scenarios", "--check"]) == 1
        assert "frontend suite only" in capsys.readouterr().err
