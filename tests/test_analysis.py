"""Tests for analysis utilities: Wagner–Fischer, bits, thresholds, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bits import (
    MESSAGE_PATTERNS,
    alternating_bits,
    bits_to_string,
    constant_bits,
    pack_chunks,
    random_bits,
    string_to_bits,
    unpack_chunks,
)
from repro.analysis.stats import separation, summarize
from repro.analysis.threshold import calibrate_threshold
from repro.analysis.wagner_fischer import edit_distance, error_rate
from repro.errors import ChannelError, MeasurementError


class TestWagnerFischer:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("101", "101", 0),
            ("101", "100", 1),
            ("kitten", "sitting", 3),
            ("0101", "1010", 2),  # one deletion + one insertion
            ("111", "", 3),
            ("", "01", 2),
            ("10", "0110", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_works_on_lists(self):
        assert edit_distance([1, 0, 1], [1, 1, 1]) == 1

    def test_error_rate_normalised(self):
        assert error_rate([1, 0, 1, 0], [1, 0, 1, 1]) == pytest.approx(0.25)
        assert error_rate([], []) == 0.0
        assert error_rate([1], [1, 1, 1]) == 2.0  # can exceed 1

    def test_symmetry(self):
        assert edit_distance("abc", "yabd") == edit_distance("yabd", "abc")


class TestBits:
    def test_roundtrip_string(self):
        assert string_to_bits(bits_to_string([1, 0, 1])) == [1, 0, 1]

    def test_string_validation(self):
        with pytest.raises(ChannelError):
            string_to_bits("10x")

    def test_alternating(self):
        assert alternating_bits(5) == [0, 1, 0, 1, 0]
        assert alternating_bits(3, start=1) == [1, 0, 1]

    def test_constant(self):
        assert constant_bits(3, 1) == [1, 1, 1]
        with pytest.raises(ChannelError):
            constant_bits(3, 2)

    def test_random_deterministic(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        assert random_bits(32, rng1) == random_bits(32, rng2)

    def test_pack_unpack_roundtrip(self):
        data = b"Hello, frontend!"
        chunks = pack_chunks(data, 5)
        assert all(0 <= c < 32 for c in chunks)
        assert unpack_chunks(chunks, len(data), 5) == data

    def test_pack_byte_chunks(self):
        assert pack_chunks(b"\xab", 8) == [0xAB]

    def test_unpack_validates_range(self):
        with pytest.raises(ChannelError):
            unpack_chunks([32], 1, 5)

    def test_pack_validates_width(self):
        with pytest.raises(ChannelError):
            pack_chunks(b"x", 0)

    def test_message_patterns(self):
        patterns = MESSAGE_PATTERNS(8, np.random.default_rng(0))
        assert set(patterns) == {"all_zeros", "all_ones", "alternating", "random"}
        assert patterns["all_zeros"] == [0] * 8
        assert patterns["alternating"] == [0, 1, 0, 1, 0, 1, 0, 1]


class TestThreshold:
    def test_basic_calibration(self):
        decoder = calibrate_threshold([100.0, 110.0], [200.0, 210.0])
        assert decoder.one_is_high
        assert 110 < decoder.threshold < 200
        assert decoder.decide(150.0) == 0
        assert decoder.decide(205.0) == 1

    def test_inverted_polarity(self):
        decoder = calibrate_threshold([200.0], [100.0])
        assert not decoder.one_is_high
        assert decoder.decide(90.0) == 1
        assert decoder.decide(210.0) == 0

    def test_robust_to_outlier(self):
        """A single spike must not flip the polarity (median centres)."""
        zeros = [100.0] * 7 + [10_000.0]
        ones = [300.0] * 8
        decoder = calibrate_threshold(zeros, ones)
        assert decoder.one_is_high

    def test_mean_mode_not_robust(self):
        zeros = [100.0] * 7 + [10_000.0]
        ones = [300.0] * 8
        decoder = calibrate_threshold(zeros, ones, robust=False)
        assert not decoder.one_is_high  # documents the failure mode

    def test_decide_many(self):
        decoder = calibrate_threshold([0.0], [10.0])
        assert decoder.decide_many([1.0, 9.0]) == [0, 1]

    def test_margins(self):
        decoder = calibrate_threshold([100.0], [150.0])
        assert decoder.margin == pytest.approx(50.0)
        assert decoder.relative_margin == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ChannelError):
            calibrate_threshold([], [1.0])
        with pytest.raises(ChannelError):
            calibrate_threshold([1.0], [1.0])
        with pytest.raises(ChannelError):
            calibrate_threshold([1.0], [2.0], position=1.5)


class TestStats:
    def test_summary(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.median == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            summarize([])

    def test_separation(self):
        far = separation([0.0, 0.1], [10.0, 10.1])
        near = separation([0.0, 1.0], [0.5, 1.5])
        assert far > near

    def test_separation_noiseless(self):
        assert separation([1.0, 1.0], [2.0, 2.0]) == float("inf")
        assert separation([1.0], [1.0]) == 0.0
