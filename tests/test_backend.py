"""Tests for the backend port model and frontend-boundedness analysis."""

from __future__ import annotations

import pytest

from repro.backend.analysis import backend_bound_cycles, is_frontend_bound, iteration_uops
from repro.backend.ports import PortModel
from repro.isa.blocks import standard_mix_block
from repro.isa.instructions import load, store, mov_imm32, jmp_rel32
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram
from repro.isa.uops import Uop, UopKind


class TestPortModel:
    def test_empty(self):
        pressure = PortModel().pressure([])
        assert pressure.cycles == 0.0

    def test_single_alu_uop(self):
        pressure = PortModel().pressure([Uop(UopKind.ALU)])
        assert pressure.cycles == pytest.approx(0.25)  # 1 uop over 4 ports

    def test_branch_port_limit(self):
        # 4 branches over 2 ports (0, 6) => 2 cycles minimum.
        pressure = PortModel().pressure([Uop(UopKind.BRANCH)] * 4)
        assert pressure.cycles == pytest.approx(2.0)

    def test_store_data_single_port(self):
        pressure = PortModel().pressure([Uop(UopKind.STORE_DATA)] * 3)
        assert pressure.cycles == pytest.approx(3.0)

    def test_nops_free(self):
        pressure = PortModel().pressure([Uop(UopKind.NOP)] * 100)
        assert pressure.cycles == 0.0

    def test_mixed_subset_bound(self):
        # 2 branches (ports 0,6) + 6 ALU (ports 0,1,5,6): the union bound
        # (8 uops over 4 ports) dominates: 2 cycles.
        uops = [Uop(UopKind.BRANCH)] * 2 + [Uop(UopKind.ALU)] * 6
        assert PortModel().pressure(uops).cycles == pytest.approx(2.0)

    def test_load_preserved(self):
        pressure = PortModel().pressure([Uop(UopKind.LOAD)] * 4)
        assert pressure.cycles == pytest.approx(2.0)  # 2 load ports


class TestFrontendBoundedness:
    def test_standard_mix_block_is_frontend_bound(self):
        """Section III-A4: the 4-mov+1-jmp block avoids port contention."""
        program = LoopProgram(BlockChainLayout().chain(3, 8), 10)
        assert is_frontend_bound(program)

    def test_memory_heavy_loop_not_frontend_bound(self):
        from repro.isa.blocks import MixBlock

        block = MixBlock(0x400000, tuple([load(), store(), load(), jmp_rel32()]))
        assert not is_frontend_bound(LoopProgram([block], 10))

    def test_branch_heavy_loop_not_frontend_bound(self):
        from repro.isa.blocks import MixBlock

        # 4 jmps + 1 mov: branches saturate ports 0/6 over the retire cap.
        block = MixBlock(0x400000, tuple([jmp_rel32()] * 4 + [mov_imm32()]))
        assert not is_frontend_bound(LoopProgram([block], 10))

    def test_backend_bound_cycles_retire_cap(self):
        program = LoopProgram(BlockChainLayout().chain(3, 8), 10)
        # 40 uops / 4 per cycle = 10 cycles.
        assert backend_bound_cycles(program) == pytest.approx(10.0)

    def test_iteration_uops_flattening(self):
        program = LoopProgram(BlockChainLayout().chain(3, 2), 10)
        assert len(iteration_uops(program)) == 10
