"""Tests for the mitigation models and the defense evaluator."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.eviction import MtEvictionChannel, NonMtEvictionChannel
from repro.defense.evaluation import DefenseEvaluator
from repro.defense.mitigations import (
    ALL_MITIGATIONS,
    DisableLsd,
    DisableSmt,
    IsolateDsbPerThread,
    Mitigation,
    UniformPathTiming,
)
from repro.errors import ChannelError
from repro.frontend.params import FrontendParams
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.measure.noise import QUIET_PROFILE


def defended_machine(mitigation: Mitigation, seed: int = 500) -> Machine:
    spec = mitigation.apply_spec(GOLD_6226)
    params = mitigation.apply_params(FrontendParams())
    return Machine(spec, seed=seed, params=params,
                   timing_noise=QUIET_PROFILE, smt_timing_noise=QUIET_PROFILE)


class TestMitigationTransforms:
    def test_disable_smt(self):
        spec = DisableSmt().apply_spec(GOLD_6226)
        assert not spec.smt
        assert spec.threads == spec.cores

    def test_disable_lsd(self):
        spec = DisableLsd().apply_spec(GOLD_6226)
        assert not spec.lsd_enabled

    def test_isolate_dsb(self):
        params = IsolateDsbPerThread().apply_params(FrontendParams())
        assert params.smt_isolation

    def test_uniform_path_timing(self):
        params = UniformPathTiming().apply_params(FrontendParams())
        assert params.uniform_delivery
        assert params.dsb_to_mite_penalty == 0.0
        assert params.lcp_stall == 0.0

    def test_catalogue_names_unique(self):
        names = [m.name for m in ALL_MITIGATIONS]
        assert len(names) == len(set(names)) == 4


class TestMitigationEffects:
    def test_disable_smt_blocks_mt_channels(self):
        machine = defended_machine(DisableSmt())
        with pytest.raises(ChannelError):
            MtEvictionChannel(machine)

    def test_isolation_blocks_cross_thread_eviction(self):
        """With exclusive halves the sender cannot evict receiver lines."""
        from repro.isa.program import LoopProgram

        machine = defended_machine(IsolateDsbPerThread())
        layout = machine.layout()
        result = machine.run_smt(
            LoopProgram(layout.chain(3, 6), 1000),
            LoopProgram(layout.chain(3, 3, first_slot=6), 100),
        )
        # No cross-thread eviction-driven MITE traffic (beyond cold fill).
        assert result.primary.uops_mite <= 6 * 5 * 2

    def test_uniform_timing_equalises_paths(self):
        """DSB hits and MITE misses cost the same under the defense."""
        from repro.isa.program import LoopProgram

        machine = defended_machine(UniformPathTiming())
        layout = machine.layout()
        program = LoopProgram(layout.chain(3, 8), 200)
        warm = machine.run_loop(program)  # includes cold fill
        again = machine.run_loop(program)  # all hits, padded
        per_iter_warm = warm.cycles / warm.iterations
        per_iter_again = again.cycles / again.iterations
        assert per_iter_again == pytest.approx(per_iter_warm, rel=0.02)

    def test_uniform_timing_breaks_stealthy_eviction(self):
        """The path-timing signal disappears; only work-volume channels
        survive (documented residual)."""
        machine = defended_machine(UniformPathTiming())
        channel = NonMtEvictionChannel(
            machine,
            ChannelConfig(disturb_rate=0.0),
            variant="stealthy",
        )
        # Calibration either finds no signal at all or a margin too thin
        # to decode against even minimal noise.
        try:
            channel.calibrate(8)
        except ChannelError:
            return  # identical means: channel carries nothing
        assert channel.decoder.margin < 5.0


class TestDefenseEvaluator:
    @pytest.fixture(scope="class")
    def reports(self):
        evaluator = DefenseEvaluator(message_bits=16)
        return {r.mitigation_name: r for r in evaluator.evaluate_all(ALL_MITIGATIONS)}

    def test_baseline_all_intact(self, reports):
        baseline = reports["baseline"]
        assert all(o.status == "intact" for o in baseline.outcomes)
        assert baseline.set_leak_accuracy > 0.9

    def test_disable_smt_blocks_only_mt(self, reports):
        report = reports["disable-smt"]
        assert set(report.blocked_channels) == {"mt-eviction", "mt-misalignment"}
        assert "non-mt-eviction" in report.surviving_channels
        assert report.set_leak_accuracy == 0.0

    def test_isolation_kills_set_leak_not_activity(self, reports):
        report = reports["isolate-dsb"]
        # Set-selective side channel drops to chance (1/16)...
        assert report.set_leak_accuracy <= 2 / 16
        # ...but the cooperative activity channels survive.
        assert "mt-eviction" in report.surviving_channels

    def test_uniform_timing_costs_performance(self, reports):
        report = reports["uniform-path-timing"]
        assert report.benign_slowdown > 2.0
        assert report.set_leak_accuracy <= 2 / 16

    def test_disable_lsd_costs_energy_not_time(self, reports):
        report = reports["disable-lsd"]
        assert report.benign_energy_ratio > 1.1  # the LSD saves power
        assert report.benign_slowdown < 1.2
