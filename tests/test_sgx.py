"""Tests for the SGX enclave model and SGX attacks (Section VII)."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.errors import ChannelError, EnclaveError
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G, XEON_E2288G
from repro.measure.noise import QUIET_PROFILE
from repro.sgx.attacks import SgxMtAttack, SgxNonMtAttack
from repro.sgx.enclave import Enclave, EnclaveParams


def sgx_machine(spec=XEON_E2174G, seed=51) -> Machine:
    return Machine(spec, seed=seed, timing_noise=QUIET_PROFILE,
                   smt_timing_noise=QUIET_PROFILE)


class TestEnclaveModel:
    def test_rejects_non_sgx_machine(self):
        with pytest.raises(EnclaveError):
            Enclave(Machine(GOLD_6226))

    def test_lifecycle(self):
        enclave = Enclave(sgx_machine())
        assert not enclave.entered
        enclave.enter()
        assert enclave.entered
        enclave.exit()
        assert not enclave.entered
        assert enclave.transitions == 2

    def test_double_enter_rejected(self):
        enclave = Enclave(sgx_machine())
        enclave.enter()
        with pytest.raises(EnclaveError):
            enclave.enter()

    def test_exit_without_enter_rejected(self):
        with pytest.raises(EnclaveError):
            Enclave(sgx_machine()).exit()

    def test_run_requires_entry(self):
        machine = sgx_machine()
        enclave = Enclave(machine)
        program = LoopProgram(machine.layout().chain(3, 2), 5)
        with pytest.raises(EnclaveError):
            enclave.run(program)

    def test_slowdown_applied(self):
        machine = sgx_machine()
        program = LoopProgram(machine.layout().chain(3, 8), 100)
        plain = machine.run_loop(program)
        machine.reset()
        enclave = Enclave(machine, EnclaveParams(slowdown=4.0))
        enclave.enter()
        inside = enclave.run(program)
        assert inside.cycles == pytest.approx(plain.cycles * 4.0)

    def test_ecall_adds_transition_costs(self):
        machine = sgx_machine()
        params = EnclaveParams(eenter_cycles=7000, eexit_cycles=4000, slowdown=1.0)
        enclave = Enclave(machine, params)
        program = LoopProgram(machine.layout().chain(3, 8), 100)
        machine.reset()
        plain_cycles = Machine(XEON_E2174G, seed=51).run_loop(program).cycles
        report = enclave.ecall(program)
        assert report.cycles == pytest.approx(plain_cycles + 11_000)
        assert not enclave.entered  # exited even on success

    def test_enclave_shares_frontend_state(self):
        """The attack surface: enclave execution fills the same DSB."""
        machine = sgx_machine()
        enclave = Enclave(machine)
        program = LoopProgram(machine.layout().chain(3, 8), 50)
        enclave.ecall(program)
        # Running the same blocks outside now hits the DSB immediately.
        outside = machine.run_loop(program)
        assert outside.uops_mite == 0

    def test_param_validation(self):
        with pytest.raises(Exception):
            EnclaveParams(slowdown=0.5)
        with pytest.raises(Exception):
            EnclaveParams(eenter_cycles=-1)


class TestSgxNonMtAttack:
    def test_rejects_non_sgx_machine(self):
        with pytest.raises(EnclaveError):
            SgxNonMtAttack(Machine(GOLD_6226))

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(ChannelError):
            SgxNonMtAttack(sgx_machine(), mechanism="prefetch")

    @pytest.mark.parametrize("mechanism", ["eviction", "misalignment"])
    def test_transmission(self, mechanism):
        config_kwargs = dict(p=500, q=500, disturb_rate=0.0, sync_fail_rate=0.0)
        if mechanism == "misalignment":
            config_kwargs.update(d=5, M=8)
        attack = SgxNonMtAttack(
            sgx_machine(), mechanism=mechanism, variant="fast",
            config=ChannelConfig(**config_kwargs),
        )
        result = attack.transmit(alternating_bits(12), training_bits=6)
        assert result.error_rate == 0.0

    def test_rate_far_below_non_sgx(self):
        """Paper: SGX rates are ~1/25-1/30 of the non-SGX attacks."""
        from repro.channels.eviction import NonMtEvictionChannel

        machine = sgx_machine()
        plain = NonMtEvictionChannel(
            machine, ChannelConfig(disturb_rate=0.0), variant="stealthy"
        ).transmit(alternating_bits(8), training_bits=4)
        sgx = SgxNonMtAttack(
            sgx_machine(seed=52), mechanism="eviction", variant="stealthy"
        ).transmit(alternating_bits(8), training_bits=4)
        assert sgx.kbps < plain.kbps / 10

    def test_default_iterations(self):
        attack = SgxNonMtAttack(sgx_machine())
        assert attack.config.p == 1000  # paper: 1,000-5,000

    def test_works_on_azure_no_smt(self):
        attack = SgxNonMtAttack(sgx_machine(XEON_E2288G), variant="fast")
        result = attack.transmit(alternating_bits(6), training_bits=4)
        assert result.kbps > 0


class TestSgxMtAttack:
    def test_requires_smt(self):
        with pytest.raises(ChannelError):
            SgxMtAttack(sgx_machine(XEON_E2288G))

    def test_requires_sgx(self):
        with pytest.raises(EnclaveError):
            SgxMtAttack(Machine(GOLD_6226))

    @pytest.mark.parametrize("mechanism", ["eviction", "misalignment"])
    def test_transmission(self, mechanism):
        config_kwargs = dict(p=300, q=3000, disturb_rate=0.0, sync_fail_rate=0.0)
        if mechanism == "misalignment":
            config_kwargs.update(d=5, M=8)
        attack = SgxMtAttack(
            sgx_machine(), mechanism=mechanism,
            config=ChannelConfig(**config_kwargs),
        )
        result = attack.transmit(alternating_bits(10), training_bits=6)
        assert result.error_rate <= 0.1

    def test_default_iterations_follow_paper(self):
        attack = SgxMtAttack(sgx_machine())
        assert attack.config.p == 1000
        assert attack.config.q == 10_000
