"""Tests for the Loop Stream Detector, including the paper's
misalignment-collision combinations (Section III-C)."""

from __future__ import annotations

import pytest

from repro.frontend.lsd import LoopStreamDetector, LsdState, misalignment_collides
from repro.frontend.params import FrontendParams
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram


@pytest.fixture
def params() -> FrontendParams:
    return FrontendParams()


@pytest.fixture
def layout() -> BlockChainLayout:
    return BlockChainLayout()


def program(layout, aligned: int, misaligned: int, iterations: int = 10) -> LoopProgram:
    return LoopProgram(layout.mixed_chain(3, aligned, misaligned), iterations)


class TestStructuralQualification:
    def test_small_aligned_loop_qualifies(self, params, layout):
        lsd = LoopStreamDetector(params)
        assert lsd.structurally_qualifies(program(layout, 8, 0))

    def test_over_capacity_loop_rejected(self, params, layout):
        lsd = LoopStreamDetector(params)
        big = LoopProgram(layout.chain(3, 7) + layout.chain(5, 7, first_slot=10), 10)
        assert big.uops_per_iteration > params.lsd_capacity
        assert not lsd.structurally_qualifies(big)

    def test_disabled_lsd_rejects_everything(self, params, layout):
        lsd = LoopStreamDetector(params, enabled=False)
        assert not lsd.structurally_qualifies(program(layout, 4, 0))

    def test_lcp_loop_rejected(self, params):
        from repro.isa.blocks import lcp_block

        lsd = LoopStreamDetector(params)
        assert not lsd.structurally_qualifies(LoopProgram([lcp_block(0)], 10))


class TestMisalignmentRule:
    """Exact combinations from Section III-C."""

    @pytest.mark.parametrize(
        "aligned,misaligned",
        [(7, 1), (5, 2), (6, 2), (3, 3), (4, 3), (5, 3), (0, 4)],
    )
    def test_paper_collision_cases(self, params, layout, aligned, misaligned):
        assert misalignment_collides(program(layout, aligned, misaligned), params)

    @pytest.mark.parametrize(
        "aligned,misaligned",
        [(8, 0), (4, 0), (0, 3), (3, 2), (4, 2), (6, 1), (0, 1)],
    )
    def test_non_collision_cases(self, params, layout, aligned, misaligned):
        assert not misalignment_collides(program(layout, aligned, misaligned), params)

    def test_collision_blocks_qualification(self, params, layout):
        lsd = LoopStreamDetector(params)
        assert not lsd.structurally_qualifies(program(layout, 5, 3))


class TestStateMachine:
    def test_captures_after_detect_iterations(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 8, 0)
        assert not lsd.is_streaming(loop)
        lsd.observe_iteration(loop, all_from_dsb=True)
        assert not lsd.is_streaming(loop)  # one qualifying iteration
        lsd.observe_iteration(loop, all_from_dsb=True)
        assert lsd.is_streaming(loop)
        assert lsd.stats.captures == 1

    def test_mite_activity_resets_streak(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 8, 0)
        lsd.observe_iteration(loop, all_from_dsb=True)
        lsd.observe_iteration(loop, all_from_dsb=False)  # a window missed
        lsd.observe_iteration(loop, all_from_dsb=True)
        assert not lsd.is_streaming(loop)

    def test_different_loop_not_streaming(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop_a = program(layout, 8, 0)
        loop_b = LoopProgram(layout.chain(5, 8, first_slot=30), 10)
        for _ in range(3):
            lsd.observe_iteration(loop_a, all_from_dsb=True)
        assert lsd.is_streaming(loop_a)
        assert not lsd.is_streaming(loop_b)

    def test_eviction_of_loop_window_flushes(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 8, 0)
        for _ in range(3):
            lsd.observe_iteration(loop, all_from_dsb=True)
        assert lsd.on_dsb_eviction(loop.windows[0])
        assert lsd.state is LsdState.IDLE
        assert lsd.stats.flushes == 1

    def test_eviction_of_unrelated_window_ignored(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 8, 0)
        for _ in range(3):
            lsd.observe_iteration(loop, all_from_dsb=True)
        assert not lsd.on_dsb_eviction(0xDEAD000 // 32 * 32)
        assert lsd.is_streaming(loop)

    def test_misaligned_touch_same_folded_set_flushes(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 5, 0)  # blocks in set 3
        for _ in range(3):
            lsd.observe_iteration(loop, all_from_dsb=True)
        # A sibling thread touches a spanning window in folded set 3.
        touched = layout.block_address(3, 50)
        assert lsd.on_misaligned_set_touch(touched, 32, 16)

    def test_misaligned_touch_other_set_ignored(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 5, 0)  # set 3
        for _ in range(3):
            lsd.observe_iteration(loop, all_from_dsb=True)
        touched = layout.block_address(9, 50)
        assert not lsd.on_misaligned_set_touch(touched, 32, 16)
        assert lsd.is_streaming(loop)

    def test_flush_when_idle_is_noop(self, params):
        lsd = LoopStreamDetector(params)
        assert not lsd.flush()
        assert lsd.stats.flushes == 0

    def test_streamed_iteration_counter(self, params, layout):
        lsd = LoopStreamDetector(params)
        loop = program(layout, 8, 0)
        for _ in range(5):
            lsd.observe_iteration(loop, all_from_dsb=True)
        assert lsd.stats.streamed_iterations == 3  # after 2-iteration detect
