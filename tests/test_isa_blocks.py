"""Tests for instruction mix blocks (Section III-A4 constructions)."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError
from repro.isa.blocks import (
    DSB_LINE_UOPS,
    WINDOW_BYTES,
    MixBlock,
    filler_block,
    lcp_block,
    standard_mix_block,
)
from repro.isa.instructions import mov_imm32, jmp_rel32


class TestStandardMixBlock:
    """The canonical 4 mov + 1 jmp block the paper constructs."""

    def test_paper_dimensions(self):
        block = standard_mix_block(0x400000)
        assert block.size == 25  # 4 x 5B mov + 5B jmp
        assert block.uop_count == 5
        assert block.fits_one_dsb_line()

    def test_fits_window_and_line_limits(self):
        block = standard_mix_block(0)
        assert block.size <= WINDOW_BYTES
        assert block.uop_count <= DSB_LINE_UOPS

    def test_ends_with_jump(self):
        block = standard_mix_block(0)
        assert block.instructions[-1].is_branch

    def test_no_memory_instructions(self):
        """Section III-A4: avoid loads/stores to keep caches untouched."""
        block = standard_mix_block(0)
        assert not any(i.touches_memory for i in block.instructions)

    def test_aligned_block_single_window(self):
        block = standard_mix_block(0x400000)
        assert block.is_aligned
        assert block.windows == (0x400000,)
        assert not block.spans_windows

    def test_misaligned_block_spans_two_windows(self):
        block = standard_mix_block(0x400010)  # +16B offset
        assert not block.is_aligned
        assert block.windows == (0x400000, 0x400020)
        assert block.spans_windows


class TestMixBlockMechanics:
    def test_instruction_addresses_sequential(self):
        block = standard_mix_block(0x1000)
        addrs = [a for a, _ in block.instruction_addresses()]
        assert addrs == [0x1000, 0x1005, 0x100A, 0x100F, 0x1014]

    def test_relocated_preserves_body(self):
        block = standard_mix_block(0x1000, label="x")
        moved = block.relocated(0x2000)
        assert moved.base == 0x2000
        assert moved.instructions == block.instructions
        assert moved.label == "x"

    def test_end_address(self):
        block = standard_mix_block(0x1000)
        assert block.end == 0x1000 + 25

    def test_rejects_empty(self):
        with pytest.raises(LayoutError):
            MixBlock(base=0, instructions=())

    def test_rejects_negative_base(self):
        with pytest.raises(LayoutError):
            MixBlock(base=-1, instructions=(mov_imm32(),))


class TestLcpBlock:
    def test_mixed_alternates(self):
        block = lcp_block(0, lcp_sets=4, mixed=True)
        flags = [i.has_lcp for i in block.instructions[:-1]]
        assert flags == [False, True] * 4

    def test_ordered_groups(self):
        block = lcp_block(0, lcp_sets=4, mixed=False)
        flags = [i.has_lcp for i in block.instructions[:-1]]
        assert flags == [False] * 4 + [True] * 4

    def test_identical_uop_counts(self):
        """Figure 6: both encodings retire the same uops."""
        mixed = lcp_block(0, lcp_sets=16, mixed=True)
        ordered = lcp_block(0, lcp_sets=16, mixed=False)
        assert mixed.uop_count == ordered.uop_count
        assert mixed.lcp_count == ordered.lcp_count == 16

    def test_rejects_zero_sets(self):
        with pytest.raises(LayoutError):
            lcp_block(0, lcp_sets=0)


class TestFillerBlock:
    @pytest.mark.parametrize("uops", [1, 40, 400])
    def test_exact_uop_count(self, uops):
        assert filler_block(0, uops).uop_count == uops

    def test_ends_with_jump(self):
        assert filler_block(0, 10).instructions[-1].is_branch

    def test_rejects_zero(self):
        with pytest.raises(LayoutError):
            filler_block(0, 0)
