"""Tests for LoopReport arithmetic and the engine's stream interface."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.engine import FrontendEngine, LoopReport
from repro.frontend.paths import DeliveryPath
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram


def report(**kwargs) -> LoopReport:
    return LoopReport(**kwargs)


class TestLoopReportArithmetic:
    def test_merge_accumulates_every_field(self):
        a = report(cycles=10.0, uops_dsb=5, lcp_stalls=1, energy_nj=2.0)
        b = report(cycles=4.0, uops_dsb=3, lcp_stalls=2, energy_nj=1.0)
        a.merge(b)
        assert a.cycles == 14.0
        assert a.uops_dsb == 8
        assert a.lcp_stalls == 3
        assert a.energy_nj == 3.0

    def test_merge_returns_self(self):
        a = report()
        assert a.merge(report(cycles=1.0)) is a

    def test_scaled_floats_exact_ints_rounded(self):
        base = report(cycles=3.0, uops_dsb=3)
        scaled = base.scaled(2.5)
        assert scaled.cycles == 7.5
        assert scaled.uops_dsb == 8  # round(7.5)

    def test_scaled_zero(self):
        scaled = report(cycles=100.0, uops_mite=7).scaled(0)
        assert scaled.cycles == 0.0
        assert scaled.uops_mite == 0

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40)
    def test_total_uops(self, lsd, dsb, mite):
        r = report(uops_lsd=lsd, uops_dsb=dsb, uops_mite=mite)
        assert r.total_uops == lsd + dsb + mite

    def test_dominant_path(self):
        assert report(uops_lsd=10, uops_dsb=3).dominant_path() is DeliveryPath.LSD
        assert report(uops_mite=10, uops_dsb=3).dominant_path() is DeliveryPath.MITE

    def test_ipc_zero_cycles(self):
        assert report(uops_dsb=5).ipc == 0.0


class TestIterationStream:
    def test_stream_yields_per_iteration_reports(self):
        engine = FrontendEngine()
        layout = BlockChainLayout()
        program = LoopProgram(layout.chain(3, 4), 5)
        reports = list(engine.iteration_stream(program, thread=0, smt_active=False))
        assert len(reports) == 5
        assert all(r.iterations == 1 for r in reports)

    def test_stream_matches_exact_run(self):
        layout = BlockChainLayout()
        program = LoopProgram(layout.chain(3, 8), 20)
        streamed = FrontendEngine()
        total = LoopReport()
        for r in streamed.iteration_stream(program, thread=0, smt_active=False):
            total.merge(r)
        # run_loop adds the loop-exit mispredict the stream does not.
        exact_engine = FrontendEngine()
        exact = exact_engine.run_loop(program, exact=True)
        assert total.total_uops == exact.total_uops
        assert total.cycles == pytest.approx(
            exact.cycles - exact_engine.params.loop_exit_mispredict
        )

    def test_stream_mutates_shared_state(self):
        engine = FrontendEngine()
        layout = BlockChainLayout()
        program = LoopProgram(layout.chain(3, 4), 3)
        list(engine.iteration_stream(program, thread=0, smt_active=False))
        # Windows are now DSB-resident for the next consumer.
        follow_up = engine.run_iteration(program, thread=0)
        assert follow_up.uops_mite == 0
