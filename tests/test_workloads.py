"""Tests for the benign workload library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.workloads import WorkloadLibrary


@pytest.fixture
def library() -> WorkloadLibrary:
    return WorkloadLibrary(np.random.default_rng(7), iterations=2000)


class TestWorkloadLibrary:
    def test_all_workloads_distinct_names(self, library):
        specs = library.all_workloads()
        names = [spec.name for spec in specs]
        assert len(names) == len(set(names)) == 5

    def test_deterministic_given_stream(self):
        a = WorkloadLibrary(np.random.default_rng(7)).all_workloads()
        b = WorkloadLibrary(np.random.default_rng(7)).all_workloads()
        for spec_a, spec_b in zip(a, b):
            assert [blk.base for blk in spec_a.program.body] == [
                blk.base for blk in spec_b.program.body
            ]

    def test_hot_kernel_fits_lsd(self, library):
        spec = library.hot_kernel()
        assert spec.program.uops_per_iteration <= 64

    def test_branchy_exceeds_lsd(self, library):
        spec = library.branchy()
        assert spec.program.uops_per_iteration > 64

    def test_lcp_media_contains_prefixes(self, library):
        spec = library.lcp_media()
        assert spec.program.lcp_instructions_per_iteration > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadLibrary(np.random.default_rng(0), iterations=0)
        with pytest.raises(ConfigurationError):
            WorkloadLibrary(np.random.default_rng(0)).interpreter(handlers=0)

    def test_all_run_on_a_machine(self, library):
        machine = Machine(GOLD_6226, seed=7)
        for spec in library.all_workloads():
            report = machine.run_loop(spec.program)
            assert report.total_uops == (
                spec.program.uops_per_iteration * spec.program.iterations
            )

    def test_workload_character(self, library):
        """The library spans the benign frontend-behaviour space."""
        machine = Machine(GOLD_6226, seed=7)
        reports = {
            spec.name: machine.run_loop(spec.program)
            for spec in library.all_workloads()
        }
        # hot kernel: LSD-dominated, no evictions.
        hot = reports["hot_kernel"]
        assert hot.uops_lsd > 0.9 * hot.total_uops
        assert hot.dsb_evictions == 0
        # interpreter: modest natural eviction/switch activity.
        interp = reports["interpreter"]
        assert interp.uops_mite > 0
        # lcp_media: stalls present but bounded.
        media = reports["lcp_media"]
        assert media.lcp_stalls > 0
