"""Tests for channel-capacity estimation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.capacity import (
    ChannelCapacity,
    binary_entropy,
    bsc_capacity,
    information_rate,
)
from repro.errors import ChannelError


class TestBinaryEntropy:
    def test_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_known_value(self):
        assert binary_entropy(0.11) == pytest.approx(0.4999, abs=1e-3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ChannelError):
            binary_entropy(1.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_symmetry(self, p):
        assert binary_entropy(p) == pytest.approx(binary_entropy(1.0 - p), abs=1e-12)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded(self, p):
        assert 0.0 <= binary_entropy(p) <= 1.0


class TestBscCapacity:
    def test_perfect_channel(self):
        assert bsc_capacity(0.0) == 1.0

    def test_useless_channel(self):
        assert bsc_capacity(0.5) == pytest.approx(0.0)

    def test_inverted_channel_symmetric(self):
        assert bsc_capacity(0.9) == pytest.approx(bsc_capacity(0.1))

    @given(st.floats(min_value=0.0, max_value=0.5))
    def test_monotone_decreasing_to_half(self, p):
        assert bsc_capacity(p) >= bsc_capacity(min(p + 0.05, 0.5)) - 1e-12


class TestInformationRate:
    def test_perfect(self):
        assert information_rate(100.0, 0.0) == 100.0

    def test_noisy(self):
        # 11% crossover halves the information content.
        assert information_rate(100.0, 0.11) == pytest.approx(50.0, abs=0.1)

    def test_error_above_half_clamped(self):
        assert information_rate(100.0, 0.9) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_negative_rate(self):
        with pytest.raises(ChannelError):
            information_rate(-1.0, 0.1)


class TestChannelCapacity:
    def test_from_result(self):
        from repro.analysis.bits import alternating_bits
        from repro.channels.eviction import NonMtEvictionChannel
        from repro.machine.machine import Machine
        from repro.machine.specs import GOLD_6226

        machine = Machine(GOLD_6226, seed=55)
        channel = NonMtEvictionChannel(machine, variant="fast")
        result = channel.transmit(alternating_bits(32))
        capacity = ChannelCapacity.from_result(result)
        assert capacity.raw_kbps == result.kbps
        assert 0.0 <= capacity.capacity_per_use <= 1.0
        assert capacity.information_kbps <= capacity.raw_kbps
