"""Tests for loop programs."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram


@pytest.fixture
def layout() -> BlockChainLayout:
    return BlockChainLayout()


class TestLoopProgram:
    def test_uops_per_iteration(self, layout):
        program = LoopProgram(layout.chain(3, 8), 100)
        assert program.uops_per_iteration == 40
        assert program.total_uops == 4000

    def test_windows_deduplicated(self, layout):
        blocks = layout.chain(3, 4)
        program = LoopProgram(blocks + blocks, 1)  # body repeats blocks
        assert len(program.windows) == 4

    def test_window_events_count_misaligned_twice(self, layout):
        aligned = LoopProgram(layout.chain(3, 4), 1)
        misaligned = LoopProgram(layout.chain(3, 4, misaligned=True), 1)
        assert aligned.window_events_per_iteration == 4
        assert misaligned.window_events_per_iteration == 8

    def test_misaligned_block_counts(self, layout):
        program = LoopProgram(layout.mixed_chain(3, 5, 3), 1)
        assert program.aligned_blocks == 5
        assert program.misaligned_blocks == 3

    def test_with_iterations(self, layout):
        program = LoopProgram(layout.chain(3, 2), 10, label="x")
        longer = program.with_iterations(500)
        assert longer.iterations == 500
        assert longer.body == program.body
        assert longer.label == "x"

    def test_concat(self, layout):
        a = LoopProgram(layout.chain(3, 2), 10)
        b = LoopProgram(layout.chain(5, 3, first_slot=10), 10)
        merged = a.concat(b, label="merged")
        assert len(merged.body) == 5
        assert merged.label == "merged"

    def test_concat_rejects_mismatched_iterations(self, layout):
        a = LoopProgram(layout.chain(3, 2), 10)
        b = LoopProgram(layout.chain(5, 2), 20)
        with pytest.raises(LayoutError):
            a.concat(b)

    def test_rejects_empty_body(self):
        with pytest.raises(LayoutError):
            LoopProgram([], 10)

    def test_rejects_zero_iterations(self, layout):
        with pytest.raises(LayoutError):
            LoopProgram(layout.chain(3, 1), 0)

    def test_lcp_count(self, layout):
        from repro.isa.blocks import lcp_block

        program = LoopProgram([lcp_block(0, lcp_sets=16)], 1)
        assert program.lcp_instructions_per_iteration == 16

    def test_body_immutable_tuple(self, layout):
        program = LoopProgram(layout.chain(3, 2), 1)
        assert isinstance(program.body, tuple)
