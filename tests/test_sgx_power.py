"""Tests for the privileged-OS power attack on SGX (Section VII-3)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.bits import alternating_bits
from repro.errors import ChannelError, EnclaveError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G
from repro.sgx.power_attack import SgxPowerAttack


def rapl_locked_machine(seed: int = 99) -> Machine:
    """An SGX machine whose *user-level* RAPL access is disabled."""
    spec = dataclasses.replace(XEON_E2174G, rapl=False, name="E-2174G (RAPL locked)")
    return Machine(spec, seed=seed)


class TestSgxPowerAttack:
    def test_requires_sgx(self):
        with pytest.raises(EnclaveError):
            SgxPowerAttack(Machine(GOLD_6226, seed=1))

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(ChannelError):
            SgxPowerAttack(Machine(XEON_E2174G, seed=1), mechanism="dsb-lru")

    def test_works_despite_user_rapl_lockdown(self):
        """The headline property: disabling user RAPL does not stop a
        malicious OS from power-profiling the enclave."""
        machine = rapl_locked_machine()
        # User-level RAPL is indeed locked...
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            machine.rapl.measure_region(1.0, 1.0)
        # ...but the privileged attack transmits anyway.
        attack = SgxPowerAttack(machine, mechanism="eviction")
        result = attack.transmit(alternating_bits(12), training_bits=6)
        assert result.error_rate < 0.30
        assert result.kbps > 0

    @pytest.mark.parametrize("mechanism", ["eviction", "misalignment"])
    def test_both_mechanisms_transmit(self, mechanism):
        machine = Machine(XEON_E2174G, seed=99)
        attack = SgxPowerAttack(machine, mechanism=mechanism)
        result = attack.transmit(alternating_bits(10), training_bits=6)
        assert result.error_rate < 0.35

    def test_rate_is_rapl_limited(self):
        """Sub-Kbps, like the non-SGX power channels, further slowed by
        the enclave factor."""
        machine = Machine(XEON_E2174G, seed=99)
        attack = SgxPowerAttack(machine, mechanism="eviction")
        result = attack.transmit(alternating_bits(10), training_bits=6)
        assert result.kbps < 1.0

    def test_default_iterations(self):
        machine = Machine(XEON_E2174G, seed=99)
        attack = SgxPowerAttack(machine)
        assert attack.config.p == 240_000
