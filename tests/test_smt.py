"""Tests for SMT execution: the DSB partitioning experiment (Figure 2)
and cross-thread interference mechanics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.isa.program import LoopProgram
from repro.machine.core import Core
from repro.machine.machine import Machine
from repro.machine.smt import SmtExecutor
from repro.machine.specs import GOLD_6226, XEON_E2288G


def swept_mite_uops(machine: Machine, swept_set: int, iterations: int = 2000) -> int:
    """Run the Figure 2 workload: thread 1 fixed at set 1, thread 0 swept."""
    machine.reset()
    layout = machine.layout()
    fixed = LoopProgram(layout.chain(1, 8), iterations)
    swept = LoopProgram(layout.chain(swept_set, 8, first_slot=100), iterations)
    result = machine.run_smt(swept, fixed)
    return result.primary.uops_mite


class TestFigure2Partitioning:
    """With two threads the DSB is set-partitioned: a thread's addresses
    whose addr[9:5] differ by 16 collide with each other — and with the
    sibling's same-folded-set lines."""

    def test_conflicting_sets_show_mite_traffic(self):
        machine = Machine(GOLD_6226, seed=2)
        # Sweeping set 1 and 17 collides with the fixed thread's set 1.
        assert swept_mite_uops(machine, 1) > 10_000
        assert swept_mite_uops(machine, 17) > 10_000

    def test_non_conflicting_sets_quiet(self):
        machine = Machine(GOLD_6226, seed=2)
        assert swept_mite_uops(machine, 5) < 1_000
        assert swept_mite_uops(machine, 21) < 1_000

    def test_single_thread_no_mod16_conflicts(self):
        """Figure 2b: alone, a thread gets all 32 sets."""
        machine = Machine(GOLD_6226, seed=2)
        layout = machine.layout()
        # 8 blocks in set 1 plus 8 blocks in set 17, one thread.
        blocks = layout.chain(1, 8) + layout.chain(17, 8, first_slot=100)
        report = machine.run_loop(LoopProgram(blocks, 2000))
        # Only the cold fill goes through MITE (the fill-streak throttle
        # spreads a 16-window cold fill over two iterations); there is no
        # steady-state conflict traffic.
        assert report.uops_mite <= 2 * 16 * 5
        assert report.uops_dsb > 0.95 * report.total_uops


class TestSmtExecutor:
    def test_rejects_single_thread_machine(self):
        with pytest.raises(ConfigurationError):
            SmtExecutor(Core(XEON_E2288G))

    def test_reports_cover_both_threads(self):
        machine = Machine(GOLD_6226, seed=2)
        layout = machine.layout()
        primary = LoopProgram(layout.chain(3, 4), 100)
        secondary = LoopProgram(layout.chain(9, 4, first_slot=50), 10)
        result = machine.run_smt(primary, secondary)
        assert result.primary.total_uops == 100 * 20
        assert result.secondary.total_uops == 10 * 20
        assert result.total_cycles >= max(result.primary.cycles, result.secondary.cycles)

    def test_exact_and_extrapolated_agree(self):
        machine_a = Machine(GOLD_6226, seed=2)
        machine_b = Machine(GOLD_6226, seed=2)
        layout = machine_a.layout()

        def programs(machine):
            lay = machine.layout()
            return (
                LoopProgram(lay.chain(3, 6), 1000),
                LoopProgram(lay.chain(3, 3, first_slot=6), 100),
            )

        exact = machine_a.run_smt(*programs(machine_a), exact=True)
        fast = machine_b.run_smt(*programs(machine_b))
        assert fast.primary.cycles == pytest.approx(exact.primary.cycles, rel=0.02)
        assert fast.primary.uops_mite == pytest.approx(exact.primary.uops_mite, rel=0.05)

    def test_smt_slows_down_receiver(self):
        """Concurrent sibling activity inflates frontend delivery cost."""
        machine = Machine(GOLD_6226, seed=2)
        layout = machine.layout()
        solo_prog = LoopProgram(layout.chain(3, 6), 1000)
        solo = machine.run_loop(solo_prog)
        machine.reset()
        shared = machine.run_smt(
            LoopProgram(layout.chain(3, 6), 1000),
            LoopProgram(layout.chain(3, 3, first_slot=6), 100),
        )
        assert shared.primary.cycles > solo.cycles * 1.2

    def test_same_set_sender_evicts_receiver(self):
        """The MT eviction channel's mechanism (Section IV-A).

        Every sender encode burst evicts the receiver's same-set lines,
        forcing MITE redelivery and an LSD flush; the receiver re-captures
        between bursts, so the signature is periodic MITE traffic plus a
        flush per burst rather than continuous thrash.
        """
        machine = Machine(GOLD_6226, seed=2)
        layout = machine.layout()
        result = machine.run_smt(
            LoopProgram(layout.chain(3, 6), 1000),
            LoopProgram(layout.chain(3, 3, first_slot=6), 100),
        )
        assert result.primary.uops_mite > 2000  # ~3 blocks per encode burst
        assert result.primary.lsd_flushes > 50  # one flush per burst

    def test_different_set_sender_mild(self):
        machine = Machine(GOLD_6226, seed=2)
        layout = machine.layout()
        result = machine.run_smt(
            LoopProgram(layout.chain(3, 6), 1000),
            LoopProgram(layout.chain(9, 3, first_slot=6), 100),
        )
        # Folded sets 3 vs 9: no collision, only repartition cold misses.
        assert result.primary.uops_mite < 1000
