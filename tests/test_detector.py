"""Tests for the frontend anomaly detector (defender-side extension)."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.eviction import NonMtEvictionChannel
from repro.defense.detector import CounterSignature, FrontendAnomalyDetector
from repro.errors import MeasurementError
from repro.frontend.engine import LoopReport
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226


def benign_reports(machine: Machine) -> list[LoopReport]:
    """A spread of ordinary workloads: hot loops over various sets."""
    layout = machine.layout(region_base=0x900000)
    reports = []
    for dsb_set, blocks in ((1, 6), (9, 8), (17, 4), (25, 7)):
        program = LoopProgram(
            layout.chain(dsb_set, blocks, first_slot=dsb_set), 5000
        )
        reports.append(machine.run_loop(program))
    return reports


def attack_report(machine: Machine) -> LoopReport:
    """Counter totals accumulated while an eviction channel transmits."""
    machine.perf.reset()
    channel = NonMtEvictionChannel(
        machine, ChannelConfig(disturb_rate=0.0), variant="stealthy"
    )
    channel.transmit(alternating_bits(32))
    perf = machine.perf
    return LoopReport(
        cycles=perf.read("cycles"),
        uops_dsb=int(perf.read("idq.dsb_uops")),
        uops_mite=int(perf.read("idq.mite_uops")),
        uops_lsd=int(perf.read("lsd.uops")),
        switches_to_mite=int(perf.read("dsb2mite_switches.count")),
        lcp_stalls=int(perf.read("ild_stall.lcp")),
        dsb_evictions=int(perf.read("idq.dsb_evictions")),
        lsd_flushes=int(perf.read("lsd.flushes")),
    )


class TestCounterSignature:
    def test_rates_per_kilo_uop(self):
        report = LoopReport(uops_dsb=2000, dsb_evictions=10, lsd_flushes=4)
        signature = CounterSignature.from_report(report)
        assert signature.dsb_evictions == pytest.approx(5.0)
        assert signature.lsd_flushes == pytest.approx(2.0)
        assert signature.mite_share == 0.0

    def test_empty_report_safe(self):
        signature = CounterSignature.from_report(LoopReport())
        assert signature.dsb_evictions == 0.0


class TestFrontendAnomalyDetector:
    def test_untrained_raises(self):
        with pytest.raises(MeasurementError):
            FrontendAnomalyDetector().classify(LoopReport(uops_dsb=10))

    def test_benign_not_flagged(self):
        machine = Machine(GOLD_6226, seed=123)
        detector = FrontendAnomalyDetector()
        training = benign_reports(machine)
        for report in training[:-1]:
            detector.observe_benign(report)
        verdict = detector.classify(training[-1].merge(LoopReport()))
        # A held-out benign workload of the same character stays quiet.
        assert not verdict.suspicious

    def test_eviction_channel_flagged(self):
        """The channel's sustained eviction/flush rates break any benign
        envelope: cache-stealthy is not counter-stealthy."""
        machine = Machine(GOLD_6226, seed=123)
        detector = FrontendAnomalyDetector()
        for report in benign_reports(machine):
            detector.observe_benign(report)
        verdict = detector.classify(attack_report(Machine(GOLD_6226, seed=124)))
        assert verdict.suspicious
        assert "dsb_evictions" in verdict.exceeded
        assert verdict.score > 3.0

    def test_envelope_has_floor(self):
        detector = FrontendAnomalyDetector()
        detector.observe_benign(LoopReport(uops_dsb=1000))  # all-zero rates
        envelope = detector.envelope()
        assert all(value >= 0.5 for value in envelope.values())

    def test_trained_samples_counter(self):
        detector = FrontendAnomalyDetector()
        detector.observe_benign(LoopReport(uops_dsb=10))
        detector.observe_benign(LoopReport(uops_dsb=10))
        assert detector.trained_samples == 2
