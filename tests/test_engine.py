"""Tests for the frontend execution engine: path selection, steady-state
extrapolation, inclusivity, and the cache-stealthiness property."""

from __future__ import annotations

import pytest

from repro.caches.sa_cache import SetAssociativeCache
from repro.errors import ExecutionError
from repro.frontend.engine import FrontendEngine
from repro.frontend.params import FrontendParams
from repro.frontend.paths import DeliveryPath
from repro.isa.blocks import lcp_block
from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram


@pytest.fixture
def layout() -> BlockChainLayout:
    return BlockChainLayout()


def make_engine(lsd_enabled: bool = True, l1i: bool = False) -> FrontendEngine:
    cache = SetAssociativeCache(64, 8, 64, "L1I") if l1i else None
    return FrontendEngine(FrontendParams(), lsd_enabled=lsd_enabled, l1i=cache)


class TestPathSelection:
    def test_small_loop_settles_in_lsd(self, layout):
        engine = make_engine()
        report = engine.run_loop(LoopProgram(layout.chain(3, 8), 100))
        assert report.dominant_path() is DeliveryPath.LSD
        assert report.uops_mite == 40  # first iteration cold fill only

    def test_small_loop_settles_in_dsb_without_lsd(self, layout):
        engine = make_engine(lsd_enabled=False)
        report = engine.run_loop(LoopProgram(layout.chain(3, 8), 100))
        assert report.dominant_path() is DeliveryPath.DSB
        assert report.uops_lsd == 0

    def test_nine_blocks_thrash_to_mite(self, layout):
        """Section III-B: 9 same-set blocks overflow 8 ways."""
        engine = make_engine()
        report = engine.run_loop(LoopProgram(layout.chain(3, 9), 100))
        assert report.dominant_path() is DeliveryPath.MITE
        assert report.dsb_evictions > 50

    def test_eight_blocks_no_evictions(self, layout):
        engine = make_engine()
        report = engine.run_loop(LoopProgram(layout.chain(3, 8), 100))
        assert report.dsb_evictions == 0

    def test_medium_loop_dsb_even_with_lsd(self, layout):
        """Over-LSD-capacity loops fall back to the DSB (Figure 3)."""
        engine = make_engine()
        blocks = layout.chain(3, 7) + layout.chain(9, 7, first_slot=20)
        report = engine.run_loop(LoopProgram(blocks, 100))
        assert report.dominant_path() is DeliveryPath.DSB

    def test_misaligned_four_blocks_denied_lsd(self, layout):
        """4 misaligned same-set blocks defeat the LSD (Section III-C)."""
        engine = make_engine()
        report = engine.run_loop(LoopProgram(layout.chain(3, 4, misaligned=True), 100))
        assert report.uops_lsd == 0
        assert report.dominant_path() is DeliveryPath.DSB

    def test_timing_order_dsb_lsd_mite(self, layout):
        """Calibrated latency ordering (Figure 4): DSB < LSD < MITE+DSB."""
        lsd_engine = make_engine()
        lsd = lsd_engine.run_loop(LoopProgram(layout.chain(3, 8), 200))
        dsb_engine = make_engine(lsd_enabled=False)
        dsb = dsb_engine.run_loop(LoopProgram(layout.chain(3, 8), 200))
        mite_engine = make_engine()
        mite = mite_engine.run_loop(LoopProgram(layout.chain(3, 9), 200))
        per_uop = lambda r: r.cycles / r.total_uops
        assert per_uop(dsb) < per_uop(lsd) < per_uop(mite)

    def test_energy_order_lsd_dsb_mite(self, layout):
        """Core energy ordering (Figure 12): LSD < DSB < MITE."""
        lsd_engine = make_engine()
        lsd = lsd_engine.run_loop(LoopProgram(layout.chain(3, 8), 200))
        dsb_engine = make_engine(lsd_enabled=False)
        dsb = dsb_engine.run_loop(LoopProgram(layout.chain(3, 8), 200))
        mite_engine = make_engine()
        mite = mite_engine.run_loop(LoopProgram(layout.chain(3, 9), 200))
        per_uop = lambda r: r.energy_nj / r.total_uops
        assert per_uop(lsd) < per_uop(dsb) < per_uop(mite)


class TestSteadyStateExtrapolation:
    def test_matches_exact_simulation(self, layout):
        program = LoopProgram(layout.chain(3, 8), 500)
        exact = make_engine().run_loop(program, exact=True)
        fast = make_engine().run_loop(program)
        assert fast.cycles == pytest.approx(exact.cycles, rel=1e-9)
        assert fast.uops_lsd == exact.uops_lsd
        assert fast.uops_mite == exact.uops_mite

    def test_matches_exact_for_thrash(self, layout):
        program = LoopProgram(layout.chain(3, 9), 300)
        exact = make_engine().run_loop(program, exact=True)
        fast = make_engine().run_loop(program)
        assert fast.cycles == pytest.approx(exact.cycles, rel=1e-9)
        assert fast.uops_mite == exact.uops_mite

    def test_simulated_iterations_bounded(self, layout):
        report = make_engine().run_loop(LoopProgram(layout.chain(3, 8), 10**6))
        assert report.simulated_iterations <= FrontendEngine.MAX_SIMULATED
        assert report.iterations == 10**6

    def test_report_ipc(self, layout):
        report = make_engine().run_loop(LoopProgram(layout.chain(3, 8), 100))
        assert 0 < report.ipc <= 4.0


class TestCacheStealth:
    """The headline property: frontend attacks leave no L1I misses."""

    def test_thrash_causes_no_l1i_misses_after_warmup(self, layout):
        engine = make_engine(l1i=True)
        program = LoopProgram(layout.chain(3, 9), 50)
        engine.run_loop(program, exact=True)  # warm up (cold fills)
        misses_before = engine.l1i.stats.misses
        engine.run_loop(program, exact=True)
        assert engine.l1i.stats.misses == misses_before

    def test_dsb_hits_never_touch_l1i(self, layout):
        engine = make_engine(lsd_enabled=False, l1i=True)
        program = LoopProgram(layout.chain(3, 8), 50)
        engine.run_loop(program, exact=True)
        accesses_before = engine.l1i.stats.accesses
        engine.run_loop(program, exact=True)  # pure DSB hits
        assert engine.l1i.stats.accesses == accesses_before


class TestLcpWindows:
    def test_mixed_issue_more_switches_than_ordered(self):
        """Figure 6: same uops, different switch counts."""
        engine = make_engine()
        mixed = engine.run_loop(LoopProgram([lcp_block(0, 16, mixed=True)], 100))
        engine2 = make_engine()
        ordered = engine2.run_loop(LoopProgram([lcp_block(0x2000, 16, mixed=False)], 100))
        assert mixed.total_uops == ordered.total_uops
        assert mixed.switches_to_mite > ordered.switches_to_mite * 3
        assert mixed.cycles > ordered.cycles
        assert mixed.ipc < ordered.ipc

    def test_similar_mite_dsb_uop_split(self):
        """Figure 6: both encodings deliver similar uops from each path."""
        engine = make_engine()
        mixed = engine.run_loop(LoopProgram([lcp_block(0, 16, mixed=True)], 100))
        engine2 = make_engine()
        ordered = engine2.run_loop(LoopProgram([lcp_block(0x2000, 16, mixed=False)], 100))
        assert mixed.lcp_stalls == ordered.lcp_stalls
        # LCP uops always come from MITE in both encodings.
        assert mixed.uops_mite >= 16 * 100
        assert ordered.uops_mite >= 16 * 100


class TestThreadManagement:
    def test_unknown_thread_rejected(self, layout):
        engine = FrontendEngine(n_threads=1)
        with pytest.raises(ExecutionError):
            engine.run_iteration(LoopProgram(layout.chain(3, 1), 1), thread=1)

    def test_invalid_thread_count(self):
        with pytest.raises(ExecutionError):
            FrontendEngine(n_threads=3)

    def test_reset_thread_clears_state(self, layout):
        engine = make_engine()
        program = LoopProgram(layout.chain(3, 8), 50)
        first = engine.run_loop(program)
        engine.reset_thread(0)
        again = engine.run_loop(program)
        # Cold state reproduced: same MITE fill cost as the first run.
        assert again.uops_mite == first.uops_mite

    def test_eviction_flush_penalises_victim(self, layout):
        """DSB eviction of a streaming loop's window charges the LSD
        flush penalty to the victim's next iteration."""
        engine = make_engine()
        loop = LoopProgram(layout.chain(3, 8), 10)
        engine.run_loop(loop, exact=True)  # leaves DSB warm; LSD flushed at exit
        # Re-enter and stream.
        for _ in range(4):
            engine.run_iteration(loop, 0)
        assert engine.lsds[0].is_streaming(loop)
        # Thrash the set from the same thread: evictions flush the LSD.
        intruder = LoopProgram(layout.chain(3, 9, first_slot=50), 1)
        engine.run_iteration(intruder, 0)
        assert not engine.lsds[0].is_streaming(loop)
