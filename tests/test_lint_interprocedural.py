"""Tests for the interprocedural lint core and the proto-*/race-* families.

Four layers, mirroring the new machinery:

* **call graph** — hypothesis property tests over synthetic modules:
  shuffled definition order, methods, aliased imports, assigned
  lambdas and decorated defs all resolve (or stay conservatively
  unresolved);
* **dataflow** — the shared fixed point (now also backing
  ``det-set-iteration``), dict key flow and the forward pass;
* **fixtures** — tiny ``src/repro/service`` trees seeded with one
  violation per ``proto-*``/``race-*`` rule, each shown firing and
  suppressed;
* **acceptance** — the real wire protocol: the manifest matches every
  frame literal in ``repro.service``/``repro.cluster`` exactly, and
  deleting any one handler dispatch makes the lint fail.  Plus the
  ``--changed`` scoping contract against a real git repo.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import (
    LintConfig,
    ModuleInfo,
    Project,
    build_call_graph,
    changed_files,
    default_config,
    dict_key_flow,
    fixpoint_functions,
    run_lint,
)
from repro.lint.protocol_manifest import PROTOCOL_OPS, OpSpec
from repro.lint.rules.determinism import SetIterationRule
from repro.lint.rules.protocol import (
    FrameKeysRule,
    JsonUnsafeRule,
    MissingHandlerRule,
    UnknownOpRule,
    _ProtocolAnalysis,
)
from repro.lint.rules.races import (
    AwaitSharedStateRule,
    DroppedTaskRule,
    UnawaitedCoroutineRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

PROTOCOL_RULES = [UnknownOpRule, MissingHandlerRule, FrameKeysRule, JsonUnsafeRule]
RACE_RULES = [AwaitSharedStateRule, DroppedTaskRule, UnawaitedCoroutineRule]


def write_module(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint_tree(root: Path, rules, **kwargs):
    for include in default_config().include:
        (root / include).mkdir(parents=True, exist_ok=True)
    return run_lint(root, rules=rules, **kwargs)


def active_rules(report) -> list[str]:
    return [v.rule for v in report.active]


def make_project(modules: dict[str, str]) -> Project:
    """An in-memory Project from {dotted name: source} (no disk I/O)."""
    project = Project(root=Path("/fixture"))
    for dotted, source in modules.items():
        text = textwrap.dedent(source)
        rel = "src/" + dotted.replace(".", "/") + ".py"
        project.modules.append(
            ModuleInfo(
                path=Path("/fixture") / rel,
                rel_path=rel,
                module=dotted,
                source=text,
                tree=ast.parse(text),
                line_suppressions={},
                file_suppressions=frozenset(),
            )
        )
    return project


# ----------------------------------------------------------------------
# call graph: property tests
# ----------------------------------------------------------------------
class TestCallGraphProperties:
    @given(order=st.permutations(list(range(5))))
    @settings(max_examples=25, deadline=None)
    def test_call_chain_resolves_in_any_definition_order(self, order):
        parts = []
        for i in order:
            body = f"return f{i - 1}()" if i > 0 else "return 0"
            parts.append(f"def f{i}():\n    {body}\n")
        project = make_project({"m": "\n".join(parts)})
        graph = build_call_graph(project)
        edges = {(site.caller, site.callee) for site in graph.calls}
        assert edges == {(f"m.f{i}", f"m.f{i - 1}") for i in range(1, 5)}

    @given(k=st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_self_method_calls_resolve_within_the_class(self, k):
        methods = ["    def m0(self):\n        return 0\n"]
        for i in range(1, k):
            methods.append(
                f"    def m{i}(self):\n        return self.m{i - 1}()\n"
            )
        project = make_project({"m": "class C:\n" + "\n".join(methods)})
        graph = build_call_graph(project)
        for i in range(1, k):
            node = graph.functions[f"m.C.m{i}"]
            assert node.kind == "method" and node.params[0] == "self"
            assert {s.callee for s in graph.callees(f"m.C.m{i}")} == {
                f"m.C.m{i - 1}"
            }

    @given(names=st.permutations(["alpha", "beta", "gamma"]))
    @settings(max_examples=20, deadline=None)
    def test_aliased_imports_resolve_across_modules(self, names):
        producer = "\n".join(f"def {n}():\n    return 0\n" for n in names)
        imports = "\n".join(f"from prod import {n} as use_{n}" for n in names)
        calls = "\n    ".join(f"use_{n}()" for n in names)
        consumer = f"{imports}\nimport prod as pp\n\ndef drive():\n    {calls}\n    pp.{names[0]}()\n"
        project = make_project({"prod": producer, "cons": consumer})
        graph = build_call_graph(project)
        callees = {s.callee for s in graph.callees("cons.drive")}
        assert callees == {f"prod.{n}" for n in names}

    @given(k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_assigned_lambdas_are_indexed_and_resolvable(self, k):
        lines = [f"h{i} = lambda x: x + {i}" for i in range(k)]
        lines.append("def drive():")
        lines.extend(f"    h{i}(1)" for i in range(k))
        project = make_project({"m": "\n".join(lines) + "\n"})
        graph = build_call_graph(project)
        for i in range(k):
            node = graph.functions[f"m.h{i}"]
            assert node.kind == "lambda" and node.params == ("x",)
        assert {s.callee for s in graph.callees("m.drive")} == {
            f"m.h{i}" for i in range(k)
        }

    @given(decorated=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_decorated_defs_keep_their_qualname(self, decorated):
        prefix = "@wraps\n" if decorated else ""
        source = (
            "def wraps(f):\n    return f\n\n"
            f"{prefix}def target():\n    return 1\n\n"
            "def drive():\n    return target()\n"
        )
        project = make_project({"m": source})
        graph = build_call_graph(project)
        node = graph.functions["m.target"]
        assert node.decorators == (("wraps",) if decorated else ())
        assert {s.callee for s in graph.callees("m.drive")} == {"m.target"}

    def test_unknown_targets_stay_unresolved(self):
        project = make_project(
            {"m": "import os\n\ndef drive(x):\n    os.write(1, x)\n    x.go()\n"}
        )
        graph = build_call_graph(project)
        assert graph.callees("m.drive") == []


# ----------------------------------------------------------------------
# dataflow core
# ----------------------------------------------------------------------
class TestDataflow:
    @given(order=st.permutations(list(range(4))))
    @settings(max_examples=20, deadline=None)
    def test_fixpoint_resolves_set_returner_chains_any_order(self, order):
        parts = []
        for i in order:
            body = f"return s{i - 1}()" if i > 0 else "return set()"
            parts.append(f"def s{i}():\n    {body}\n")
        tree = ast.parse("\n".join(parts))
        accepted = fixpoint_functions(tree, SetIterationRule._returns_only_sets)
        assert accepted == frozenset({f"s{i}" for i in range(4)})

    def test_dict_key_flow_tracks_literal_and_subscript_stores(self):
        func = ast.parse(
            textwrap.dedent(
                """
                def build(kinds):
                    frame: dict = {"op": "watch"}
                    if kinds:
                        frame["kinds"] = list(kinds)
                    return frame
                """
            )
        ).body[0]
        flows = dict_key_flow(func)
        assert flows["frame"].definite == frozenset({"op"})
        assert flows["frame"].possible == frozenset({"op", "kinds"})
        assert not flows["frame"].open_ended

    def test_dict_key_flow_spread_is_open_ended(self):
        func = ast.parse(
            "def build(extra):\n    frame = {'op': 'x', **extra}\n    return frame\n"
        ).body[0]
        assert dict_key_flow(func)["frame"].open_ended


# ----------------------------------------------------------------------
# proto-* fixtures (custom manifest, full control)
# ----------------------------------------------------------------------
_HELLO = OpSpec(
    op="hello",
    key="op",
    senders=("repro.service.a",),
    handlers=("repro.service.b",),
    required=frozenset({"op", "payload"}),
    optional=frozenset({"extra"}),
    informational=frozenset({"extra"}),
)

_SENDER_OK = """
    import json


    def send(sock):
        frame = {"op": "hello", "payload": 1}
        sock.write(json.dumps(frame).encode())
"""

_HANDLER_OK = """
    import json


    def handle(line):
        frame = json.loads(line)
        op = frame.get("op")
        if op == "hello":
            return frame.get("payload")
        return None
"""


def proto_config(*ops) -> LintConfig:
    return LintConfig(protocol_ops=tuple(ops) or (_HELLO,))


class TestProtocolRules:
    def test_conforming_pair_is_clean(self, tmp_path):
        write_module(tmp_path, "src/repro/service/a.py", _SENDER_OK)
        write_module(tmp_path, "src/repro/service/b.py", _HANDLER_OK)
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert report.active == []

    def test_unknown_op_fires_and_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/a.py",
            """
            def send(sock):
                frame = {"op": "hello", "payload": 1}
                bogus = {"op": "bogus"}
                sock.write(frame, bogus)
            """,
        )
        write_module(tmp_path, "src/repro/service/b.py", _HANDLER_OK)
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-unknown-op"]
        write_module(
            tmp_path,
            "src/repro/service/a.py",
            """
            def send(sock):
                frame = {"op": "hello", "payload": 1}
                bogus = {"op": "bogus"}  # repro: lint-disable=proto-unknown-op
                sock.write(frame, bogus)
            """,
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert report.active == []

    def test_unknown_dispatch_literal_fires(self, tmp_path):
        write_module(tmp_path, "src/repro/service/a.py", _SENDER_OK)
        write_module(
            tmp_path,
            "src/repro/service/b.py",
            """
            import json


            def handle(line):
                frame = json.loads(line)
                if frame.get("op") == "hello":
                    return frame.get("payload")
                if frame.get("op") == "goodbye":
                    return None
                return None
            """,
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-unknown-op"]

    def test_missing_handler_fires_and_file_suppresses(self, tmp_path):
        write_module(tmp_path, "src/repro/service/a.py", _SENDER_OK)
        write_module(
            tmp_path, "src/repro/service/b.py", "def handle(line):\n    return None\n"
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-missing-handler"]
        assert report.active[0].path == "src/repro/service/b.py"
        write_module(
            tmp_path,
            "src/repro/service/b.py",
            "# repro: lint-disable-file=proto-missing-handler\n"
            "def handle(line):\n    return None\n",
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert report.active == []

    def test_missing_sender_fires(self, tmp_path):
        write_module(
            tmp_path, "src/repro/service/a.py", "def send(sock):\n    pass\n"
        )
        write_module(tmp_path, "src/repro/service/b.py", _HANDLER_OK)
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-missing-handler"]
        assert "no send site" in report.active[0].message

    def test_frame_keys_missing_required_and_undeclared(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/a.py",
            """
            def send(sock):
                frame = {"op": "hello", "junk": 2}
                sock.write(frame)
            """,
        )
        write_module(tmp_path, "src/repro/service/b.py", _HANDLER_OK)
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-frame-keys"] * 2
        messages = " | ".join(v.message for v in report.active)
        assert "payload" in messages and "junk" in messages

    def test_frame_keys_handler_reads_undeclared_key(self, tmp_path):
        write_module(tmp_path, "src/repro/service/a.py", _SENDER_OK)
        write_module(
            tmp_path,
            "src/repro/service/b.py",
            """
            import json


            def handle(line):
                frame = json.loads(line)
                if frame.get("op") == "hello":
                    return frame.get("payload"), frame.get("phantom")
                return None
            """,
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-frame-keys"]
        assert "phantom" in report.active[0].message

    def test_frame_keys_sent_but_never_read_fires_and_suppresses(self, tmp_path):
        write_module(tmp_path, "src/repro/service/a.py", _SENDER_OK)
        handler = """
            import json


            def handle(line):
                frame = json.loads(line)
                if frame.get("op") == "hello":{suffix}
                    return True
                return None
        """
        write_module(
            tmp_path, "src/repro/service/b.py", handler.format(suffix="")
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-frame-keys"]
        assert "payload" in report.active[0].message
        write_module(
            tmp_path,
            "src/repro/service/b.py",
            handler.format(
                suffix="  # repro: lint-disable=proto-frame-keys"
            ),
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert report.active == []

    def test_handler_reads_count_through_frame_passing_calls(self, tmp_path):
        write_module(tmp_path, "src/repro/service/a.py", _SENDER_OK)
        write_module(
            tmp_path,
            "src/repro/service/b.py",
            """
            import json


            def handle(line):
                frame = json.loads(line)
                if frame.get("op") == "hello":
                    return _on_hello(frame)
                return None


            def _on_hello(message):
                return message.get("payload"), message.get("extra")
            """,
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert report.active == []

    def test_json_unsafe_fires_and_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/a.py",
            """
            def send(sock):
                frame = {"op": "hello", "payload": {"a", "b"}}
                sock.write(frame)
            """,
        )
        write_module(tmp_path, "src/repro/service/b.py", _HANDLER_OK)
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert active_rules(report) == ["proto-json-unsafe"]
        write_module(
            tmp_path,
            "src/repro/service/a.py",
            """
            def send(sock):
                frame = {
                    "op": "hello",
                    "payload": {"a", "b"},  # repro: lint-disable=proto-json-unsafe
                }
                sock.write(frame)
            """,
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=proto_config())
        assert report.active == []


# ----------------------------------------------------------------------
# race-* fixtures
# ----------------------------------------------------------------------
class TestRaceRules:
    def test_check_then_act_across_await_fires_and_suppresses(self, tmp_path):
        racy = """
            class Stoppable:
                def __init__(self):
                    self._task = None

                async def stop(self):
                    if self._task is not None:
                        await self._task
                        self._task = None{suffix}
        """
        write_module(
            tmp_path, "src/repro/service/x.py", racy.format(suffix="")
        )
        report = lint_tree(tmp_path, [AwaitSharedStateRule])
        assert active_rules(report) == ["race-await-shared-state"]
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            racy.format(
                suffix="  # repro: lint-disable=race-await-shared-state"
            ),
        )
        report = lint_tree(tmp_path, [AwaitSharedStateRule])
        assert report.active == []

    def test_swap_pattern_is_clean(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            """
            class Stoppable:
                def __init__(self):
                    self._task = None

                async def stop(self):
                    task, self._task = self._task, None
                    if task is not None:
                        await task
            """,
        )
        report = lint_tree(tmp_path, [AwaitSharedStateRule])
        assert report.active == []

    def test_tainted_local_rmw_fires_but_lock_exempts(self, tmp_path):
        body = """
            import asyncio


            class Counter:
                def __init__(self, lock):
                    self._lock = lock
                    self._count = 0

                async def bump(self):
                    {opening}
                        cur = self._count
                        await asyncio.sleep(0)
                        self._count = cur + 1
        """
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            body.format(opening="if True:"),
        )
        report = lint_tree(tmp_path, [AwaitSharedStateRule])
        assert active_rules(report) == ["race-await-shared-state"]
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            body.format(opening="async with self._lock:"),
        )
        report = lint_tree(tmp_path, [AwaitSharedStateRule])
        assert report.active == []

    def test_augmented_await_rmw_fires(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            """
            class Tally:
                def __init__(self):
                    self._total = 0

                async def add(self, fetch):
                    self._total += await fetch()
            """,
        )
        report = lint_tree(tmp_path, [AwaitSharedStateRule])
        assert active_rules(report) == ["race-await-shared-state"]

    def test_outside_async_units_is_ignored(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/frontend/x.py",
            """
            class Stoppable:
                def __init__(self):
                    self._task = None

                async def stop(self):
                    if self._task is not None:
                        await self._task
                        self._task = None
            """,
        )
        report = lint_tree(tmp_path, RACE_RULES)
        assert report.active == []

    def test_dropped_task_fires_retained_is_clean(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            """
            import asyncio


            class Spawner:
                def __init__(self):
                    self._tasks = set()

                async def bad(self, work):
                    asyncio.create_task(work())

                async def good(self, work):
                    task = asyncio.create_task(work())
                    self._tasks.add(task)
                    task.add_done_callback(self._tasks.discard)
            """,
        )
        report = lint_tree(tmp_path, [DroppedTaskRule])
        assert active_rules(report) == ["race-dropped-task"]
        assert report.active[0].line == 10

    def test_dropped_task_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            """
            import asyncio


            async def fire(work):
                asyncio.create_task(work())  # repro: lint-disable=race-dropped-task
            """,
        )
        report = lint_tree(tmp_path, [DroppedTaskRule])
        assert report.active == []

    def test_unawaited_coroutine_fires_awaited_is_clean(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            """
            async def work():
                return 1


            def bad():
                work()


            async def good():
                await work()
            """,
        )
        report = lint_tree(tmp_path, [UnawaitedCoroutineRule])
        assert active_rules(report) == ["race-unawaited-coroutine"]
        assert "work" in report.active[0].message

    def test_unawaited_coroutine_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/x.py",
            """
            async def work():
                return 1


            def bad():
                work()  # repro: lint-disable=race-unawaited-coroutine
            """,
        )
        report = lint_tree(tmp_path, [UnawaitedCoroutineRule])
        assert report.active == []


# ----------------------------------------------------------------------
# acceptance: the real wire protocol
# ----------------------------------------------------------------------
_REAL_PROTOCOL_FILES = (
    "src/repro/service/client.py",
    "src/repro/service/server.py",
    "src/repro/cluster/worker.py",
    "src/repro/cluster/coordinator.py",
)


def _copy_real_protocol_tree(tmp_path: Path) -> None:
    for rel in _REAL_PROTOCOL_FILES:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, target)


class TestRealProtocolAcceptance:
    def test_manifest_enumerates_every_real_frame_literal(self):
        """The manifest and the tree agree exactly: every ``"op"``/``"type"``
        frame literal in repro.service + repro.cluster is declared, and
        every declared op is sent somewhere."""
        config = default_config()
        files = [
            path
            for unit in ("service", "cluster")
            for path in sorted((REPO_ROOT / "src" / "repro" / unit).rglob("*.py"))
        ]
        project = Project.load(REPO_ROOT, files, config=config)
        analysis = _ProtocolAnalysis(project)
        sent = {(site.key, site.op) for site in analysis.send_sites}
        declared = {(spec.key, spec.op) for spec in PROTOCOL_OPS}
        assert sent == declared

    def test_real_sources_lint_clean_in_isolation(self, tmp_path):
        _copy_real_protocol_tree(tmp_path)
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=default_config())
        assert report.active == []

    @pytest.mark.parametrize(
        "spec", PROTOCOL_OPS, ids=[spec.op for spec in PROTOCOL_OPS]
    )
    def test_deleting_any_handler_fails_the_lint(self, tmp_path, spec):
        """Renaming the dispatch literal out from under any one op (the
        static shape of deleting its handler branch) must fail lint."""
        _copy_real_protocol_tree(tmp_path)
        handler_rel = "src/" + spec.handlers[0].replace(".", "/") + ".py"
        handler = tmp_path / handler_rel
        handler.write_text(
            handler.read_text().replace(f'"{spec.op}"', '"zz-disabled"')
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=default_config())
        assert "proto-missing-handler" in active_rules(report)
        assert report.exit_code() == 1

    def test_deleting_a_sender_fails_the_lint(self, tmp_path):
        _copy_real_protocol_tree(tmp_path)
        client = tmp_path / "src/repro/service/client.py"
        client.write_text(
            client.read_text().replace('{"op": "metrics"}', '{"op": "ping"}')
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=default_config())
        assert "proto-missing-handler" in active_rules(report)
        assert any("metrics" in v.message for v in report.active)

    @pytest.mark.parametrize("event", ["deny", "quota-exceeded"])
    def test_deleting_an_auth_refusal_sender_fails_the_lint(
        self, tmp_path, event
    ):
        """The auth refusal frames are load-bearing protocol surface.

        ``deny`` and ``quota-exceeded`` are what an unauthenticated or
        over-quota client *sees*; silently dropping either sender from
        ``server.py`` would strand typed client errors on a read
        timeout.  The manifest declares both, so the lint must flag the
        orphaned declaration (and the renamed literal as undeclared).
        """
        _copy_real_protocol_tree(tmp_path)
        server = tmp_path / "src/repro/service/server.py"
        server.write_text(
            server.read_text().replace(
                f'"event": "{event}"', '"event": "zz-refused"'
            )
        )
        report = lint_tree(tmp_path, PROTOCOL_RULES, config=default_config())
        rules = active_rules(report)
        assert "proto-missing-handler" in rules
        assert "proto-unknown-op" in rules
        assert any(event in v.message for v in report.active)


# ----------------------------------------------------------------------
# --changed scoping
# ----------------------------------------------------------------------
_RACY = """
import asyncio


async def fire(work):
    asyncio.create_task(work())
"""

_CLEAN = "def helper():\n    return 1\n"


def _git(root: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-C", str(root), "-c", "user.email=t@test", "-c",
         "user.name=t", *args],
        check=True,
        capture_output=True,
    )


class TestChangedScoping:
    def _seed_repo(self, root: Path) -> None:
        write_module(root, "src/repro/service/spawn.py", _RACY)
        write_module(root, "src/repro/service/other.py", _CLEAN)
        for include in default_config().include:
            (root / include).mkdir(parents=True, exist_ok=True)
        _git(root, "init", "-q")
        _git(root, "add", "-A")
        _git(root, "commit", "-qm", "seed")

    def test_unchanged_violations_are_filtered_out(self, tmp_path):
        self._seed_repo(tmp_path)
        (tmp_path / "src/repro/service/other.py").write_text(
            _CLEAN + "# touched\n"
        )
        report = run_lint(
            tmp_path, rules=[DroppedTaskRule], changed_only="HEAD"
        )
        assert report.active == []
        full = run_lint(tmp_path, rules=[DroppedTaskRule])
        assert active_rules(full) == ["race-dropped-task"]

    def test_changed_file_still_reports_its_violations(self, tmp_path):
        self._seed_repo(tmp_path)
        spawn = tmp_path / "src/repro/service/spawn.py"
        spawn.write_text(spawn.read_text() + "# touched\n")
        report = run_lint(
            tmp_path, rules=[DroppedTaskRule], changed_only="HEAD"
        )
        assert active_rules(report) == ["race-dropped-task"]

    def test_untracked_files_count_as_changed(self, tmp_path):
        self._seed_repo(tmp_path)
        write_module(tmp_path, "src/repro/service/fresh.py", _RACY)
        report = run_lint(
            tmp_path, rules=[DroppedTaskRule], changed_only="HEAD"
        )
        assert [v.path for v in report.active] == ["src/repro/service/fresh.py"]

    def test_no_git_falls_back_to_full_tree(self, tmp_path):
        write_module(tmp_path, "src/repro/service/spawn.py", _RACY)
        for include in default_config().include:
            (tmp_path / include).mkdir(parents=True, exist_ok=True)
        assert changed_files(tmp_path) is None
        report = run_lint(
            tmp_path, rules=[DroppedTaskRule], changed_only="HEAD"
        )
        assert active_rules(report) == ["race-dropped-task"]

    def test_cli_changed_flag_on_the_real_repo(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--changed", "--strict"]) == 0
        assert "0 error(s)" in capsys.readouterr().out
