"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_transmit_defaults(self):
        args = build_parser().parse_args(["transmit"])
        assert args.channel == "eviction"
        assert args.variant == "stealthy"
        assert args.seed == 0

    def test_seed_after_subcommand(self):
        args = build_parser().parse_args(["transmit", "--seed", "7"])
        assert args.seed == 7

    def test_rejects_unknown_channel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmit", "--channel", "tlb"])


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Gold 6226" in out
        assert "E-2288G" in out

    def test_transmit_message(self, capsys):
        code = main(
            ["transmit", "--channel", "misalignment", "--variant", "fast",
             "--message", "0110", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sent    : 0110" in out
        assert "Kbps" in out

    def test_transmit_random_bits(self, capsys):
        assert main(["transmit", "--bits", "8", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "error" in out

    def test_probe(self, capsys):
        assert main(["probe", "--samples", "20"]) == 0
        out = capsys.readouterr().out
        assert "LSD" in out and "MITE+DSB" in out

    def test_fingerprint(self, capsys):
        assert main(["fingerprint", "--patch", "patch1"]) == 0
        out = capsys.readouterr().out
        assert "LSD ENABLED" in out
        assert "vulnerable to" in out

    def test_spectre(self, capsys):
        assert main(["spectre", "--secret", "abc", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "L1 miss rate" in out

    def test_sgx_non_mt(self, capsys):
        assert main(["sgx", "--bits", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "sgx-non-mt" in out

    def test_sweep_serial_with_cache(self, capsys, tmp_path):
        argv = [
            "sweep", "--channel", "eviction", "--variant", "fast",
            "--param", "d=2,4", "--bits", "8",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "kbps_mean" in cold
        assert "cache hits 0/2" in cold
        # Warm rerun serves every point from the cache, same table.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hits 2/2" in warm
        assert warm.splitlines()[:4] == cold.splitlines()[:4]

    def test_sweep_parallel_matches_serial(self, capsys):
        base = [
            "sweep", "--channel", "eviction", "--variant", "fast",
            "--param", "d=2,4", "--bits", "8", "--no-cache",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out.splitlines()[:4]
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out.splitlines()[:4]
        assert parallel == serial

    def test_sweep_progress_jsonl_on_stderr_stdout_unchanged(self, capsys):
        import json

        base = [
            "sweep", "--param", "d=2", "--bits", "8", "--no-cache",
            "--variant", "fast",
        ]
        assert main(base) == 0
        plain = capsys.readouterr()
        assert plain.err == ""

        assert main(base + ["--progress"]) == 0
        captured = capsys.readouterr()
        # Progress events are service-format JSONL, on stderr only...
        events = [json.loads(line) for line in captured.err.splitlines()]
        assert [e["event"] for e in events] == ["point-done"]
        assert events[0]["done"] == events[0]["total"] == 1
        # ...and the stdout table stays byte-identical for result piping
        # (the trailing stats line carries wall times, hence [:4]).
        assert captured.out.splitlines()[:4] == plain.out.splitlines()[:4]

    def test_sweep_rejects_zero_jobs(self, capsys):
        code = main(["sweep", "--param", "d=2", "--no-cache", "--jobs", "0"])
        assert code == 1
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_sweep_rejects_non_numeric_value_cleanly(self, capsys):
        code = main(["sweep", "--param", "q=100,fast", "--no-cache"])
        assert code == 1
        assert "invalid ChannelConfig" in capsys.readouterr().err

    def test_sweep_rejects_bad_param(self, capsys):
        assert main(["sweep", "--param", "d", "--no-cache"]) == 1
        assert "--param expects" in capsys.readouterr().err

    def test_sweep_rejects_unknown_config_field(self, capsys):
        assert main(["sweep", "--param", "nope=1", "--no-cache"]) == 1
        assert "unknown ChannelConfig parameter" in capsys.readouterr().err

    def test_mt_channel_on_non_smt_machine_fails_cleanly(self, capsys):
        code = main(
            ["transmit", "--machine", "E-2288G", "--channel", "mt-eviction"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_machine_fails_cleanly(self, capsys):
        assert main(["transmit", "--machine", "i9-9900K"]) == 1
        assert "unknown machine" in capsys.readouterr().err


class TestBackendFlag:
    """``--backend`` selects the simulation backend without changing results."""

    @pytest.fixture(autouse=True)
    def _restore_backend(self, monkeypatch):
        from repro.frontend.backends import ENV_VAR, set_default_backend

        monkeypatch.delenv(ENV_VAR, raising=False)
        previous = set_default_backend(None)
        yield
        set_default_backend(previous)

    def test_parser_accepts_backend_on_sweep_serve_worker(self):
        parser = build_parser()
        for argv in (
            ["sweep", "--param", "d=2", "--backend", "vectorized"],
            ["serve", "--backend", "reference"],
            ["worker", "--connect", "x", "--backend", "vectorized"],
        ):
            assert parser.parse_args(argv).backend == argv[-1]

    def test_parser_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "turbo"])

    def test_backend_flag_sets_default_and_environment(self, capsys):
        import os

        from repro.frontend.backends import ENV_VAR, default_backend_name

        base = [
            "sweep", "--channel", "eviction", "--variant", "fast",
            "--param", "d=2,4", "--bits", "8", "--no-cache",
        ]
        assert main(base) == 0
        reference_out = capsys.readouterr().out.splitlines()[:4]
        assert main(base + ["--backend", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out.splitlines()[:4]
        assert vectorized_out == reference_out
        assert default_backend_name() == "vectorized"
        assert os.environ[ENV_VAR] == "vectorized"


class TestBench:
    def test_bench_writes_result_and_reports_speedup(self, capsys, tmp_path):
        import json

        target = tmp_path / "BENCH_frontend.json"
        argv = [
            "bench", "--loops", "3", "--reps", "4", "--jobs", "2",
            "--output", str(target),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "vectorized speedup" in out
        document = json.loads(target.read_text())
        assert document["suite"] == "frontend-micro-v1"
        assert set(document["latency_us"]) == {"reference", "vectorized"}
        assert "serial" in document["speedup"]
        assert any(
            "sim.points" in str(key) for key in document["metrics"]
        ) or "sim.points" in json.dumps(document["metrics"])

    def test_bench_check_flag_enforces_floor(self, capsys, tmp_path):
        from unittest import mock

        import repro.bench

        argv = [
            "bench", "--loops", "2", "--reps", "3", "--jobs", "2",
            "--output", str(tmp_path / "b.json"), "--check",
        ]
        with mock.patch.object(
            repro.bench, "VECTORIZED_SPEEDUP_FLOOR", 10_000.0
        ):
            assert main(argv) == 1
        assert "below the committed floor" in capsys.readouterr().err
