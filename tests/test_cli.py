"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_transmit_defaults(self):
        args = build_parser().parse_args(["transmit"])
        assert args.channel == "eviction"
        assert args.variant == "stealthy"
        assert args.seed == 0

    def test_seed_after_subcommand(self):
        args = build_parser().parse_args(["transmit", "--seed", "7"])
        assert args.seed == 7

    def test_rejects_unknown_channel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmit", "--channel", "tlb"])


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Gold 6226" in out
        assert "E-2288G" in out

    def test_transmit_message(self, capsys):
        code = main(
            ["transmit", "--channel", "misalignment", "--variant", "fast",
             "--message", "0110", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sent    : 0110" in out
        assert "Kbps" in out

    def test_transmit_random_bits(self, capsys):
        assert main(["transmit", "--bits", "8", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "error" in out

    def test_probe(self, capsys):
        assert main(["probe", "--samples", "20"]) == 0
        out = capsys.readouterr().out
        assert "LSD" in out and "MITE+DSB" in out

    def test_fingerprint(self, capsys):
        assert main(["fingerprint", "--patch", "patch1"]) == 0
        out = capsys.readouterr().out
        assert "LSD ENABLED" in out
        assert "vulnerable to" in out

    def test_spectre(self, capsys):
        assert main(["spectre", "--secret", "abc", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "L1 miss rate" in out

    def test_sgx_non_mt(self, capsys):
        assert main(["sgx", "--bits", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "sgx-non-mt" in out

    def test_mt_channel_on_non_smt_machine_fails_cleanly(self, capsys):
        code = main(
            ["transmit", "--machine", "E-2288G", "--channel", "mt-eviction"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_machine_fails_cleanly(self, capsys):
        assert main(["transmit", "--machine", "i9-9900K"]) == 1
        assert "unknown machine" in capsys.readouterr().err
