"""Property tests for the SMT executor: extrapolation fidelity and
interference invariants over random program pairs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.layout import BlockChainLayout
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226

LAYOUT = BlockChainLayout()


@st.composite
def smt_pairs(draw):
    """(receiver, sender) loop pairs over random sets and sizes."""
    recv_set = draw(st.integers(min_value=0, max_value=31))
    send_set = draw(st.integers(min_value=0, max_value=31))
    recv_blocks = draw(st.integers(min_value=1, max_value=8))
    send_blocks = draw(st.integers(min_value=1, max_value=8))
    recv_iters = draw(st.integers(min_value=20, max_value=400))
    send_iters = draw(st.integers(min_value=5, max_value=40))
    receiver = LoopProgram(
        LAYOUT.chain(recv_set, recv_blocks), recv_iters, "recv"
    )
    sender = LoopProgram(
        LAYOUT.chain(send_set, send_blocks, first_slot=50), send_iters, "send"
    )
    return receiver, sender


class TestSmtProperties:
    @given(smt_pairs())
    @settings(max_examples=20, deadline=None)
    def test_extrapolation_close_to_exact(self, pair):
        receiver, sender = pair
        exact = Machine(GOLD_6226, seed=1).run_smt(receiver, sender, exact=True)
        fast = Machine(GOLD_6226, seed=1).run_smt(receiver, sender)
        assert fast.primary.total_uops == exact.primary.total_uops
        assert fast.secondary.total_uops == exact.secondary.total_uops
        assert fast.primary.cycles == pytest.approx(exact.primary.cycles, rel=0.05)

    @given(smt_pairs())
    @settings(max_examples=20, deadline=None)
    def test_uop_conservation_both_threads(self, pair):
        receiver, sender = pair
        result = Machine(GOLD_6226, seed=1).run_smt(receiver, sender, exact=True)
        assert result.primary.total_uops == receiver.total_uops
        assert result.secondary.total_uops == sender.total_uops

    @given(smt_pairs())
    @settings(max_examples=15, deadline=None)
    def test_sibling_never_speeds_up_receiver(self, pair):
        """Sharing the frontend can only cost the receiver cycles."""
        receiver, sender = pair
        solo = Machine(GOLD_6226, seed=1).run_loop(receiver, exact=True)
        shared = Machine(GOLD_6226, seed=1).run_smt(receiver, sender, exact=True)
        assert shared.primary.cycles >= solo.cycles * 0.999

    @given(smt_pairs())
    @settings(max_examples=15, deadline=None)
    def test_wall_clock_covers_both(self, pair):
        receiver, sender = pair
        result = Machine(GOLD_6226, seed=1).run_smt(receiver, sender, exact=True)
        assert result.total_cycles >= result.primary.cycles - 1e-9
        assert result.total_cycles >= result.secondary.cycles - 1e-9
