"""Tests for the MITE legacy-decode cost model."""

from __future__ import annotations

from repro.frontend.mite import FETCH_BYTES_PER_CYCLE, MiteDecoder
from repro.frontend.params import FrontendParams
from repro.isa.instructions import add_reg, add_reg_lcp, jmp_rel32, mov_imm32, store


class TestDecodeWindow:
    def setup_method(self):
        self.mite = MiteDecoder(FrontendParams())

    def test_empty_window_free(self):
        cost = self.mite.decode_window([], 0)
        assert cost.cycles == 0.0
        assert cost.uops == 0

    def test_standard_block_cost(self):
        instructions = [mov_imm32(r) for r in range(4)] + [jmp_rel32()]
        cost = self.mite.decode_window(instructions, 25)
        # 25 bytes => 2 fetch cycles; 5 simple insns => 2 decode cycles.
        assert cost.cycles == 2 + FrontendParams().mite_window_overhead
        assert cost.uops == 5
        assert cost.lcp_stalls == 0

    def test_lcp_stall_counting(self):
        instructions = [add_reg(), add_reg_lcp(), add_reg(), add_reg_lcp()]
        cost = self.mite.decode_window(instructions, 10)
        assert cost.lcp_stalls == 2

    def test_lcp_serialises_decode(self):
        plain = self.mite.decode_window([add_reg()] * 6, 12)
        prefixed = self.mite.decode_window([add_reg_lcp()] * 6, 18)
        assert prefixed.cycles > plain.cycles

    def test_complex_instructions_use_complex_decoder(self):
        # 4 stores (2 uops each) need 4 complex-decode cycles.
        cost = self.mite.decode_window([store()] * 4, 16)
        simple = self.mite.decode_window([mov_imm32()] * 4, 20)
        assert cost.cycles > simple.cycles
        assert cost.uops == 8

    def test_fetch_bound_for_large_windows(self):
        # 32 bytes of 1-uop instructions: fetch (2 cycles) dominates a
        # 3-wide simple decode only when instruction count is small.
        few_big = self.mite.decode_window([mov_imm32()] * 2, 32)
        assert few_big.cycles >= 2.0

    def test_fetch_width_constant(self):
        assert FETCH_BYTES_PER_CYCLE == 16
