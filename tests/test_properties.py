"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bits import pack_chunks, unpack_chunks
from repro.analysis.wagner_fischer import edit_distance
from repro.backend.ports import PortModel
from repro.caches.sa_cache import SetAssociativeCache
from repro.frontend.dsb import DecodedStreamBuffer
from repro.frontend.params import FrontendParams
from repro.isa.blocks import standard_mix_block
from repro.isa.layout import BlockChainLayout
from repro.isa.uops import Uop, UopKind

bitstrings = st.text(alphabet="01", max_size=24)


class TestEditDistanceMetric:
    """Wagner–Fischer must satisfy the metric axioms."""

    @given(bitstrings)
    def test_identity(self, s):
        assert edit_distance(s, s) == 0

    @given(bitstrings, bitstrings)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(bitstrings, bitstrings)
    def test_positivity(self, a, b):
        d = edit_distance(a, b)
        assert d >= 0
        assert (d == 0) == (a == b)

    @given(bitstrings, bitstrings, bitstrings)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(bitstrings, bitstrings)
    def test_bounded_by_longer_string(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(bitstrings, bitstrings)
    def test_at_least_length_difference(self, a, b):
        assert edit_distance(a, b) >= abs(len(a) - len(b))


class TestChunkRoundtrip:
    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=1, max_value=16))
    def test_pack_unpack_roundtrip(self, data, chunk_bits):
        chunks = pack_chunks(data, chunk_bits)
        assert unpack_chunks(chunks, len(data), chunk_bits) == data

    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=1, max_value=16))
    def test_chunks_in_range(self, data, chunk_bits):
        assert all(0 <= c < (1 << chunk_bits) for c in pack_chunks(data, chunk_bits))


class TestCacheInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_ways(self, addresses):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=64)
        for addr in addresses:
            cache.access(addr)
        for index in range(cache.sets):
            assert cache.occupancy(index) <= cache.ways

    @given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_immediate_rehit(self, addresses):
        cache = SetAssociativeCache(sets=8, ways=4, line_bytes=64)
        for addr in addresses:
            cache.access(addr)
            assert cache.probe(addr)

    @given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_stats_consistency(self, addresses):
        cache = SetAssociativeCache(sets=8, ways=4, line_bytes=64)
        for addr in addresses:
            cache.access(addr)
        stats = cache.stats
        assert stats.hits + stats.misses == len(addresses)
        resident = sum(cache.occupancy(i) for i in range(cache.sets))
        assert stats.misses == resident + stats.evictions


class TestDsbInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # thread
                st.integers(min_value=0, max_value=63),  # window slot
                st.booleans(),  # smt_active
            ),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=50)
    def test_ways_never_exceeded(self, operations):
        dsb = DecodedStreamBuffer(FrontendParams())
        for thread, slot, smt in operations:
            dsb.insert(thread, 0x400000 + slot * 32, 5, smt)
        for index in range(dsb.params.dsb_sets):
            used = sum(line.ways for line in dsb._sets[index].values())
            assert used <= dsb.params.dsb_ways

    @given(st.integers(min_value=0, max_value=2**16))
    def test_smt_fold_consistency(self, window_slot):
        """SMT index = single-thread index mod half the sets."""
        dsb = DecodedStreamBuffer(FrontendParams())
        addr = window_slot * 32
        single = dsb.effective_index(addr, smt_active=False)
        folded = dsb.effective_index(addr, smt_active=True)
        assert folded == single % (dsb.params.dsb_sets // 2)


class TestLayoutInvariants:
    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=1, max_value=16),
        st.booleans(),
    )
    @settings(max_examples=60)
    def test_chain_blocks_map_to_requested_set(self, dsb_set, count, misaligned):
        layout = BlockChainLayout()
        for block in layout.chain(dsb_set, count, misaligned=misaligned):
            assert layout.set_index(block.windows[0]) == dsb_set

    @given(st.integers(min_value=0, max_value=2**20))
    def test_standard_block_always_one_line(self, base_slot):
        block = standard_mix_block(base_slot * 32)
        assert block.fits_one_dsb_line()
        assert 1 <= len(block.windows) <= 2


class TestPortModelInvariants:
    kinds = st.sampled_from(
        [UopKind.ALU, UopKind.MOV, UopKind.BRANCH, UopKind.LOAD, UopKind.STORE_DATA]
    )

    @given(st.lists(kinds, min_size=1, max_size=24))
    @settings(max_examples=60)
    def test_pressure_at_least_uniform_bound(self, kinds):
        uops = [Uop(k) for k in kinds]
        pressure = PortModel().pressure(uops)
        assert pressure.cycles >= len(uops) / 8 - 1e-9

    @given(st.lists(kinds, min_size=1, max_size=24))
    @settings(max_examples=60)
    def test_pressure_monotone_in_uops(self, kinds):
        uops = [Uop(k) for k in kinds]
        more = uops + [Uop(UopKind.ALU)]
        assert PortModel().pressure(more).cycles >= PortModel().pressure(uops).cycles - 1e-9


class TestEngineDeterminism:
    @given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_run_loop_deterministic(self, blocks, iterations):
        from repro.frontend.engine import FrontendEngine
        from repro.isa.program import LoopProgram

        layout = BlockChainLayout()
        program = LoopProgram(layout.chain(3, blocks), iterations)
        a = FrontendEngine().run_loop(program, exact=True)
        b = FrontendEngine().run_loop(program, exact=True)
        assert a.cycles == b.cycles
        assert a.total_uops == b.total_uops == blocks * 5 * iterations
