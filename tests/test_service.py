"""Tests for the sweep service (``repro.service``).

The service's contract, in order of importance:

* **dedup** — submitting the same grid twice concurrently executes each
  unique point at most once; both jobs still get full, identical tables;
* **cache** — a cache-warm resubmit completes with zero executions;
* **cancellation** — a job cancelled mid-grid stops at a point boundary
  and releases its unshared pending points;
* **events** — every job narrates a complete, ordered JSONL stream:
  submitted, scheduled, per-point events, terminal job-done.

Everything here drives :class:`SweepService` in-process (no sockets);
the socket protocol has its own section at the bottom.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache, SerialExecutor
from repro.service import (
    Event,
    JobStatus,
    ServiceClient,
    SweepServer,
    SweepService,
    SweepSpec,
)
from repro.service.client import submit_and_stream
from repro.sweep import ParameterSweep


def run(coro):
    return asyncio.run(coro)


class CountingFactory:
    """Factory that counts real executions (and can be slowed down)."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.calls: list[dict] = []
        self.delay_s = delay_s

    def __call__(self, point) -> dict:
        self.calls.append(dict(point.values))
        if self.delay_s:
            time.sleep(self.delay_s)
        x = point["x"]
        return {"y": float(x * x), "seed_mod": float(point.seed % 7)}


def make_sweep(factory, xs=(1, 2, 3, 4), trials=1, base_seed=7) -> ParameterSweep:
    return ParameterSweep(factory, {"x": list(xs)}, trials=trials, base_seed=base_seed)


# ----------------------------------------------------------------------
# cross-job dedup
# ----------------------------------------------------------------------
class TestDedup:
    def test_concurrent_identical_grids_execute_each_point_once(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService(workers=2, batch_size=2) as service:
                job_a = service.submit(make_sweep(factory))
                job_b = service.submit(make_sweep(factory))
                await asyncio.gather(job_a.wait(), job_b.wait())
                return job_a, job_b, service.scheduler.executions

        job_a, job_b, executions = run(scenario())
        assert job_a.status is JobStatus.DONE
        assert job_b.status is JobStatus.DONE
        # The acceptance criterion: each unique point at most once.
        assert len(factory.calls) == 4
        assert executions == 4
        # Both jobs still see every point, with identical tables.
        assert job_a.result().rows() == job_b.result().rows()
        shares = [
            e for job in (job_a, job_b) for e in job.events
            if e.kind == "point-done" and e["shared"]
        ]
        assert len(shares) == 4  # one job computed, the other subscribed

    def test_overlapping_grids_share_only_the_overlap(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService(workers=2, batch_size=2) as service:
                job_a = service.submit(make_sweep(factory, xs=(1, 2, 3)))
                job_b = service.submit(make_sweep(factory, xs=(2, 3, 4)))
                await asyncio.gather(job_a.wait(), job_b.wait())
                return service.scheduler.executions

        executions = run(scenario())
        assert executions == 4  # union {1,2,3,4}, not 6
        assert len(factory.calls) == 4

    def test_duplicate_points_within_one_grid_execute_once(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                job = service.submit(make_sweep(factory, xs=(2, 2, 2)))
                await job.wait()
                return job

        job = run(scenario())
        assert job.status is JobStatus.DONE
        assert len(factory.calls) == 1
        assert len(job.result().results) == 3  # all indices resolved

    def test_different_seeds_do_not_dedup(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                job_a = service.submit(make_sweep(factory, base_seed=1))
                job_b = service.submit(make_sweep(factory, base_seed=2))
                await asyncio.gather(job_a.wait(), job_b.wait())

        run(scenario())
        assert len(factory.calls) == 8  # seeds differ: different points


# ----------------------------------------------------------------------
# cache integration
# ----------------------------------------------------------------------
class TestCache:
    def test_cache_warm_resubmit_zero_executions(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        factory = CountingFactory()

        async def first():
            async with SweepService(cache=cache) as service:
                job = service.submit(make_sweep(factory))
                await job.wait()
                return job.result().rows()

        cold_rows = run(first())
        assert len(factory.calls) == 4

        # A *fresh* service (empty in-memory memo) against the same
        # cache: every point is a disk hit, nothing executes.
        async def second():
            async with SweepService(cache=cache) as service:
                job = service.submit(make_sweep(factory))
                await job.wait()
                return job

        job = run(second())
        assert len(factory.calls) == 4  # unchanged: zero executions
        assert job.status is JobStatus.DONE
        assert job.result().rows() == cold_rows
        kinds = [e.kind for e in job.events]
        assert kinds.count("cache-hit") == 4
        assert kinds.count("point-done") == 0
        assert all(
            e["source"] == "disk" for e in job.events if e.kind == "cache-hit"
        )

    def test_same_service_resubmit_hits_memory(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                first = service.submit(make_sweep(factory))
                await first.wait()
                again = service.submit(make_sweep(factory))
                await again.wait()
                return again

        job = run(scenario())
        assert len(factory.calls) == 4
        sources = {e["source"] for e in job.events if e.kind == "cache-hit"}
        assert sources == {"memory"}

    def test_service_results_match_plain_sweep_run(self, tmp_path):
        """The service is an execution strategy, not a semantics change."""
        factory = CountingFactory()
        reference = make_sweep(factory).run(SerialExecutor())

        async def scenario():
            async with SweepService(batch_size=3) as service:
                job = service.submit(make_sweep(factory))
                await job.wait()
                return job.result()

        assert run(scenario()) == reference


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_mid_grid_stops_execution(self):
        factory = CountingFactory(delay_s=0.02)

        async def scenario():
            async with SweepService(batch_size=1) as service:
                job = service.submit(make_sweep(factory, xs=range(1, 21)))
                # Cancel as soon as the first point completes.
                while True:
                    event = await job.event_queue.get()
                    assert event is not None
                    if event.kind == "point-done":
                        break
                service.cancel(job.id)
                status = await job.wait()
                return job, status

        job, status = run(scenario())
        assert status is JobStatus.CANCELLED
        assert job.events[-1].kind == "job-done"
        assert job.events[-1]["status"] == "cancelled"
        # Far fewer than 20 points ran (only dispatched batches finish).
        assert 1 <= len(factory.calls) < 20
        with pytest.raises(ConfigurationError):
            job.result()

    def test_cancel_queued_job_never_runs(self):
        factory = CountingFactory(delay_s=0.02)

        async def scenario():
            async with SweepService(workers=1, batch_size=1) as service:
                running = service.submit(make_sweep(factory, xs=(1, 2, 3)))
                queued = service.submit(make_sweep(factory, xs=(7, 8, 9)))
                assert service.cancel(queued.id)
                await asyncio.gather(running.wait(), queued.wait())
                return running, queued

        running, queued = run(scenario())
        assert running.status is JobStatus.DONE
        assert queued.status is JobStatus.CANCELLED
        assert all(call["x"] < 7 for call in factory.calls)
        assert [e.kind for e in queued.events] == ["submitted", "job-done"]

    def test_cancelled_job_does_not_strand_shared_points(self):
        """A point shared with a live job survives the owner's cancellation."""
        factory = CountingFactory(delay_s=0.01)

        async def scenario():
            async with SweepService(workers=2, batch_size=1) as service:
                owner = service.submit(make_sweep(factory, xs=(1, 2, 3, 4)))
                rider = service.submit(make_sweep(factory, xs=(1, 2, 3, 4)))
                service.cancel(owner.id)
                await asyncio.gather(owner.wait(), rider.wait())
                return rider

        rider = run(scenario())
        assert rider.status is JobStatus.DONE
        assert len(rider.result().results) == 4

    def test_cancel_unknown_or_finished_job_is_refused(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                job = service.submit(make_sweep(factory))
                await job.wait()
                return service.cancel(job.id), service.cancel("job-999")

        assert run(scenario()) == (False, False)


# ----------------------------------------------------------------------
# event streams
# ----------------------------------------------------------------------
class TestEvents:
    def test_stream_is_ordered_and_complete(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                job = service.submit(make_sweep(factory, trials=2))
                await job.wait()
                return job

        job = run(scenario())
        kinds = [e.kind for e in job.events]
        assert kinds[0] == "submitted"
        assert kinds[1] == "scheduled"
        assert kinds[-1] == "job-done"
        per_point = [e for e in job.events if e.kind in ("point-done", "cache-hit")]
        assert len(per_point) == 8  # 4 coordinates x 2 trials, no gaps
        assert [e["done"] for e in per_point] == list(range(1, 9))
        assert {e["point"] for e in per_point} == set(range(8))
        seqs = [e["seq"] for e in job.events]
        assert seqs == sorted(seqs)
        done = job.events[-1]
        assert done["status"] == "ok"
        assert done["points"] == 8
        assert done["computed"] + done["shared"] + done["cache_hits"] == 8

    def test_events_round_trip_through_jsonl(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                job = service.submit(make_sweep(factory))
                await job.wait()
                return job

        job = run(scenario())
        for event in job.events:
            decoded = Event.from_json(event.to_json())
            assert decoded.kind == event.kind
            assert json.loads(event.to_json())["event"] == event.kind

    def test_service_wide_subscription_sees_all_jobs(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                feed = service.subscribe()
                job_a = service.submit(make_sweep(factory, xs=(1, 2)))
                job_b = service.submit(make_sweep(factory, xs=(3, 4)))
                await asyncio.gather(job_a.wait(), job_b.wait())
                seen = []
                while not feed.empty():
                    seen.append(feed.get_nowait())
                return {e["job"] for e in seen if e is not None}

        assert run(scenario()) == {"job-1", "job-2"}

    def test_tenant_scoped_subscription_filters_other_clients(self):
        factory = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                feed = service.subscribe(client="alice")
                job_a = service.submit(
                    make_sweep(factory, xs=(1, 2)), client="alice"
                )
                job_b = service.submit(
                    make_sweep(factory, xs=(3, 4)), client="bob"
                )
                await asyncio.gather(job_a.wait(), job_b.wait())
                seen = set()
                while not feed.empty():
                    event = feed.get_nowait()
                    if event is not None:
                        seen.add(event["job"])
                return job_a.id, seen

        job_a_id, seen = run(scenario())
        assert seen == {job_a_id}

    def test_priority_orders_job_starts(self):
        factory = CountingFactory(delay_s=0.005)

        async def scenario():
            service = SweepService(workers=1, batch_size=1)
            low = service.submit(make_sweep(factory, xs=(1,)), priority=0)
            high = service.submit(make_sweep(factory, xs=(2,)), priority=10)
            mid = service.submit(make_sweep(factory, xs=(3,)), priority=5)
            feed = service.subscribe()
            async with service:
                await asyncio.gather(low.wait(), high.wait(), mid.wait())
            order = []
            while not feed.empty():
                event = feed.get_nowait()
                if event is not None and event.kind == "scheduled":
                    order.append(event["job"])
            return low.id, mid.id, high.id, order

        low_id, mid_id, high_id, order = run(scenario())
        assert order == [high_id, mid_id, low_id]


# ----------------------------------------------------------------------
# failures
# ----------------------------------------------------------------------
class TestFailures:
    def test_factory_error_fails_job_and_service_survives(self):
        def bad(point):
            raise ValueError("boom at x=%s" % point["x"])

        good = CountingFactory()

        async def scenario():
            async with SweepService() as service:
                failed = service.submit(ParameterSweep(bad, {"x": [1, 2]}))
                await failed.wait()
                healthy = service.submit(make_sweep(good))
                await healthy.wait()
                return failed, healthy

        failed, healthy = run(scenario())
        assert failed.status is JobStatus.FAILED
        assert "boom" in failed.error
        kinds = [e.kind for e in failed.events]
        assert "error" in kinds and kinds[-1] == "job-done"
        assert failed.events[-1]["status"] == "error"
        assert healthy.status is JobStatus.DONE

    def test_inconsistent_metrics_fail_cleanly(self):
        def ragged(point):
            return {"a": 1.0} if point["x"] == 1 else {"b": 2.0}

        async def scenario():
            async with SweepService() as service:
                job = service.submit(ParameterSweep(ragged, {"x": [1, 2]}))
                await job.wait()
                return job

        job = run(scenario())
        assert job.status is JobStatus.FAILED
        assert "same metrics" in job.error


# ----------------------------------------------------------------------
# job GC (TTL retention of terminal jobs)
# ----------------------------------------------------------------------
class FakeClock:
    """Injectable monotonic clock the GC tests advance by hand."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestJobGc:
    def test_terminal_jobs_evicted_after_ttl(self):
        clock = FakeClock()
        factory = CountingFactory()

        async def scenario():
            async with SweepService(job_ttl_s=60.0, clock=clock) as service:
                job_a = service.submit(make_sweep(factory, xs=(1, 2)))
                await job_a.wait()
                assert job_a.id in service.jobs  # fresh terminal job kept
                clock.advance(61.0)
                evicted = service.gc()
                # The job object stays usable for its holder; only the
                # service's registry (and thus its event log) lets go.
                return job_a, evicted, dict(service.jobs)

        job_a, evicted, jobs = run(scenario())
        assert evicted == 1
        assert job_a.id not in jobs
        assert job_a.status is JobStatus.DONE
        assert job_a.result().rows()  # holder's handle still works

    def test_submit_triggers_gc_and_live_jobs_survive(self):
        clock = FakeClock()
        factory = CountingFactory()

        async def scenario():
            async with SweepService(job_ttl_s=60.0, clock=clock) as service:
                old = service.submit(make_sweep(factory, xs=(1,)))
                await old.wait()
                clock.advance(120.0)
                fresh = service.submit(make_sweep(factory, xs=(2,)))
                jobs_after_submit = set(service.jobs)
                await fresh.wait()
                return old, fresh, jobs_after_submit

        old, fresh, jobs_after_submit = run(scenario())
        # submit() itself GCed the expired job; the new job is live.
        assert old.id not in jobs_after_submit
        assert fresh.id in jobs_after_submit
        assert fresh.status is JobStatus.DONE

    def test_cancelled_and_failed_jobs_are_evicted_too(self):
        clock = FakeClock()

        def bad(point):
            raise ValueError("boom")

        async def scenario():
            async with SweepService(job_ttl_s=10.0, clock=clock) as service:
                failed = service.submit(ParameterSweep(bad, {"x": [1]}))
                await failed.wait()
                queued = service.submit(make_sweep(CountingFactory()))
                queued.cancel()
                await queued.wait()
                clock.advance(11.0)
                evicted = service.gc()
                return failed, queued, evicted, dict(service.jobs)

        failed, queued, evicted, jobs = run(scenario())
        assert failed.status is JobStatus.FAILED
        assert queued.status is JobStatus.CANCELLED
        assert evicted == 2
        assert not jobs

    def test_no_ttl_keeps_jobs_forever(self):
        clock = FakeClock()
        factory = CountingFactory()

        async def scenario():
            async with SweepService(clock=clock) as service:  # job_ttl_s=None
                job = service.submit(make_sweep(factory, xs=(1,)))
                await job.wait()
                clock.advance(10**9)
                evicted = service.gc()
                return job, evicted, dict(service.jobs)

        job, evicted, jobs = run(scenario())
        assert evicted == 0
        assert job.id in jobs

    def test_negative_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepService(job_ttl_s=-1.0)


# ----------------------------------------------------------------------
# the socket protocol (serve / submit)
# ----------------------------------------------------------------------
class TestSocketProtocol:
    def test_submit_streams_events_and_rows(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def scenario():
            service = SweepService(batch_size=4)
            server = SweepServer(service, sock)
            await server.start()
            try:
                client = ServiceClient(sock)
                pong = await client.ping()
                assert pong.kind == "pong"
                spec = SweepSpec(
                    grid={"d": [2, 4]}, channel="eviction", variant="fast", bits=8
                )
                events = [e async for e in client.submit(spec)]
            finally:
                await server.stop()
            return events

        events = run(scenario())
        kinds = [e.kind for e in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "job-done"
        done = events[-1]
        assert done["status"] == "ok"
        assert done["parameters"] == ["d"]
        assert done["metrics"] == ["kbps", "error"]
        assert [row["d"] for row in done["rows"]] == [2, 4]
        assert all(row["kbps_mean"] > 0 for row in done["rows"])

    def test_malformed_requests_get_error_events(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def scenario():
            server = SweepServer(SweepService(), sock)
            await server.start()
            try:
                reader, writer = await asyncio.open_unix_connection(str(sock))
                writer.write(b'{"op": "launch-missiles"}\n')
                await writer.drain()
                reply = Event.from_json((await reader.readline()).decode())
                writer.close()

                reader, writer = await asyncio.open_unix_connection(str(sock))
                writer.write(b'{"op": "submit", "spec": {"grid": {}}}\n')
                await writer.drain()
                bad_spec = Event.from_json((await reader.readline()).decode())
                writer.close()
            finally:
                await server.stop()
            return reply, bad_spec

        reply, bad_spec = run(scenario())
        assert reply.kind == "error" and "unknown op" in str(reply["message"])
        assert bad_spec.kind == "error"

    def test_client_without_server_fails_cleanly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no sweep service"):
            run(ServiceClient(tmp_path / "nope.sock").ping())

    def test_cli_submit_against_live_server(self, tmp_path, capsys):
        from repro.cli import main

        sock = tmp_path / "svc.sock"
        started = threading.Event()
        stop = threading.Event()

        def serve() -> None:
            async def body():
                server = SweepServer(SweepService(batch_size=4), sock)
                await server.start()
                started.set()
                try:
                    while not stop.is_set():
                        await asyncio.sleep(0.02)
                finally:
                    await server.stop()

            asyncio.run(body())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            assert started.wait(timeout=10)
            code = main(
                ["submit", "--socket", str(sock), "--param", "d=2,4",
                 "--bits", "8", "--channel", "eviction", "--variant", "fast"]
            )
        finally:
            stop.set()
            thread.join(timeout=10)
        assert code == 0
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.err.splitlines()]
        assert [e["event"] for e in events][-1] == "job-done"
        assert "kbps_mean" in captured.out  # rendered table on stdout

    def test_submit_and_stream_returns_terminal_event(self, tmp_path):
        sock = tmp_path / "svc.sock"
        started = threading.Event()
        stop = threading.Event()

        def serve() -> None:
            async def body():
                server = SweepServer(SweepService(), sock)
                await server.start()
                started.set()
                try:
                    while not stop.is_set():
                        await asyncio.sleep(0.02)
                finally:
                    await server.stop()

            asyncio.run(body())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            assert started.wait(timeout=10)
            import io

            err = io.StringIO()
            final = submit_and_stream(
                sock,
                SweepSpec(grid={"d": [2]}, variant="fast", bits=8),
                events_out=err,
            )
        finally:
            stop.set()
            thread.join(timeout=10)
        assert final.kind == "job-done" and final["status"] == "ok"
        assert '"event":"submitted"' in err.getvalue()


# ----------------------------------------------------------------------
# the serialisable spec
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_round_trips_through_json(self):
        spec = SweepSpec(
            grid={"d": [1, 2, 4], "M": [8]},
            machine="Gold 6226",
            channel="misalignment",
            variant="stealthy",
            bits=16,
            trials=2,
            base_seed=3,
            priority=7,
            label="fig11-slice",
        )
        assert SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_build_sweep_matches_cli_sweep_semantics(self):
        spec = SweepSpec(grid={"d": [2]}, variant="fast", bits=8)
        sweep = spec.build_sweep()
        points = sweep.points()
        assert len(points) == 1 and points[0]["d"] == 2
        metrics = sweep.factory(points[0])
        assert set(metrics) == {"kbps", "error"}

    def test_point_count_matches_expansion_without_building(self):
        spec = SweepSpec(grid={"d": [1, 2, 4], "M": [8, 16]}, trials=3)
        assert spec.point_count() == 18
        assert spec.point_count() == len(spec.build_sweep().points())

    def test_rejects_unknown_channel_and_fields(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={"d": [1]}, channel="tlb")
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"grid": {"d": [1]}, "warp": 9})
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"channel": "eviction"})


class TestWatchOp:
    """The ``watch`` op: service-wide event streaming over the socket."""

    def test_two_concurrent_watchers_see_the_same_stream(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def watcher(client):
            seen = []
            async for event in client.watch():
                seen.append(event)
                if event.kind == "job-done":
                    break
            return seen

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock)
            await server.start()
            try:
                client = ServiceClient(sock)
                first = asyncio.ensure_future(watcher(client))
                second = asyncio.ensure_future(watcher(client))
                # Let both watchers finish subscribing before submitting,
                # otherwise one may miss the leading "submitted" event.
                while service.subscriber_count < 2:
                    await asyncio.sleep(0.01)
                job = service.submit(make_sweep(CountingFactory(), xs=(1, 2)))
                await job.wait()
                streams = await asyncio.gather(first, second)
            finally:
                await server.stop()
            return streams

        first, second = run(scenario())
        for stream in (first, second):
            assert stream[0].kind == "watching"
            kinds = [e.kind for e in stream[1:]]
            assert kinds[0] == "submitted"
            assert kinds[-1] == "job-done"
            assert "point-done" in kinds
        # Both watchers observed the identical sequence (the "watching"
        # ack differs: it snapshots the watcher count at subscribe time).
        assert [e.to_json() for e in first[1:]] == [e.to_json() for e in second[1:]]

    def test_kinds_filter_limits_the_stream(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock)
            await server.start()
            try:
                client = ServiceClient(sock)
                seen = []

                async def watcher():
                    async for event in client.watch(kinds=["job-done"]):
                        seen.append(event)
                        if event.kind == "job-done":
                            break

                task = asyncio.ensure_future(watcher())
                while service.subscriber_count < 1:
                    await asyncio.sleep(0.01)
                job = service.submit(make_sweep(CountingFactory(), xs=(1,)))
                await job.wait()
                await asyncio.wait_for(task, 10)
            finally:
                await server.stop()
            return seen

        seen = run(scenario())
        assert [e.kind for e in seen] == ["watching", "job-done"]

    def test_disconnected_watcher_is_unsubscribed(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock)
            await server.start()
            try:
                client = ServiceClient(sock)

                async def hang_up_after_first_event():
                    async for event in client.watch():
                        if event.kind != "watching":
                            break  # closes the connection

                task = asyncio.ensure_future(hang_up_after_first_event())
                while service.subscriber_count < 1:
                    await asyncio.sleep(0.01)
                job = service.submit(make_sweep(CountingFactory(), xs=(1,)))
                await job.wait()
                await asyncio.wait_for(task, 10)
                # The server only notices the hang-up on its next send
                # attempt; drive one more event through and the dead
                # queue must be reaped.
                job2 = service.submit(make_sweep(CountingFactory(), xs=(2,)))
                await job2.wait()
                for _ in range(200):
                    if service.subscriber_count == 0:
                        break
                    await asyncio.sleep(0.01)
                return service.subscriber_count
            finally:
                await server.stop()

        assert run(scenario()) == 0

    def test_watch_ends_cleanly_on_server_shutdown(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock)
            await server.start()
            client = ServiceClient(sock)
            seen = []

            async def watcher():
                async for event in client.watch():
                    seen.append(event)
                # Iterator ends instead of raising when the server goes.

            task = asyncio.ensure_future(watcher())
            while service.subscriber_count < 1:
                await asyncio.sleep(0.01)
            await server.stop()
            await asyncio.wait_for(task, 10)
            return seen

        seen = run(scenario())
        assert [e.kind for e in seen] == ["watching"]

    def test_watch_over_tcp_listener(self, tmp_path):
        sock = tmp_path / "svc.sock"

        async def scenario():
            service = SweepService()
            server = SweepServer(service, sock, tcp="tcp://127.0.0.1:0")
            await server.start()
            try:
                assert server.tcp_address is not None
                client = ServiceClient(str(server.tcp_address))
                pong = await client.ping()
                assert pong.kind == "pong"
                assert pong["watchers"] == 0
                seen = []

                async def watcher():
                    async for event in client.watch():
                        seen.append(event)
                        if event.kind == "job-done":
                            break

                task = asyncio.ensure_future(watcher())
                while service.subscriber_count < 1:
                    await asyncio.sleep(0.01)
                job = service.submit(make_sweep(CountingFactory(), xs=(1, 2)))
                await job.wait()
                await asyncio.wait_for(task, 10)
            finally:
                await server.stop()
            return seen

        seen = run(scenario())
        kinds = [e.kind for e in seen]
        assert kinds[0] == "watching"
        assert kinds[-1] == "job-done"
