"""Unit tests for the individual Spectre channel backends."""

from __future__ import annotations

import pytest

from repro.errors import SpectreError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226
from repro.spectre.channels import (
    FrontendDsbChannel,
    L1dFlushReload,
    L1dLruChannel,
    L1iFlushReload,
    L1iPrimeProbe,
    MemFlushReload,
)


def machine(seed: int = 31) -> Machine:
    return Machine(GOLD_6226, seed=seed)


class TestProbeAddressing:
    def test_probe_values_map_to_distinct_l1_sets(self):
        channel = MemFlushReload(machine())
        sets = {
            channel.hierarchy.l1.set_index(channel.probe_data_addr(v))
            for v in range(32)
        }
        assert len(sets) == 32

    def test_probe_values_map_to_distinct_pages(self):
        channel = MemFlushReload(machine())
        pages = {channel.probe_data_addr(v) // 4096 for v in range(32)}
        assert len(pages) == 32

    def test_eviction_addrs_share_probe_set(self):
        channel = L1dFlushReload(machine())
        l1 = channel.hierarchy.l1
        for value in (0, 7, 31):
            probe_set = l1.set_index(channel.probe_data_addr(value))
            for way in range(channel.EVICTION_WAYS):
                assert l1.set_index(channel._eviction_addr(value, way)) == probe_set

    def test_code_and_data_probes_disjoint(self):
        channel = L1iFlushReload(machine())
        data = {channel.probe_data_addr(v) for v in range(32)}
        code = {channel.probe_code_addr(v) for v in range(32)}
        assert not data & code


class TestPerChannelRoundtrip:
    @pytest.mark.parametrize(
        "cls", [MemFlushReload, L1dFlushReload, L1dLruChannel, L1iFlushReload,
                FrontendDsbChannel]
    )
    def test_prepare_touch_recover(self, cls):
        channel = cls(machine())
        for value in (0, 5, channel.n_values - 1):
            channel.prepare()
            channel.touch(value, transient=True)
            assert channel.recover() == value

    def test_prime_probe_needs_full_sets(self):
        """P+P only signals when prime + ambient occupancy fills the set;
        its default PRIME_WAYS=6 assumes background code lines (the
        attack context).  Standalone, priming all 8 ways restores the
        overflow-by-one signal."""
        silent = L1iPrimeProbe(machine())
        silent.prepare()
        silent.touch(5, transient=True)
        assert silent.recover() == 0  # no evictions, no information

        full = L1iPrimeProbe(machine())
        full.PRIME_WAYS = 8  # instance override
        for value in (0, 5, 31):
            full.prepare()
            full.touch(value, transient=True)
            assert full.recover() == value

    def test_value_range_check(self):
        channel = L1dLruChannel(machine())
        with pytest.raises(SpectreError):
            channel.touch(32, transient=True)
        mem = MemFlushReload(machine())
        mem.touch(255, transient=True)  # byte chunks allow 0..255
        with pytest.raises(SpectreError):
            mem.touch(256, transient=True)


class TestCycleAccounting:
    @pytest.mark.parametrize(
        "cls", [MemFlushReload, L1dFlushReload, L1iFlushReload, FrontendDsbChannel]
    )
    def test_operations_accumulate_cycles(self, cls):
        channel = cls(machine())
        start = channel.cycles
        channel.prepare()
        after_prepare = channel.cycles
        channel.touch(3, transient=True)
        channel.recover()
        channel.background()
        assert after_prepare > start
        assert channel.cycles > after_prepare

    def test_background_accounts_both_sides(self):
        channel = MemFlushReload(machine())
        before = channel.cycles
        channel.background()
        # 220 data + 650 ifetch accesses, each at least 1 cycle.
        assert channel.cycles - before >= 870


class TestMissCounts:
    def test_delta(self):
        channel = L1iFlushReload(machine())
        channel.background(2)
        snapshot = channel.miss_counts()
        channel.background(1)
        delta = channel.miss_counts().delta(snapshot)
        assert delta.accesses == 870  # one background call

    def test_miss_rate_zero_denominator(self):
        from repro.spectre.channels import MissCounts

        assert MissCounts(accesses=0, misses=0).miss_rate == 0.0

    def test_frontend_channel_includes_machine_l1i(self):
        mach = machine()
        channel = FrontendDsbChannel(mach)
        before = channel.miss_counts()
        channel.prepare()  # runs on the machine core -> its L1I counts
        after = channel.miss_counts()
        assert after.accesses > before.accesses


class TestLruChannelMechanics:
    def test_touched_way_survives_conflict(self):
        channel = L1dLruChannel(machine())
        channel.prepare()
        channel.touch(9, transient=True)
        recovered = channel.recover()
        assert recovered == 9
        # In the touched set, way 0 survived (it was MRU at insert time).
        assert channel.hierarchy.l1.probe(channel._primed_addr(9, 0))
