"""Tests for the ``repro.lint`` static-analysis framework.

Structure mirrors the framework:

* fixtures — tiny synthetic ``src/repro/...`` trees seeded with one
  violation each, so every rule family is shown both *catching* its
  target and *staying quiet* on the fixed version;
* framework — suppressions, baseline, severities, reporters, exit
  codes;
* fidelity — the manifest check against the real tree, including an
  injected constant-drift (a manifest that disagrees with the code must
  fail, which is exactly how real drift in the other direction fails);
* repo — the tree itself lints clean through the public CLI, which is
  the acceptance criterion CI enforces.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.lint import (
    Baseline,
    LintConfig,
    Severity,
    all_rules,
    default_config,
    run_lint,
)
from repro.lint.manifest import CONSTANTS, DOCS, ConstantSpec, DocSpec
from repro.lint.rules.concurrency import AsyncBlockingRule
from repro.lint.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.fidelity import ConstantDriftRule, DocDriftRule
from repro.lint.rules.layering import ImportDagRule

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint_tree(root: Path, rules, **kwargs):
    # Every configured include root must exist; fixture trees usually
    # only populate src/repro, so materialise the rest empty.
    for include in default_config().include:
        (root / include).mkdir(parents=True, exist_ok=True)
    return run_lint(root, rules=rules, **kwargs)


def active_rules(report) -> list[str]:
    return [v.rule for v in report.active]


# ----------------------------------------------------------------------
# determinism family
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_catches_stdlib_and_numpy_global_rng(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/channels/noisy.py",
            """
            import random
            import numpy as np


            def jitter():
                np.random.seed(0)
                return random.random() + np.random.rand()
            """,
        )
        report = lint_tree(tmp_path, [UnseededRandomRule])
        assert active_rules(report) == ["det-unseeded-random"] * 3
        assert report.exit_code() == 1

    def test_seeded_generators_pass(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/channels/clean.py",
            """
            import random

            import numpy as np


            def jitter(seed):
                rng = np.random.default_rng(seed)
                legacy = random.Random(seed)
                return rng.normal() + legacy.gauss(0, 1)
            """,
        )
        report = lint_tree(tmp_path, [UnseededRandomRule])
        assert report.active == []
        assert report.exit_code() == 0


class TestWallClock:
    def test_catches_time_os_entropy_and_id_in_sim_packages(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/drift.py",
            """
            import os
            import time


            def sample(obj):
                return time.perf_counter() + len(os.urandom(4)) + id(obj)
            """,
        )
        report = lint_tree(tmp_path, [WallClockRule])
        assert active_rules(report) == ["det-wall-clock"] * 3

    def test_same_calls_allowed_outside_sim_packages(self, tmp_path):
        # exec/ times real executions on purpose; the rule is scoped.
        write_module(
            tmp_path,
            "src/repro/exec/timing.py",
            """
            import time


            def stamp():
                return time.perf_counter()
            """,
        )
        report = lint_tree(tmp_path, [WallClockRule])
        assert report.active == []


class TestSetIteration:
    def test_catches_set_loop_feeding_returned_list(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/frontend/order.py",
            """
            def windows(tags):
                seen = set(tags)
                out = []
                for tag in seen:
                    out.append(tag)
                return out
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert active_rules(report) == ["det-set-iteration"]

    def test_catches_return_list_of_set(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/frontend/order2.py",
            """
            def windows(tags):
                return list({t for t in tags})
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert active_rules(report) == ["det-set-iteration"]

    def test_sorted_iteration_and_membership_pass(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/frontend/order_ok.py",
            """
            def windows(tags):
                seen = set(tags)
                out = []
                for tag in sorted(seen):
                    out.append(tag)
                total = 0
                for tag in tags:        # not a set expression
                    if tag in seen:     # membership is order-free
                        total += 1
                out.append(total)
                return out
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert report.active == []

    def test_dataflow_tracks_set_returning_function(self, tmp_path):
        # The set is built behind a helper: the module-level dataflow
        # pass must prove gather() returns a set and flag both the loop
        # over its call and the local assigned from it.
        write_module(
            tmp_path,
            "src/repro/frontend/flow.py",
            """
            def gather(tags):
                return {t.strip() for t in tags}


            def windows(tags):
                out = []
                for tag in gather(tags):
                    out.append(tag)
                return out


            def labels(tags):
                found = gather(tags)
                return list(found)
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert active_rules(report) == ["det-set-iteration"] * 2

    def test_dataflow_resolves_chains_out_of_order(self, tmp_path):
        # a() -> b() -> set: the fixed point must converge even though
        # the caller is defined before the set-building callee.
        write_module(
            tmp_path,
            "src/repro/frontend/chain.py",
            """
            def outer(tags):
                return inner(tags)


            def inner(tags):
                return frozenset(tags)


            def windows(tags):
                return list(outer(tags))
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert active_rules(report) == ["det-set-iteration"]

    def test_dataflow_tracks_set_annotated_parameter(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/frontend/params.py",
            """
            def windows(tags: set[str]):
                out = []
                for tag in tags:
                    out.append(tag)
                return out
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert active_rules(report) == ["det-set-iteration"]

    def test_dataflow_stays_quiet_on_sorted_helpers(self, tmp_path):
        # A helper that sorts before returning is not a set returner,
        # and sorting a set-returning call clears the violation.
        write_module(
            tmp_path,
            "src/repro/frontend/flow_ok.py",
            """
            def gather(tags):
                return {t.strip() for t in tags}


            def ordered(tags):
                return sorted(gather(tags))


            def windows(tags):
                out = []
                for tag in ordered(tags):
                    out.append(tag)
                for tag in sorted(gather(tags)):
                    out.append(tag)
                return out
            """,
        )
        report = lint_tree(tmp_path, [SetIterationRule])
        assert report.active == []


# ----------------------------------------------------------------------
# layering family
# ----------------------------------------------------------------------
class TestLayering:
    def test_exec_must_not_import_service(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/exec/backchannel.py",
            """
            from repro.service.jobs import Job


            def leak():
                return Job
            """,
        )
        report = lint_tree(tmp_path, [ImportDagRule])
        assert active_rules(report) == ["layer-import-dag"]
        assert "'exec' must not import 'service'" in report.active[0].message

    def test_nothing_imports_cli(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/machine/oops.py",
            "from repro.cli import main\n",
        )
        report = lint_tree(tmp_path, [ImportDagRule])
        assert active_rules(report) == ["layer-import-dag"]
        assert "'machine' must not import 'cli'" in report.active[0].message

    def test_frontend_is_a_leaf(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/frontend/upward.py",
            "from repro.machine.specs import GOLD_6226\n",
        )
        report = lint_tree(tmp_path, [ImportDagRule])
        assert active_rules(report) == ["layer-import-dag"]

    def test_type_checking_imports_are_exempt(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/analysis/typed.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:  # pragma: no cover
                from repro.channels.base import TransmissionResult


            def describe(result: "TransmissionResult") -> str:
                return str(result)
            """,
        )
        report = lint_tree(tmp_path, [ImportDagRule])
        assert report.active == []

    def test_unknown_unit_must_be_added_to_the_table(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/mystery/mod.py",
            "from repro.machine.specs import GOLD_6226\n",
        )
        report = lint_tree(tmp_path, [ImportDagRule])
        assert active_rules(report) == ["layer-import-dag"]
        assert "not in the layering table" in report.active[0].message


# ----------------------------------------------------------------------
# concurrency family
# ----------------------------------------------------------------------
class TestAsyncBlocking:
    def test_catches_sleep_file_io_and_executor_compute(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/stall.py",
            """
            import time


            async def worker(executor, points, factory, path):
                time.sleep(0.1)
                data = path.read_text()
                return executor.compute(points, factory), data
            """,
        )
        report = lint_tree(tmp_path, [AsyncBlockingRule])
        assert active_rules(report) == ["async-blocking"] * 3

    def test_to_thread_worker_bodies_are_exempt(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/ok.py",
            """
            import asyncio


            async def worker(executor, points, factory):
                def run_batch():  # executes in a worker thread
                    return executor.compute(points, factory)

                return await asyncio.to_thread(run_batch)
            """,
        )
        report = lint_tree(tmp_path, [AsyncBlockingRule])
        assert report.active == []

    def test_sync_defs_outside_async_are_exempt(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/sync.py",
            """
            import time


            def warmup():
                time.sleep(0.01)
            """,
        )
        report = lint_tree(tmp_path, [AsyncBlockingRule])
        assert report.active == []


# ----------------------------------------------------------------------
# paper-fidelity family
# ----------------------------------------------------------------------
class DriftedConstantRule(ConstantDriftRule):
    """The real rule with one manifest entry that disagrees with the
    code — equivalent to the code having drifted from the manifest."""

    manifest = (
        ConstantSpec(
            "dsb.sets",
            "src/repro/frontend/params.py",
            "FrontendParams.dsb_sets",
            33,  # injected drift (paper value is 32)
            "injected drift for the test",
        ),
    )


class RenamedConstantRule(ConstantDriftRule):
    manifest = (
        ConstantSpec(
            "dsb.sets",
            "src/repro/frontend/params.py",
            "FrontendParams.dsb_sets_renamed",
            32,
            "symbol no longer exists",
        ),
    )


class TestConstantDrift:
    def test_real_tree_matches_the_real_manifest(self):
        report = run_lint(REPO_ROOT, rules=[ConstantDriftRule])
        assert report.active == []

    def test_injected_drift_is_caught(self):
        report = run_lint(REPO_ROOT, rules=[DriftedConstantRule])
        assert active_rules(report) == ["fidelity-constant-drift"]
        message = report.active[0].message
        assert "dsb.sets" in message and "33" in message and "32" in message
        assert report.exit_code() == 1

    def test_missing_symbol_is_drift_too(self):
        report = run_lint(REPO_ROOT, rules=[RenamedConstantRule])
        assert active_rules(report) == ["fidelity-constant-drift"]
        assert "not found" in report.active[0].message

    def test_manifest_covers_the_headline_sdm_figures(self):
        by_name = {spec.name: spec.expected for spec in CONSTANTS}
        assert by_name["dsb.sets"] == 32
        assert by_name["dsb.ways"] == 8
        assert by_name["dsb.line_uops"] == 6
        assert by_name["lsd.capacity_uops"] == 64
        assert by_name["mite.fetch_bytes_per_cycle"] == 16
        # All four Table I machines are pinned.
        for machine in ("gold6226", "e2174g", "e2286g", "e2288g"):
            assert f"{machine}.frequency_ghz" in by_name


class DriftedDocRule(DocDriftRule):
    manifest = (
        DocSpec(
            "docs.dsb_geometry",
            "docs/model.md",
            "48 sets x 12 ways",  # nothing documents this geometry
            "injected doc drift",
        ),
    )


class TestDocDrift:
    def test_real_docs_quote_the_manifest_phrases(self):
        report = run_lint(REPO_ROOT, rules=[DocDriftRule])
        assert report.active == []
        assert {spec.path for spec in DOCS} >= {"docs/model.md", "README.md"}

    def test_missing_phrase_is_caught(self):
        report = run_lint(REPO_ROOT, rules=[DriftedDocRule])
        assert active_rules(report) == ["fidelity-doc-drift"]


# ----------------------------------------------------------------------
# framework: suppressions, baseline, severities, reporters, exit codes
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_line_suppression_silences_one_rule_on_one_line(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/supp.py",
            """
            import time


            def a():
                return time.perf_counter()  # repro: lint-disable=det-wall-clock


            def b():
                return time.perf_counter()
            """,
        )
        report = lint_tree(tmp_path, [WallClockRule])
        assert len(report.active) == 1
        assert report.summary()["suppressed"] == 1
        # The surviving violation is the unsuppressed one in b().
        assert report.active[0].line > 5

    def test_file_suppression_silences_the_whole_file(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/suppfile.py",
            """
            # repro: lint-disable-file=det-wall-clock
            import time


            def a():
                return time.perf_counter()
            """,
        )
        report = lint_tree(tmp_path, [WallClockRule])
        assert report.active == []
        assert report.summary()["suppressed"] == 1

    def test_suppressing_one_rule_keeps_others_active(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/mixed.py",
            """
            import random
            import time


            def a():
                # both rules fire on the next line; only one is disabled
                return time.perf_counter() + random.random()  # repro: lint-disable=det-wall-clock
            """,
        )
        report = lint_tree(tmp_path, [WallClockRule, UnseededRandomRule])
        assert active_rules(report) == ["det-unseeded-random"]


class TestBaseline:
    def _tree_with_violation(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/base.py",
            """
            import time


            def a():
                return time.perf_counter()
            """,
        )

    def test_baselined_violations_do_not_fail(self, tmp_path):
        self._tree_with_violation(tmp_path)
        report = lint_tree(tmp_path, [WallClockRule])
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, report.active)

        baseline = Baseline.load(baseline_path)
        rerun = lint_tree(tmp_path, [WallClockRule], baseline=baseline)
        assert rerun.active == []
        assert rerun.summary()["baselined"] == 1
        assert rerun.exit_code() == 0

    def test_new_violations_still_fail_with_a_baseline(self, tmp_path):
        self._tree_with_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, lint_tree(tmp_path, [WallClockRule]).active)
        write_module(
            tmp_path,
            "src/repro/measure/fresh.py",
            """
            import os


            def b():
                return os.urandom(1)
            """,
        )
        rerun = lint_tree(
            tmp_path, [WallClockRule], baseline=Baseline.load(baseline_path)
        )
        assert len(rerun.active) == 1
        assert rerun.active[0].path.endswith("fresh.py")
        assert rerun.exit_code() == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.fingerprints == frozenset()

    def test_corrupt_baseline_is_a_configuration_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            Baseline.load(bad)

    def test_fingerprint_survives_line_moves(self, tmp_path):
        self._tree_with_violation(tmp_path)
        first = lint_tree(tmp_path, [WallClockRule]).active[0]
        # Insert lines above the violation: same finding, new line number.
        path = tmp_path / "src/repro/measure/base.py"
        path.write_text("# a new leading comment\n\n" + path.read_text())
        second = lint_tree(tmp_path, [WallClockRule]).active[0]
        assert second.line != first.line
        assert second.fingerprint == first.fingerprint


class TestSeverityAndExitCodes:
    def test_severity_override_demotes_to_warning(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/warnonly.py",
            """
            import time


            def a():
                return time.perf_counter()
            """,
        )
        config = LintConfig(
            severity_overrides={"det-wall-clock": Severity.WARNING}
        )
        report = lint_tree(tmp_path, [WallClockRule], config=config)
        assert report.summary()["warnings"] == 1
        assert report.exit_code() == 0  # warnings don't fail...
        strict = lint_tree(
            tmp_path, [WallClockRule], config=config, strict=True
        )
        assert strict.exit_code() == 1  # ...unless --strict

    def test_disabled_rule_is_skipped(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/measure/skip.py",
            """
            import time


            def a():
                return time.perf_counter()
            """,
        )
        config = LintConfig(disabled_rules=("det-wall-clock",))
        report = lint_tree(tmp_path, [WallClockRule], config=config)
        assert report.active == []

    def test_syntax_error_fails_the_run(self, tmp_path):
        write_module(tmp_path, "src/repro/measure/broken.py", "def oops(:\n")
        report = lint_tree(tmp_path, [WallClockRule])
        assert report.parse_errors
        assert report.exit_code() == 1


# ----------------------------------------------------------------------
# CLI and whole-repo acceptance
# ----------------------------------------------------------------------
class TestCli:
    def test_repo_lints_clean_with_empty_baseline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        empty_baseline = tmp_path / "empty-baseline.json"  # does not exist
        assert main(["lint", "--baseline", str(empty_baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_format_carries_summary_and_findings(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["files"] > 100
        assert isinstance(payload["findings"], list)

    def test_list_rules_names_every_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("determinism", "layering", "concurrency", "fidelity"):
            assert family in out
        for rule_cls in all_rules():
            assert rule_cls.name in out

    def test_lint_failure_exit_code_through_cli(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        write_module(
            tmp_path,
            "src/repro/measure/cli_bad.py",
            """
            import time


            def a():
                return time.perf_counter()
            """,
        )
        assert main(["lint", str(tmp_path / "src/repro")]) == 1
        assert "det-wall-clock" in capsys.readouterr().out

    def test_write_baseline_roundtrip_through_cli(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        write_module(
            tmp_path,
            "src/repro/measure/cli_base.py",
            """
            import os


            def a():
                return os.urandom(2)
            """,
        )
        fixture = str(tmp_path / "src/repro")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", fixture, "--baseline", baseline,
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", fixture, "--baseline", baseline]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_write_baseline_requires_baseline_path(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--write-baseline"]) == 1
        assert "requires --baseline" in capsys.readouterr().err


class TestRepoIsClean:
    """The tree's own hygiene, enforced the same way CI enforces it."""

    def test_full_run_all_rules_zero_active_violations(self):
        report = run_lint(REPO_ROOT)
        assert report.parse_errors == []
        assert [v.as_dict() for v in report.active] == []
        assert report.exit_code() == 0

    def test_every_rule_family_is_registered(self):
        families = {rule_cls.family for rule_cls in all_rules()}
        assert families == {
            "determinism",
            "layering",
            "concurrency",
            "fidelity",
            "protocol",
            "races",
        }

    def test_suppression_inventory_is_audited(self):
        """Every lint-disable marker in the tree is individually accounted
        for.  New exemptions must be argued into this list, not sprayed as
        blanket ``lint-disable-file`` pragmas — in particular the
        deterministic simulation units (the vectorized frontend backend
        among them) must stay suppression-free and satisfy the rules for
        real."""
        from repro.lint.core import _SUPPRESS_FILE, _SUPPRESS_LINE

        inventory = set()
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            for match in _SUPPRESS_FILE.finditer(path.read_text()):
                inventory.add((rel, "file", match.group(1)))
            for match in _SUPPRESS_LINE.finditer(path.read_text()):
                inventory.add((rel, "line", match.group(1)))
        assert inventory == {
            # The host-clock shim *is* the wall-clock boundary.
            ("src/repro/obs/clock.py", "file", "det-wall-clock"),
            # Draining a future set: order is irrelevant by construction.
            ("src/repro/lint/core.py", "line", "det-set-iteration"),
        }
        suppressed_files = {rel for rel, _, _ in inventory}
        for unit in default_config().deterministic_units:
            unit_dir = f"src/repro/{unit}/"
            offenders = {
                rel
                for rel in suppressed_files
                if rel.startswith(unit_dir) and "obs/clock" not in rel
            }
            assert offenders == set(), offenders
