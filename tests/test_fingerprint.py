"""Tests for microcode-patch fingerprinting (Section IX)."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.fingerprint.detector import LsdFingerprint
from repro.fingerprint.patches import PATCH1, PATCH2, apply_patch
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G, XEON_E2288G


class TestPatches:
    def test_patch_metadata(self):
        assert PATCH1.lsd_enabled
        assert not PATCH2.lsd_enabled
        assert "CVE-2021-24489" in PATCH2.mitigated_cves
        assert PATCH1.version.startswith("3.20180312")
        assert PATCH2.version.startswith("3.20210608")

    def test_apply_patch_toggles_lsd(self):
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH2)
        assert not machine.core.lsd_enabled
        apply_patch(machine, PATCH1)
        assert machine.core.lsd_enabled


class TestDetection:
    def test_detects_patch1(self):
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH1)
        result = LsdFingerprint().detect(machine)
        assert result.lsd_enabled
        assert result.timing_verdict
        assert result.matching_patch((PATCH1, PATCH2)) is PATCH1

    def test_detects_patch2(self):
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH2)
        result = LsdFingerprint().detect(machine)
        assert not result.lsd_enabled
        assert result.matching_patch((PATCH1, PATCH2)) is PATCH2

    def test_timing_ratios_well_separated(self):
        """Figure 13: the two patch states are clearly distinguishable."""
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH1)
        with_lsd = LsdFingerprint().read(machine).timing_ratio
        apply_patch(machine, PATCH2)
        without_lsd = LsdFingerprint().read(machine).timing_ratio
        assert with_lsd > without_lsd + 0.2

    def test_power_less_reliable_than_timing(self):
        """The paper's observation: timing separates the patches more
        than the RAPL power ratio does."""
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH1)
        on = LsdFingerprint().read(machine)
        apply_patch(machine, PATCH2)
        off = LsdFingerprint().read(machine)
        timing_gap = on.timing_ratio - off.timing_ratio
        power_gap = on.power_ratio - off.power_ratio
        assert timing_gap > power_gap

    def test_detects_native_lsd_machines(self):
        """The probe also distinguishes Table I machines as shipped."""
        fp = LsdFingerprint()
        assert not fp.detect(Machine(XEON_E2174G, seed=71)).lsd_enabled
        assert fp.detect(Machine(XEON_E2288G, seed=71)).lsd_enabled

    def test_repeated_detection_stable(self):
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH1)
        fp = LsdFingerprint()
        verdicts = [fp.detect(machine).lsd_enabled for _ in range(5)]
        assert all(verdicts)

    def test_no_matching_patch_raises(self):
        machine = Machine(GOLD_6226, seed=71)
        apply_patch(machine, PATCH1)
        result = LsdFingerprint().detect(machine)
        with pytest.raises(MeasurementError):
            result.matching_patch((PATCH2,))

    def test_param_validation(self):
        with pytest.raises(MeasurementError):
            LsdFingerprint(iterations=0)
        with pytest.raises(MeasurementError):
            LsdFingerprint(samples=0)
