"""Tests for machine specs (Table I), cores, and the Machine facade."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.isa.program import LoopProgram
from repro.machine.core import Core
from repro.machine.machine import Machine
from repro.machine.specs import (
    ALL_SPECS,
    GOLD_6226,
    SGX_SPECS,
    SMT_SPECS,
    XEON_E2174G,
    XEON_E2286G,
    XEON_E2288G,
    MachineSpec,
    spec_by_name,
)


class TestTable1Specs:
    def test_four_machines(self):
        assert len(ALL_SPECS) == 4

    def test_gold_6226(self):
        assert GOLD_6226.microarchitecture == "Cascade Lake"
        assert GOLD_6226.cores == 12
        assert GOLD_6226.threads == 24
        assert GOLD_6226.frequency_ghz == 2.7
        assert GOLD_6226.lsd_enabled
        assert GOLD_6226.smt
        assert not GOLD_6226.sgx

    def test_lsd_disabled_machines(self):
        assert not XEON_E2174G.lsd_enabled
        assert not XEON_E2286G.lsd_enabled

    def test_azure_e2288g_no_smt(self):
        assert not XEON_E2288G.smt
        assert XEON_E2288G.threads == XEON_E2288G.cores
        assert XEON_E2288G.lsd_enabled

    def test_sgx_machines(self):
        assert SGX_SPECS == (XEON_E2174G, XEON_E2286G, XEON_E2288G)
        assert GOLD_6226 not in SGX_SPECS

    def test_smt_machines_exclude_azure(self):
        assert XEON_E2288G not in SMT_SPECS

    def test_shared_frontend_geometry(self):
        for spec in ALL_SPECS:
            assert spec.dsb_sets == 32
            assert spec.dsb_ways == 8
            assert spec.l1i_sets == 64

    def test_cycles_to_seconds(self):
        assert GOLD_6226.cycles_to_seconds(2.7e9) == pytest.approx(1.0)

    def test_with_lsd_toggle(self):
        off = GOLD_6226.with_lsd(False)
        assert not off.lsd_enabled
        assert off.with_lsd(True).lsd_entries == 64

    def test_spec_by_name(self):
        assert spec_by_name("gold 6226") is GOLD_6226
        assert spec_by_name("E-2174G") is XEON_E2174G
        assert spec_by_name("e_2288g") is XEON_E2288G
        with pytest.raises(ConfigurationError):
            spec_by_name("i7-9700K")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", "x", cores=0, threads=0, frequency_ghz=1,
                        lsd_entries=0, smt=False, sgx=False)
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", "x", cores=4, threads=6, frequency_ghz=1,
                        lsd_entries=0, smt=True, sgx=False)


class TestCore:
    def test_thread_count_follows_smt(self):
        assert Core(GOLD_6226).n_threads == 2
        assert Core(XEON_E2288G).n_threads == 1

    def test_smt_rejected_on_azure(self):
        core = Core(XEON_E2288G)
        layout = Machine(XEON_E2288G).layout()
        program = LoopProgram(layout.chain(3, 2), 5)
        with pytest.raises(ConfigurationError):
            core.run_loop(program, smt_active=True)

    def test_missing_thread_rejected(self):
        core = Core(XEON_E2288G)
        layout = Machine(XEON_E2288G).layout()
        with pytest.raises(ConfigurationError):
            core.run_loop(LoopProgram(layout.chain(3, 2), 5), thread=1)

    def test_lsd_toggle(self):
        core = Core(GOLD_6226)
        assert core.lsd_enabled
        core.set_lsd_enabled(False)
        assert not core.lsd_enabled


class TestMachineFacade:
    def test_run_loop_records_perf(self):
        machine = Machine(GOLD_6226, seed=1)
        program = LoopProgram(machine.layout().chain(3, 8), 50)
        report = machine.run_loop(program)
        assert machine.perf.read("uops_retired.any") == report.total_uops
        assert machine.perf.read("cycles") == pytest.approx(report.cycles)

    def test_kbps(self):
        machine = Machine(GOLD_6226)
        # 2700 cycles at 2.7 GHz = 1 microsecond; 1 bit / us = 1000 Kbps.
        assert machine.kbps(1, 2700) == pytest.approx(1000.0)

    def test_reset_restores_cold_state(self):
        machine = Machine(GOLD_6226, seed=1)
        program = LoopProgram(machine.layout().chain(3, 8), 50)
        first = machine.run_loop(program)
        machine.reset()
        second = machine.run_loop(program)
        assert second.uops_mite == first.uops_mite  # cold fill repeats

    def test_seed_reproducibility(self):
        a = Machine(GOLD_6226, seed=99).timer.measure(1000.0)
        b = Machine(GOLD_6226, seed=99).timer.measure(1000.0)
        assert a.measured_cycles == b.measured_cycles

    def test_rapl_respects_spec_frequency(self):
        machine = Machine(XEON_E2286G)
        assert machine.rapl.frequency_hz == pytest.approx(4.0e9)
