"""Property tests for the sweep service's write-ahead log.

The WAL's whole value is one sentence: *whatever prefix of appends
survives a crash, replay reconstructs exactly the state that prefix
describes*.  Hypothesis earns that sentence the hard way — arbitrary
interleavings of job records and state transitions, truncated at an
arbitrary **byte** offset (not a record boundary), checked against an
independent model of the append semantics:

* every fully-written record is applied; the torn final record (if the
  cut lands mid-line) costs exactly one ``dropped``, never the log;
* a ``state`` line whose ``job`` line was lost is an orphan — counted,
  skipped, and incapable of resurrecting a job;
* the ``job-N`` id watermark is monotone in the surviving records, so a
  recovered service can never reissue an id the log has seen.

A second property pins compaction: replaying a compacted log yields the
same jobs, statuses, and id watermark as the log it replaced, with
nothing dropped — compaction is a *representation* change, not a state
change.

The deterministic half of the file covers GC × persistence with a
:class:`ManualClock`: TTL-expired jobs are compacted out of the WAL
(no ghost replays), while their point results stay in the shared
:class:`ResultCache` — so a restart serves the same spec entirely from
cache under a *fresh* job id (the ``meta`` record keeps the counter).
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ResultCache
from repro.obs import ManualClock, MetricsRegistry
from repro.service import JobStore, SweepService, SweepSpec

# ----------------------------------------------------------------------
# operation strategies
# ----------------------------------------------------------------------
#: Statuses a transition record can carry.  Replay treats the status as
#: an opaque string (only terminal-ness matters downstream), so the set
#: mirrors JobStatus values plus nothing exotic.
_STATUSES = ("queued", "running", "ok", "cancelled", "error")

_job_ids = st.integers(min_value=1, max_value=5).map(lambda n: f"job-{n}")

#: One append: a job record (spec travels whole) or a state transition.
#: State records may precede their job record in the interleaving —
#: that is the orphan case replay must survive.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("job"),
            _job_ids,
            st.integers(min_value=-2, max_value=2),  # priority
            st.sampled_from([None, "nightly"]),  # label
            st.sampled_from(["anonymous", "alice", "bob"]),  # client
        ),
        st.tuples(st.just("state"), _job_ids, st.sampled_from(_STATUSES)),
    ),
    min_size=1,
    max_size=24,
)


def _spec_for(job_id: str) -> dict:
    """A distinct (but fixed per id) spec payload for one job record."""
    return {"grid": {"d": [int(job_id.partition("-")[2])]}, "bits": 8}


def _append_ops(store: JobStore, ops) -> None:
    for op in ops:
        if op[0] == "job":
            _, job_id, priority, label, client = op
            store.record_job(
                job_id,
                _spec_for(job_id),
                priority=priority,
                label=label,
                client=client,
            )
        else:
            _, job_id, status = op
            store.record_state(job_id, status)
    store.close()


def _model(ops):
    """Independent re-statement of the append semantics.

    Returns ``(jobs, orphans, next_index)`` where ``jobs`` maps id ->
    (priority, label, client, status).  A repeated job record resets
    the job (fresh submission under a recycled id starts queued); a
    state record for an unknown id is an orphan.
    """
    jobs: dict[str, tuple] = {}
    orphans = 0
    next_index = 1
    for op in ops:
        if op[0] == "job":
            _, job_id, priority, label, client = op
            jobs[job_id] = (priority, label, client, "queued")
            next_index = max(next_index, int(job_id.partition("-")[2]) + 1)
        else:
            _, job_id, status = op
            if job_id in jobs:
                jobs[job_id] = jobs[job_id][:3] + (status,)
            else:
                orphans += 1
    return jobs, orphans, next_index


class TestWalRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops, data=st.data())
    def test_truncation_at_any_byte_recovers_the_surviving_prefix(
        self, ops, data
    ):
        """Cut the log anywhere; replay equals the model of what survived.

        Each append is exactly one newline-terminated line, so the
        number of newlines in the kept bytes *is* the number of fully
        surviving records — everything after the last newline is the
        torn tail replay must charge to ``dropped`` (exactly once).
        """
        with tempfile.TemporaryDirectory() as tmp:
            store = JobStore(tmp)
            _append_ops(store, ops)
            wal = store.path
            raw = wal.read_bytes()
            offset = data.draw(
                st.integers(min_value=0, max_value=len(raw)), label="cut"
            )
            kept = raw[:offset]
            with open(wal, "r+b") as handle:
                handle.truncate(offset)

            state = JobStore(tmp).replay()

            survived = kept.count(b"\n")
            torn = 1 if kept.rfind(b"\n") + 1 < len(kept) else 0
            jobs, orphans, next_index = _model(ops[:survived])

            assert {
                job_id: (job.priority, job.label, job.client, job.status)
                for job_id, job in state.jobs.items()
            } == jobs
            assert state.records == survived - orphans
            assert state.dropped == torn + orphans
            assert state.next_job_index == next_index
            # Specs travel whole: the surviving jobs replay buildable.
            for job_id, job in state.jobs.items():
                assert job.spec == _spec_for(job_id)

    @settings(max_examples=40, deadline=None)
    @given(ops=_ops)
    def test_compaction_preserves_state_and_drops_nothing(self, ops):
        """compact(replay(log)) replays identically to the log it replaced."""
        with tempfile.TemporaryDirectory() as tmp:
            store = JobStore(tmp)
            _append_ops(store, ops)
            before = JobStore(tmp).replay()

            compactor = JobStore(tmp)
            compactor.compact(
                before.jobs.values(), next_job_index=before.next_job_index
            )
            after = JobStore(tmp).replay()

            assert after.dropped == 0
            assert after.next_job_index == before.next_job_index
            assert {
                job_id: (job.priority, job.label, job.client, job.status)
                for job_id, job in after.jobs.items()
            } == {
                job_id: (job.priority, job.label, job.client, job.status)
                for job_id, job in before.jobs.items()
            }
            # One meta line + one job line each + one state line per
            # non-queued job: compaction is minimal, not just correct.
            lines = [
                json.loads(line)
                for line in compactor.path.read_text().splitlines()
            ]
            assert lines[0] == {
                "record": "meta",
                "next_job_index": before.next_job_index,
            }
            assert len(lines) == 1 + len(before.jobs) + sum(
                1 for job in before.jobs.values() if job.status != "queued"
            )


# ----------------------------------------------------------------------
# GC x persistence
# ----------------------------------------------------------------------
#: Two cheap real points so the restarted run has cache entries to hit.
_GC_SPEC = SweepSpec(
    grid={"d": [2, 3]}, channel="eviction", variant="fast", bits=8
)


class TestGcPersistence:
    def test_ttl_eviction_compacts_wal_but_keeps_cache(self, tmp_path):
        """Expired jobs leave the WAL; their results stay cached.

        With a :class:`ManualClock` pinning time, a finished job older
        than ``job_ttl_s`` is evicted on the next GC, and the eviction
        *compacts the WAL* — a restart must not replay ghosts.  But the
        point results live in the shared cache, so resubmitting the
        same spec after the restart is all cache hits, under a fresh
        job id (the ``meta`` record preserved the counter).
        """
        state_dir = tmp_path / "state"
        cache_dir = tmp_path / "cache"
        clock = ManualClock()

        async def first_run() -> None:
            service = SweepService(
                cache=ResultCache(cache_dir),
                workers=1,
                job_ttl_s=60.0,
                clock=clock,
                registry=MetricsRegistry(clock=clock),
                store=JobStore(state_dir),
            )
            async with service:
                job = service.submit(
                    _GC_SPEC.build_sweep(), spec_payload=_GC_SPEC.to_dict()
                )
                await job.wait()
            assert job.status.value == "ok"
            assert job.id == "job-1"

            # Finished but young: survives GC, and the WAL knows it.
            assert service.gc() == 0
            assert "job-1" in JobStore(state_dir).replay().jobs

            # Step past the TTL: evicted from the table *and* the log.
            clock.advance(61.0)
            assert service.gc() == 1
            assert "job-1" not in service.jobs
            replayed = JobStore(state_dir).replay()
            assert replayed.jobs == {}
            assert replayed.next_job_index == 2  # meta kept the counter

        asyncio.run(first_run())

        # The cache outlives the job: results were never WAL state.
        assert any(Path(cache_dir).iterdir())

        async def restarted_run() -> None:
            service = SweepService(
                cache=ResultCache(cache_dir),
                workers=1,
                job_ttl_s=60.0,
                clock=clock,
                registry=MetricsRegistry(clock=clock),
                store=JobStore(state_dir),
            )
            recovered = await service.recover()
            assert recovered == []  # nothing pending: GC already settled it
            async with service:
                job = service.submit(
                    _GC_SPEC.build_sweep(), spec_payload=_GC_SPEC.to_dict()
                )
                await job.wait()
            assert job.id == "job-2"  # the evicted id is never reissued
            final = job.events[-1]
            assert final.kind == "job-done"
            assert final["cache_hits"] == 2
            assert final["computed"] == 0

        asyncio.run(restarted_run())
