"""Tests for the measurement substrate: timer, RAPL, perf, histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.frontend.engine import LoopReport
from repro.measure.histogram import Histogram
from repro.measure.noise import NONMT_PROFILE, QUIET_PROFILE, SMT_PROFILE, NoiseProfile
from repro.measure.perf import PERF_EVENTS, PerfCounters
from repro.measure.rapl import RaplInterface
from repro.measure.timer import CycleTimer


class TestNoiseProfile:
    def test_presets_ordering(self):
        assert SMT_PROFILE.jitter_abs_sigma > NONMT_PROFILE.jitter_abs_sigma
        assert QUIET_PROFILE.jitter_abs_sigma == 0.0

    def test_scaled(self):
        doubled = NONMT_PROFILE.scaled(2.0)
        assert doubled.jitter_abs_sigma == 2 * NONMT_PROFILE.jitter_abs_sigma
        assert doubled.spike_rate <= 1.0

    def test_validation(self):
        with pytest.raises(Exception):
            NoiseProfile(-1, 0, 0, 0)
        with pytest.raises(Exception):
            NoiseProfile(0, 0, 2.0, 0)


class TestCycleTimer:
    def test_quiet_profile_exact(self):
        timer = CycleTimer(np.random.default_rng(0), QUIET_PROFILE)
        sample = timer.measure(1234.5)
        assert sample.measured_cycles == 1234.5
        assert sample.noise == 0.0

    def test_overhead_added(self):
        profile = NoiseProfile(0, 0, 0, 0, rdtscp_overhead=32)
        timer = CycleTimer(np.random.default_rng(0), profile)
        assert timer.measure(100.0).measured_cycles == 132.0

    def test_jitter_statistics(self):
        timer = CycleTimer(np.random.default_rng(0), NONMT_PROFILE)
        samples = [s.measured_cycles for s in timer.measure_many(10_000.0, 500)]
        mean = np.mean(samples)
        assert 10_000 < mean < 10_200  # overhead + small spikes
        assert np.std(samples) > 0

    def test_never_negative(self):
        profile = NoiseProfile(jitter_abs_sigma=1000.0, jitter_rel_sigma=0,
                               spike_rate=0, spike_mean=0, rdtscp_overhead=0)
        timer = CycleTimer(np.random.default_rng(0), profile)
        assert all(s.measured_cycles >= 0 for s in timer.measure_many(1.0, 200))

    def test_rejects_negative_duration(self):
        timer = CycleTimer(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            timer.measure(-1.0)

    def test_rejects_zero_count(self):
        timer = CycleTimer(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            timer.measure_many(1.0, 0)


class TestRapl:
    def make(self, **kwargs) -> RaplInterface:
        defaults = dict(frequency_hz=2.7e9)
        defaults.update(kwargs)
        return RaplInterface(np.random.default_rng(0), **defaults)

    def test_update_interval(self):
        rapl = self.make(update_hz=20_000.0)
        assert rapl.update_interval_cycles == pytest.approx(2.7e9 / 20_000)

    def test_baseline_energy(self):
        rapl = self.make(baseline_watts=18.0)
        # 2.7e9 cycles = 1 s => 18 J = 18e9 nJ.
        assert rapl.baseline_energy_nj(2.7e9) == pytest.approx(18e9)

    def test_long_region_accurate(self):
        rapl = self.make(baseline_sigma_watts=0.0, sensor_sigma_rel=0.0)
        true_energy = 1e6
        duration = 100 * rapl.update_interval_cycles
        total = true_energy + rapl.baseline_energy_nj(duration)
        samples = [
            rapl.measure_region(true_energy, duration).measured_energy_nj
            for _ in range(200)
        ]
        # Quantisation error is +-1 interval out of 100.
        assert np.mean(samples) == pytest.approx(total, rel=0.01)

    def test_short_region_quantisation_noise(self):
        rapl = self.make(baseline_sigma_watts=0.0, sensor_sigma_rel=0.0)
        duration = rapl.update_interval_cycles / 10  # sub-interval region
        samples = [
            rapl.measure_region(1000.0, duration).measured_energy_nj
            for _ in range(100)
        ]
        relative_spread = np.std(samples) / np.mean(samples)
        assert relative_spread > 0.5  # swamped, as the paper's channels find

    def test_disabled_raises(self):
        rapl = self.make(enabled=False)
        with pytest.raises(MeasurementError):
            rapl.measure_region(1.0, 1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(MeasurementError):
            self.make().measure_region(1.0, 0.0)

    def test_measured_power_property(self):
        rapl = self.make()
        sample = rapl.measure_region(1000.0, 1e6)
        assert sample.measured_power == pytest.approx(
            sample.measured_energy_nj / 1e6
        )


class TestPerfCounters:
    def test_record_and_read(self):
        perf = PerfCounters()
        report = LoopReport(cycles=100.0, uops_lsd=40, uops_dsb=10, uops_mite=5,
                            switches_to_mite=2, lcp_stalls=3)
        perf.record(report)
        assert perf.read("lsd.uops") == 40
        assert perf.read("idq.dsb_uops") == 10
        assert perf.read("idq.mite_uops") == 5
        assert perf.read("uops_retired.any") == 55
        assert perf.read("dsb2mite_switches.count") == 2
        assert perf.read("ild_stall.lcp") == 3

    def test_unknown_event(self):
        with pytest.raises(MeasurementError):
            PerfCounters().read("cache-misses-typo")

    def test_reset(self):
        perf = PerfCounters()
        perf.record(LoopReport(cycles=10.0, uops_dsb=4))
        perf.reset()
        assert perf.read("idq.dsb_uops") == 0

    def test_ipc(self):
        perf = PerfCounters()
        perf.record(LoopReport(cycles=10.0, uops_dsb=20))
        assert perf.ipc == pytest.approx(2.0)

    def test_all_documented_events_readable(self):
        perf = PerfCounters()
        for event in PERF_EVENTS:
            assert perf.read(event) == 0.0


class TestHistogram:
    def test_from_samples(self):
        hist = Histogram.from_samples([1.0, 2.0, 3.0, 2.5], bins=10)
        assert hist.total == 4

    def test_overflow_underflow(self):
        hist = Histogram(lo=0.0, hi=10.0, bins=5)
        hist.add(-1.0)
        hist.add(100.0)
        hist.add(5.0)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 3

    def test_mode_center(self):
        hist = Histogram(lo=0.0, hi=10.0, bins=10)
        hist.add_many([5.2, 5.3, 5.1, 1.0])
        assert 5.0 <= hist.mode_center() <= 6.0

    def test_render(self):
        hist = Histogram.from_samples([1.0, 2.0], bins=4)
        out = hist.render(label="test")
        assert "test" in out
        assert out.count("\n") == 4

    def test_validation(self):
        with pytest.raises(MeasurementError):
            Histogram(lo=1.0, hi=1.0)
        with pytest.raises(MeasurementError):
            Histogram.from_samples([])
