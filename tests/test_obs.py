"""Tests for the observability layer (``repro.obs``).

Ordered by the claims that matter most:

* **determinism** — snapshots are byte-stable: identity-sorted
  instruments, fixed histogram edges, and (with a
  :class:`~repro.obs.ManualClock`) two runs of the same seeded sweep
  serialize to identical bytes — the replay harness's foundation;
* **views, not bookkeeping** — ``ExecutionStats`` and the service's
  counters are deltas over registry instruments, so the metrics verb
  and the stats line can never disagree;
* **coverage** — after a loopback distributed sweep through the
  service, ``{"op": "metrics"}`` returns a snapshot spanning the exec,
  service, and cluster instrument families (the PR's acceptance
  criterion).
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache, SerialExecutor
from repro.obs import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    ManualClock,
    MetricsRegistry,
    get_registry,
    render_text,
    snapshot_json,
    use_registry,
    write_jsonl,
)
from repro.service import ServiceClient, SweepServer, SweepService, SweepSpec
from repro.sweep import ParameterSweep, SweepPoint

from tests._replay import assert_replay


def quadratic(point: SweepPoint) -> dict:
    x = point["x"]
    return {"y": float(x * x), "seed_mod": float(point.seed % 7)}


def make_sweep(xs=(1, 2, 3), trials=2) -> ParameterSweep:
    return ParameterSweep(quadratic, {"x": list(xs)}, trials=trials, base_seed=7)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# clock
# ----------------------------------------------------------------------
class TestManualClock:
    def test_step_advances_on_every_read(self):
        clock = ManualClock(start=10.0, step=0.5)
        assert clock() == 10.5  # each read advances first, then returns
        assert clock() == 11.0
        assert clock.now == 11.0  # peeking does not advance

    def test_advance_moves_time_explicitly(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(2.25)
        assert clock() == 2.25


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_counts_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_histogram_buckets_fill_by_edge(self):
        hist = MetricsRegistry().histogram("h", edges=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        # <=0.1, <=1.0, overflow
        assert snap["buckets"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["min"] == 0.05 and snap["max"] == 2.0

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ConfigurationError, match="ascending"):
            MetricsRegistry().histogram("h", edges=(1.0, 0.1))

    def test_histogram_default_edges_are_the_fixed_latency_layout(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.edges == DEFAULT_LATENCY_EDGES


# ----------------------------------------------------------------------
# registry identity and snapshots
# ----------------------------------------------------------------------
class TestRegistry:
    def test_same_name_and_tags_is_the_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("exec.points", executor="serial")
        b = registry.counter("exec.points", executor="serial")
        assert a is b
        # Tag values canonicalise to strings: 1 and "1" are one identity.
        c = registry.counter("shards", attempt=1)
        d = registry.counter("shards", attempt="1")
        assert c is d

    def test_type_mismatch_is_a_configuration_error(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("m")

    def test_histogram_edge_mismatch_is_a_configuration_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ConfigurationError, match="edges"):
            registry.histogram("h", edges=(1.0, 3.0))

    def test_snapshot_order_is_identity_not_insertion(self):
        forward = MetricsRegistry()
        forward.counter("b")
        forward.counter("a", worker="2")
        forward.counter("a", worker="1")
        backward = MetricsRegistry()
        backward.counter("a", worker="1")
        backward.counter("a", worker="2")
        backward.counter("b")
        assert snapshot_json(forward) == snapshot_json(backward)
        names = [m["name"] for m in forward.snapshot()["metrics"]]
        assert names == ["a", "a", "b"]

    def test_reset_clears_everything(self):
        registry = MetricsRegistry(clock=ManualClock(step=1.0))
        registry.counter("c").inc()
        with registry.span("s"):
            pass
        registry.event("e", key="k")
        registry.reset()
        assert len(registry) == 0
        assert registry.spans == ()
        assert registry.events == ()

    def test_use_registry_scopes_the_process_default(self):
        scoped = MetricsRegistry()
        outer = get_registry()
        with use_registry(scoped):
            assert get_registry() is scoped
        assert get_registry() is outer


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_lands_in_histogram_and_trace_buffer(self):
        registry = MetricsRegistry(clock=ManualClock(step=1.0))
        with registry.span("shard.dispatch", worker="local-1"):
            pass
        [record] = registry.spans
        assert record.name == "shard.dispatch"
        assert record.tags == {"worker": "local-1"}
        assert record.elapsed_s == 1.0  # one clock step between reads
        hist = registry.histogram("shard.dispatch", worker="local-1")
        assert hist.count == 1
        assert hist.sum == 1.0

    def test_manual_end_is_idempotent(self):
        registry = MetricsRegistry(clock=ManualClock(step=0.5))
        span = registry.begin_span("s")
        assert span.end() == 0.5
        assert span.end() is None  # fault paths may race completion
        assert len(registry.spans) == 1


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_snapshot_json_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc()
        text = snapshot_json(registry)
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )
        assert '"tags":{"a":"1","b":"2"}' in text

    def test_write_jsonl_emits_metrics_spans_events(self):
        registry = MetricsRegistry(clock=ManualClock(step=1.0))
        registry.counter("c").inc()
        with registry.span("s"):
            pass
        registry.event("e", key="k")
        sink = io.StringIO()
        # span "s" also creates histogram "s": 2 metrics + 1 span + 1 event.
        assert write_jsonl(registry, sink, spans=True, events=True) == 4
        kinds = [json.loads(line)["kind"] for line in sink.getvalue().splitlines()]
        assert kinds == ["metric", "metric", "span", "event"]

    def test_render_text_tabulates_and_handles_empty(self):
        assert render_text({"metrics": []}) == "(no metrics recorded)"
        registry = MetricsRegistry()
        registry.counter("exec.points", executor="serial").inc(3)
        registry.histogram("exec.point_latency_s").observe(0.25)
        text = render_text(registry.snapshot())
        assert "exec.points" in text
        assert "executor=serial" in text
        assert "count=1" in text


# ----------------------------------------------------------------------
# executor instrumentation: stats are views over the registry
# ----------------------------------------------------------------------
class TestExecutorInstrumentation:
    def test_stats_match_registry_counters(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            cache = ResultCache(tmp_path / "cache")
            sweep = make_sweep()
            sweep.run(SerialExecutor(), cache=cache)
            cold = sweep.last_stats
            c_points = registry.counter("exec.points", executor="serial")
            c_hits = registry.counter("exec.cache_hits", executor="serial")
            c_misses = registry.counter("exec.cache_misses", executor="serial")
            assert c_points.value == cold.points == 6
            assert c_hits.value == cold.cache_hits == 0
            assert c_misses.value == 6
            latency = registry.histogram("exec.point_latency_s", executor="serial")
            assert latency.count == 6  # one observation per computed point

            warm = make_sweep()
            warm.run(SerialExecutor(), cache=cache)
            # Per-run stats stay per-run; the registry accumulates.
            assert warm.last_stats.points == 6
            assert warm.last_stats.cache_hits == 6
            assert c_points.value == 12
            assert c_hits.value == 6
            assert latency.count == 6  # cache hits are not latencies

    def test_compute_stream_records_streamed_points(self):
        with use_registry(MetricsRegistry()) as registry:
            sweep = make_sweep(trials=1)
            pending = list(enumerate(sweep.points()))
            results = list(
                SerialExecutor().compute_stream(pending, quadratic)
            )
            assert len(results) == 3
            assert registry.counter("exec.points", executor="serial").value == 3

    def test_two_seeded_runs_snapshot_byte_identically(self):
        def one_run() -> str:
            registry = MetricsRegistry(clock=ManualClock(step=0.001))
            with use_registry(registry):
                make_sweep().run(SerialExecutor())
            return snapshot_json(registry)

        first, second = one_run(), one_run()
        assert first == second
        assert first.encode() == second.encode()

    def test_replay_harness_records_then_verifies(self, tmp_path):
        def one_run():
            registry = MetricsRegistry(clock=ManualClock(step=0.001))
            with use_registry(registry):
                table = make_sweep().run(SerialExecutor())
            return table, registry

        table, registry = one_run()
        path = assert_replay(
            "unit-roundtrip", table, registry, fixtures_dir=tmp_path
        )
        assert path.exists()
        # A faithful rerun replays byte-identically...
        table2, registry2 = one_run()
        assert_replay("unit-roundtrip", table2, registry2, fixtures_dir=tmp_path)
        # ...and a drifted run is caught.
        registry2.counter("exec.points", executor="serial").inc()
        with pytest.raises(AssertionError, match="replay mismatch"):
            assert_replay(
                "unit-roundtrip", table2, registry2, fixtures_dir=tmp_path
            )


# ----------------------------------------------------------------------
# service instrumentation and the metrics verb
# ----------------------------------------------------------------------
class TestServiceMetrics:
    def test_service_counters_cover_jobs_and_dedup(self):
        registry = MetricsRegistry()

        async def scenario():
            with use_registry(registry):
                async with SweepService(
                    workers=1, batch_size=4, registry=registry
                ) as service:
                    job_a = service.submit(make_sweep(trials=1))
                    await job_a.wait()
                    job_b = service.submit(make_sweep(trials=1))
                    await job_b.wait()

        run(scenario())
        assert registry.counter("service.jobs_submitted").value == 2
        assert registry.counter("service.jobs_finished", status="ok").value == 2
        assert registry.counter("service.points_claimed").value == 6
        assert registry.counter("service.points_computed").value == 3
        # Job B rode job A's cached results: every point was a dedup hit.
        assert registry.counter("service.dedup_hits", source="memory").value == 3
        assert registry.histogram("service.job_latency_s").count == 2
        assert registry.gauge("service.queue_depth").value == 0

    def test_metrics_op_covers_exec_service_cluster(self, tmp_path):
        """Acceptance: after a loopback distributed sweep through the
        service, ``{"op": "metrics"}`` returns a snapshot spanning all
        three instrument families."""
        from repro.cluster import DistributedExecutor

        sock = tmp_path / "svc.sock"
        registry = MetricsRegistry()

        async def scenario():
            with use_registry(registry):
                executor = DistributedExecutor(
                    workers=2, shard_size=2, steal_after_s=None
                )
                service = SweepService(
                    executor=executor, batch_size=8, registry=registry
                )
                server = SweepServer(service, sock)
                await server.start()
                try:
                    client = ServiceClient(sock)
                    spec = SweepSpec(
                        grid={"d": [2, 4]}, channel="eviction",
                        variant="fast", bits=8,
                    )
                    events = [e async for e in client.submit(spec)]
                    assert events[-1].kind == "job-done"
                    reply = await client.metrics()
                finally:
                    await server.stop()
                return reply

        reply = run(scenario())
        assert reply.kind == "metrics"
        snapshot = reply.get("snapshot")
        names = {m["name"] for m in snapshot["metrics"]}
        # exec family: the distributed executor streamed the points.
        assert "exec.points" in names
        # service family: the job flowed through the queue.
        assert "service.jobs_submitted" in names
        assert "service.points_computed" in names
        # cluster family: the coordinator and both loopback workers.
        assert "cluster.workers_joined" in names
        assert "cluster.points_done" in names
        assert "worker.points_done" in names
        assert "shard.dispatch" in names  # dispatch→complete spans
        joined = [
            m for m in snapshot["metrics"] if m["name"] == "cluster.workers_joined"
        ]
        assert joined[0]["value"] == 2
        # The snapshot round-trips as canonical JSON (what the CLI prints).
        text = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        assert json.loads(text) == snapshot

    def test_fetch_metrics_and_cli_render(self, tmp_path, capsys):
        import threading

        from repro.cli import main
        from repro.service.client import fetch_metrics

        sock = tmp_path / "svc.sock"
        registry = MetricsRegistry()
        registry.counter("exec.points", executor="serial").inc(5)
        started = threading.Event()
        stop = threading.Event()

        def serve() -> None:
            async def body():
                server = SweepServer(
                    SweepService(registry=registry), sock
                )
                await server.start()
                started.set()
                try:
                    while not stop.is_set():
                        await asyncio.sleep(0.02)
                finally:
                    await server.stop()

            asyncio.run(body())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            assert started.wait(timeout=10)
            snapshot = fetch_metrics(sock)
            assert any(
                m["name"] == "exec.points" for m in snapshot["metrics"]
            )
            assert main(["metrics", "--socket", str(sock)]) == 0
            table = capsys.readouterr().out
            assert "exec.points" in table
            assert main(["metrics", "--socket", str(sock), "--format", "json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload == snapshot
        finally:
            stop.set()
            thread.join(timeout=10)

    def test_fetch_metrics_without_server_fails_cleanly(self, tmp_path):
        from repro.service.client import fetch_metrics

        with pytest.raises(ConfigurationError, match="no sweep service"):
            fetch_metrics(tmp_path / "nope.sock")
