"""Tests for the Streamline-style ring-buffer channel."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits, random_bits
from repro.channels.base import ChannelConfig
from repro.channels.misalignment import NonMtMisalignmentChannel
from repro.channels.streamline import RingBufferChannel
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226, XEON_E2174G


def machine(seed: int = 77, spec=GOLD_6226) -> Machine:
    return Machine(spec, seed=seed)


class TestRingBufferChannel:
    def test_ring_sets_validation(self):
        with pytest.raises(ChannelError):
            RingBufferChannel(machine(), ring_sets=1)
        with pytest.raises(ChannelError):
            RingBufferChannel(machine(), ring_sets=33)

    def test_stream_roundtrip_low_error(self):
        m = machine()
        channel = RingBufferChannel(m)
        bits = random_bits(128, m.rngs.stream("payload"))
        result = channel.transmit_stream(bits)
        assert result.error_rate < 0.10

    def test_faster_than_synchronised_channels(self):
        """The point of the Streamline construction: amortising the
        per-bit protocol overhead yields an order of magnitude."""
        m = machine()
        bits = random_bits(96, m.rngs.stream("payload"))
        ring = RingBufferChannel(m).transmit_stream(bits)
        sync = NonMtMisalignmentChannel(
            machine(seed=78), variant="fast"
        ).transmit(bits)
        assert ring.kbps > 5 * sync.kbps

    def test_partial_final_round(self):
        """Messages not divisible by the ring size still decode."""
        m = machine()
        channel = RingBufferChannel(m, ring_sets=16)
        bits = random_bits(21, m.rngs.stream("payload"))  # 16 + 5
        result = channel.transmit_stream(bits)
        assert len(result.received_bits) == 21
        assert result.error_rate < 0.25

    def test_single_bit_interface_for_calibration(self):
        m = machine()
        channel = RingBufferChannel(m)
        channel.calibrate(8)
        assert channel.decoder.margin > 0

    def test_works_without_lsd(self):
        m = machine(spec=XEON_E2174G)
        channel = RingBufferChannel(m)
        bits = alternating_bits(64)
        result = channel.transmit_stream(bits)
        assert result.error_rate < 0.10

    def test_validation(self):
        channel = RingBufferChannel(machine())
        with pytest.raises(ChannelError):
            channel.transmit_stream([])
        with pytest.raises(ChannelError):
            channel.transmit_stream([0, 2])

    def test_smaller_ring_works(self):
        m = machine()
        channel = RingBufferChannel(m, ring_sets=4)
        result = channel.transmit_stream(alternating_bits(32))
        assert result.error_rate < 0.20
