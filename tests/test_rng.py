"""Tests for the deterministic RNG stream factory."""

from __future__ import annotations

import numpy as np

from repro.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "timer") == derive_seed(42, "timer")

    def test_name_sensitivity(self):
        assert derive_seed(42, "timer") != derive_seed(42, "timer2")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "timer") != derive_seed(43, "timer")

    def test_similar_names_uncorrelated(self):
        # SHA-based derivation: adjacent names should not give adjacent seeds.
        a = derive_seed(0, "stream1")
        b = derive_seed(0, "stream2")
        assert abs(a - b) > 1000


class TestRngFactory:
    def test_same_name_same_object(self):
        rngs = RngFactory(7)
        assert rngs.stream("x") is rngs.stream("x")

    def test_different_names_different_sequences(self):
        rngs = RngFactory(7)
        a = rngs.stream("a").random(8)
        b = rngs.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        seq1 = RngFactory(7).stream("noise").random(16)
        seq2 = RngFactory(7).stream("noise").random(16)
        assert np.allclose(seq1, seq2)

    def test_independence_of_streams(self):
        """Drawing from one stream must not perturb another."""
        rngs1 = RngFactory(7)
        rngs1.stream("first").random(100)  # burn a different stream
        seq_with_burn = rngs1.stream("second").random(8)
        seq_fresh = RngFactory(7).stream("second").random(8)
        assert np.allclose(seq_with_burn, seq_fresh)

    def test_fork_creates_distinct_universe(self):
        root = RngFactory(7)
        child = root.fork("trial-0")
        assert child.seed != root.seed
        assert not np.allclose(
            child.stream("x").random(8), root.stream("x").random(8)
        )

    def test_fork_deterministic(self):
        assert RngFactory(7).fork("t").seed == RngFactory(7).fork("t").seed
