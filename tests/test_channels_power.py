"""Tests for the RAPL power covert channels (Section VI, Table V)."""

from __future__ import annotations

import pytest

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.power import (
    POWER_ITERATIONS,
    PowerEvictionChannel,
    PowerMisalignmentChannel,
)
from repro.errors import ChannelError
from repro.machine.machine import Machine
from repro.machine.specs import GOLD_6226


def machine(seed=41) -> Machine:
    return Machine(GOLD_6226, seed=seed)


class TestPowerChannels:
    def test_default_iterations_follow_paper(self):
        channel = PowerEvictionChannel(machine())
        assert channel.config.p == POWER_ITERATIONS == 240_000

    def test_eviction_bit_separation(self):
        channel = PowerEvictionChannel(machine())
        channel.send_bit(0)
        channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert one > zero  # m=1 burns more energy (MITE + longer)

    def test_misalignment_bit_separation(self):
        channel = PowerMisalignmentChannel(machine())
        channel.send_bit(0)
        channel.send_bit(1)
        zero = channel.send_bit(0).measurement
        one = channel.send_bit(1).measurement
        assert one != pytest.approx(zero, rel=0.001)

    def test_transmission_rate_sub_kbps(self):
        """Power channels are RAPL-limited to well under the timing
        channels' rates (paper: ~0.6 Kbps)."""
        channel = PowerEvictionChannel(machine())
        result = channel.transmit(alternating_bits(12), training_bits=6)
        assert 0.05 < result.kbps < 5.0

    def test_error_rate_reasonable(self):
        channel = PowerMisalignmentChannel(machine())
        result = channel.transmit(alternating_bits(24), training_bits=8)
        assert result.error_rate < 0.35

    def test_requires_rapl(self):
        import dataclasses

        no_rapl_spec = dataclasses.replace(GOLD_6226, rapl=False, name="no-rapl")
        with pytest.raises(ChannelError):
            PowerEvictionChannel(Machine(no_rapl_spec))

    def test_variant_plumbing(self):
        stealthy = PowerEvictionChannel(machine(), variant="stealthy")
        assert stealthy.variant == "stealthy"
        assert "stealthy" in stealthy.name
        fast = PowerMisalignmentChannel(machine(), variant="fast")
        assert fast.bit_body(0) == fast._probe_blocks + fast._probe_blocks
