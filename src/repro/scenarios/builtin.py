"""The builtin attack scenarios.

Each is a pure data value — the substrate it exercises lives in
``repro.sgx.frontal``, ``repro.channels.retirement``,
``repro.spectre.btb``, and (for the synthesised find) ``repro.synth``.
Machine choices follow the hardware each attack needs: Frontal wants
SGX (and works best without SMT noise — the Azure E-2288G), the
retirement channel and Spectre v2 want the SMT-enabled Gold 6226.

The success criteria are the acceptance thresholds the CI scenario
smoke job asserts: Frontal branch-direction accuracy > 0.9, retirement
channel error rate < 0.05, Spectre v2 secret-recovery accuracy > 0.9,
and the synthesised DSB-contention find error rate < 0.2.
"""

from __future__ import annotations

from repro.analysis.outcome import SuccessCriteria
from repro.scenarios.registry import register
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "FRONTAL",
    "RETIREMENT_CHANNEL",
    "SPECTRE_V2",
    "SYNTH_DSB_CONTENTION",
    "BUILTIN_SCENARIOS",
]

FRONTAL = ScenarioSpec(
    name="frontal",
    kind="frontal",
    title="Frontal: interrupt-driven SGX branch-direction recovery",
    machine="Xeon E-2288G",
    criteria=SuccessCriteria(min_accuracy=0.9),
    trials=3,
    base_seed=2005_11516,
    params={
        "secret": "frontal!",
        "steps_per_branch": 5,
        "calibration_reps": 8,
    },
)

RETIREMENT_CHANNEL = ScenarioSpec(
    name="retirement-channel",
    kind="channel",
    title="Retirement-slot contention covert channel (SMT)",
    machine="Gold 6226",
    criteria=SuccessCriteria(max_error_rate=0.05, min_kbps=100.0),
    trials=3,
    base_seed=2307_12486,
    params={
        "channel": "mt-retirement",
        "bits": 200,
        "pattern": "random",
    },
)

SPECTRE_V2 = ScenarioSpec(
    name="spectre-v2",
    kind="spectre-v2",
    title="Spectre v2: BTB poisoning through the frontend DSB medium",
    machine="Gold 6226",
    criteria=SuccessCriteria(min_accuracy=0.9),
    trials=3,
    base_seed=2,
    params={
        "secret": "btbpoison",
        "channel": "frontend-dsb",
        "attempts_per_chunk": 5,
    },
)

# Discovered by ``python -m repro synth run --seed 7 --budget 24 --bits 24``
# and shrunk by the minimizer: a work-balanced DSB-set-28 contention
# sender (5-block probe vs 4-block encode overflowing the 8-way set,
# decoy mirrored 19 sets away keeps both bit bodies the same size).
# Registered verbatim from ``Finding.scenario_payload`` — this spec IS
# the proof that the synth → scenario export path round-trips.
SYNTH_DSB_CONTENTION = ScenarioSpec(
    name="synth-dsb-contention",
    kind="synth",
    title="Synthesised DSB-set contention sender (search find, shrunk)",
    machine="Gold 6226",
    criteria=SuccessCriteria(max_error_rate=0.2),
    trials=3,
    base_seed=7,
    params={
        "bits": 24,
        "candidate": {
            "decoy_stride": 19,
            "encode": [
                {
                    "count": 4,
                    "dsb_set": 28,
                    "kind": "std",
                    "lcp_sets": 5,
                    "misaligned": False,
                }
            ],
            "iterations": 1,
            "probe": [
                {
                    "count": 5,
                    "dsb_set": 28,
                    "kind": "std",
                    "lcp_sets": 2,
                    "misaligned": False,
                }
            ],
        },
    },
)

BUILTIN_SCENARIOS = (
    FRONTAL,
    RETIREMENT_CHANNEL,
    SPECTRE_V2,
    SYNTH_DSB_CONTENTION,
)

for _spec in BUILTIN_SCENARIOS:
    register(_spec)
