"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, JSON-round-trippable description
of one attack reproduction: which runner *kind* executes it, which
machine it runs on, its kind-specific parameters, how many trials to
pool, and the :class:`~repro.analysis.outcome.SuccessCriteria` the
pooled outcome must clear.  The serialisation conventions mirror
``repro.service.spec.SweepSpec`` — plain-JSON ``to_dict``/``from_dict``
with unknown-field rejection — so specs cross the sweep service's wire
unchanged.

Scenario *kinds* name runner families (how a spec is executed); the
registry maps scenario *names* to concrete parameterisations.  Three
kinds exist today:

* ``frontal`` — single-stepped SGX branch-direction recovery
  (:class:`repro.sgx.frontal.FrontalAttack`);
* ``channel`` — a covert-channel transmission through any channel
  ``repro.service.spec.build_channel`` knows;
* ``spectre-v2`` — branch-target injection
  (:class:`repro.spectre.btb.SpectreV2Attack`);
* ``synth`` — a synthesised candidate program
  (:class:`repro.synth.CandidateProgram`) replayed through the leakage
  oracle, optionally under a declarative defense stack — how the
  synthesiser's discoveries become permanent regression scenarios.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.outcome import SuccessCriteria
from repro.errors import ConfigurationError

__all__ = ["SCENARIO_KINDS", "ScenarioSpec"]

#: Runner families ``repro.scenarios.runners`` can execute.
SCENARIO_KINDS = ("frontal", "channel", "spectre-v2", "synth")


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered attack scenario, as data."""

    name: str
    kind: str
    title: str
    machine: str
    criteria: SuccessCriteria
    trials: int = 3
    base_seed: int = 0
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; choose from "
                f"{sorted(SCENARIO_KINDS)}"
            )
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )
        if not isinstance(self.criteria, SuccessCriteria):
            raise ConfigurationError(
                "criteria must be a SuccessCriteria instance"
            )
        # Freeze params into a plain dict so accidental aliasing of the
        # caller's mapping cannot mutate a registered spec.
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def with_overrides(
        self,
        params: Mapping[str, object] | None = None,
        trials: int | None = None,
        base_seed: int | None = None,
    ) -> "ScenarioSpec":
        """A copy with parameter/trial/seed overrides applied."""
        merged = dict(self.params)
        if params:
            merged.update(params)
        return dataclasses.replace(
            self,
            params=merged,
            trials=self.trials if trials is None else trials,
            base_seed=self.base_seed if base_seed is None else base_seed,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form, stable under ``json.dumps(sort_keys=True)``."""
        return {
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "machine": self.machine,
            "criteria": self.criteria.to_dict(),
            "trials": self.trials,
            "base_seed": self.base_seed,
            "params": dict(self.params),
        }

    def to_json(self) -> str:
        """Canonical JSON text (byte-identical for equal specs)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"scenario spec must be an object: {payload!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec field(s) {unknown}"
            )
        missing = sorted(
            {"name", "kind", "title", "machine", "criteria"} - set(payload)
        )
        if missing:
            raise ConfigurationError(
                f"scenario spec missing required field(s) {missing}"
            )
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigurationError("scenario params must be an object")
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            title=str(payload["title"]),
            machine=str(payload["machine"]),
            criteria=SuccessCriteria.from_dict(payload["criteria"]),
            trials=int(payload.get("trials", 3)),
            base_seed=int(payload.get("base_seed", 0)),
            params=dict(params),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(payload)
