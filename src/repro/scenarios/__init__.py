"""Declarative attack-scenario registry.

Every reproduction in this repository — the paper's own channels and
the neighbouring attacks the substrate can express — is described by a
:class:`~repro.scenarios.spec.ScenarioSpec`: machine, runner kind,
kind-specific parameters, trial count, and declarative
:class:`~repro.analysis.outcome.SuccessCriteria`.  Specs are pure data
(JSON-round-trippable), live in a name → spec registry, and are
executed by :func:`~repro.scenarios.runners.run_scenario`, which pools
per-trial :class:`~repro.analysis.outcome.ScenarioOutcome` records,
checks the criteria, and emits ``scenario.*`` metrics.

Builtin scenarios (registered on import):

====================  ==========  ===========================================
name                  kind        reproduction
====================  ==========  ===========================================
frontal               frontal     arXiv 2005.11516 — interrupt-driven
                                  per-step timing of SGX enclave paths
                                  recovers branch directions
retirement-channel    channel     arXiv 2307.12486 — SMT retirement-slot
                                  contention as a covert channel
spectre-v2            spectre-v2  branch-target injection through a
                                  partially-tagged BTB, frontend-DSB medium
====================  ==========  ===========================================

Consumers: ``python -m repro scenario list|describe|run|submit`` and the
sweep service's scenario-grid submissions
(:class:`~repro.scenarios.sweep.ScenarioSweepSpec`).
"""

from repro.scenarios.spec import SCENARIO_KINDS, ScenarioSpec
from repro.scenarios import registry
from repro.scenarios.registry import register, unregister, get, names, all_specs
from repro.scenarios.builtin import (
    BUILTIN_SCENARIOS,
    FRONTAL,
    RETIREMENT_CHANNEL,
    SPECTRE_V2,
)
from repro.scenarios.runners import ScenarioResult, run_scenario, run_trial
from repro.scenarios.sweep import ScenarioSweepSpec, scenario_point_metrics

__all__ = [
    "SCENARIO_KINDS",
    "ScenarioSpec",
    "registry",
    "register",
    "unregister",
    "get",
    "names",
    "all_specs",
    "BUILTIN_SCENARIOS",
    "FRONTAL",
    "RETIREMENT_CHANNEL",
    "SPECTRE_V2",
    "ScenarioResult",
    "run_scenario",
    "run_trial",
    "ScenarioSweepSpec",
    "scenario_point_metrics",
]
