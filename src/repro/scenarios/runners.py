"""Scenario execution: kind → runner dispatch, trials, criteria, metrics.

:func:`run_scenario` is the one entry point every consumer shares — the
CLI verb, the sweep-service factories, the bench suite, and the tests.
It derives one seed per trial from the spec's base seed (canonical
``derive_seed`` naming, so results are reproducible and cacheable),
runs the kind's runner, pools the per-trial outcomes with
:meth:`ScenarioOutcome.aggregate`, evaluates the spec's success
criteria, and records ``scenario.*`` instruments into the active
metrics registry.

Runners are module-level functions taking ``(spec, seed)`` so sweep
factories built over them stay picklable for the parallel executor.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.bits import random_bits
from repro.analysis.outcome import ScenarioOutcome
from repro.channels.base import ChannelConfig
from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.specs import spec_by_name
from repro.obs import MetricsRegistry, get_registry
from repro.rng import derive_seed
from repro.scenarios.spec import ScenarioSpec
from repro.service.spec import build_channel, sweep_config
from repro.sgx.frontal import FrontalAttack, FrontalParams
from repro.spectre.btb import SpectreV2Attack
from repro.spectre.channels import ALL_SPECTRE_CHANNELS
from repro.synth.candidate import CandidateProgram
from repro.synth.oracle import LeakageOracle, OracleConfig

__all__ = ["ScenarioResult", "run_scenario", "run_trial"]

#: Spectre covert-channel media by name (``FrontendDsbChannel.name`` etc).
_SPECTRE_CHANNELS = {cls.name: cls for cls in ALL_SPECTRE_CHANNELS}


@dataclass
class ScenarioResult:
    """One scenario run: pooled outcome, per-trial detail, verdict."""

    spec: ScenarioSpec
    outcome: ScenarioOutcome
    per_trial: list[ScenarioOutcome]
    failures: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """JSON-safe summary (what ``scenario run --json`` prints)."""
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "machine": self.spec.machine,
            "trials": len(self.per_trial),
            "passed": self.passed,
            "failures": list(self.failures),
            "metrics": self.outcome.metrics(),
            "per_trial": [outcome.metrics() for outcome in self.per_trial],
        }


# ----------------------------------------------------------------------
# parameter parsing helpers
# ----------------------------------------------------------------------
def _reject_unknown(params, allowed, kind: str) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} scenario parameter(s) {unknown}; choose from "
            f"{sorted(allowed)}"
        )


def _secret_bytes(params, default: str, kind: str) -> bytes:
    secret = params.get("secret", default)
    if not isinstance(secret, str) or not secret:
        raise ConfigurationError(
            f"{kind} scenario 'secret' must be a non-empty string"
        )
    return secret.encode()


# ----------------------------------------------------------------------
# kind runners (module-level: sweep factories pickle partials over these)
# ----------------------------------------------------------------------
def _run_frontal(spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
    params = dict(spec.params)
    frontal_fields = {f.name for f in dataclasses.fields(FrontalParams)}
    _reject_unknown(params, frontal_fields | {"secret"}, "frontal")
    secret = _secret_bytes(params, "frontal!", "frontal")
    overrides = {
        name: int(value)
        for name, value in params.items()
        if name in frontal_fields
    }
    machine = Machine(spec_by_name(spec.machine), seed=seed)
    attack = FrontalAttack(machine, secret, params=FrontalParams(**overrides))
    outcome = attack.run()
    return dataclasses.replace(outcome, label=spec.name)


def _run_channel(spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
    params = dict(spec.params)
    config_fields = {f.name for f in dataclasses.fields(ChannelConfig)}
    scenario_keys = {"channel", "variant", "bits", "pattern"}
    _reject_unknown(params, scenario_keys | config_fields, "channel")
    channel_name = params.get("channel")
    if not isinstance(channel_name, str):
        raise ConfigurationError(
            "channel scenario needs a 'channel' parameter (a name from "
            "repro.service.spec.CHANNEL_NAMES)"
        )
    bits = int(params.get("bits", 128))
    if bits < 1:
        raise ConfigurationError(f"bits must be >= 1, got {bits}")
    pattern = params.get("pattern", "random")
    if pattern not in ("random", "alternating"):
        raise ConfigurationError(
            f"pattern must be 'random' or 'alternating', got {pattern!r}"
        )
    overrides = {k: v for k, v in params.items() if k in config_fields}
    machine = Machine(spec_by_name(spec.machine), seed=seed)
    config = sweep_config(channel_name, overrides)
    channel = build_channel(
        machine, channel_name, str(params.get("variant", "fast")), config
    )
    if pattern == "random":
        message = random_bits(
            bits, machine.rngs.stream(f"scenario/{spec.name}/message")
        )
    else:
        message = [i % 2 for i in range(bits)]
    result = channel.transmit(message)
    outcome = result.to_outcome(machine.spec.frequency_hz)
    return dataclasses.replace(outcome, label=spec.name)


def _run_spectre_v2(spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
    params = dict(spec.params)
    allowed = {"secret", "channel", "trainings", "attempts_per_chunk", "defense"}
    _reject_unknown(params, allowed, "spectre-v2")
    secret = _secret_bytes(params, "btb!", "spectre-v2")
    channel_name = params.get("channel", "frontend-dsb")
    try:
        channel_cls = _SPECTRE_CHANNELS[channel_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown spectre channel {channel_name!r}; choose from "
            f"{sorted(_SPECTRE_CHANNELS)}"
        ) from None
    defense = params.get("defense")
    machine = Machine(spec_by_name(spec.machine), seed=seed)
    attack = SpectreV2Attack(
        machine,
        channel_cls(machine),
        secret,
        trainings=int(params.get("trainings", 4)),
        attempts_per_chunk=int(params.get("attempts_per_chunk", 3)),
        defense=defense,
    )
    report = attack.run()
    outcome = report.to_outcome(machine.spec.name)
    return dataclasses.replace(outcome, label=spec.name)


def _run_synth(spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
    """Replay a synthesised candidate through the leakage oracle.

    ``defense`` (the JSON form ``{"mitigations": [...]}``) turns the
    scenario into a defense regression: a candidate registered as
    defeating a stack keeps proving it on every CI run.
    """
    params = dict(spec.params)
    allowed = {"candidate", "defense", "bits", "training_bits"}
    _reject_unknown(params, allowed, "synth")
    if "candidate" not in params:
        raise ConfigurationError(
            "synth scenario needs a 'candidate' parameter (the genome "
            "dict a SearchReport finding exports)"
        )
    candidate = CandidateProgram.from_dict(params["candidate"])
    defense = params.get("defense")
    if defense is not None and not isinstance(defense, dict):
        raise ConfigurationError(
            "synth scenario 'defense' must be a defense-config object "
            "or null"
        )
    oracle = LeakageOracle(
        OracleConfig(
            machine=spec.machine,
            bits=int(params.get("bits", 32)),
            training_bits=int(params.get("training_bits", 12)),
        )
    )
    verdict = oracle.score(candidate, seed, defense=defense)
    if verdict.outcome is None:
        # Blocked/broken before any bit crossed: an empty outcome whose
        # error rate still reflects the (failed) transmission.
        return ScenarioOutcome(
            label=spec.name,
            machine=spec.machine,
            units_total=0,
            units_correct=0,
            bits=0,
            cycles=0.0,
            frequency_hz=0.0,
            error_rate=1.0,
            details={},
        )
    return dataclasses.replace(verdict.outcome, label=spec.name)


_RUNNERS = {
    "frontal": _run_frontal,
    "channel": _run_channel,
    "spectre-v2": _run_spectre_v2,
    "synth": _run_synth,
}


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_trial(spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
    """Run one trial of a scenario with an explicit machine seed."""
    return _RUNNERS[spec.kind](spec, seed)


def run_scenario(
    spec: ScenarioSpec,
    trials: int | None = None,
    base_seed: int | None = None,
    registry: MetricsRegistry | None = None,
) -> ScenarioResult:
    """Run a scenario end to end: trials, aggregation, criteria, metrics."""
    trials = spec.trials if trials is None else trials
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    base_seed = spec.base_seed if base_seed is None else base_seed
    outcomes = [
        run_trial(
            spec, derive_seed(base_seed, f"scenario/{spec.name}/trial{index}")
        )
        for index in range(trials)
    ]
    pooled = ScenarioOutcome.aggregate(outcomes, label=spec.name)
    failures = spec.criteria.failures(pooled)

    registry = get_registry() if registry is None else registry
    registry.counter("scenario.runs", scenario=spec.name).inc()
    registry.counter("scenario.trials", scenario=spec.name).inc(trials)
    if failures:
        registry.counter("scenario.failed", scenario=spec.name).inc()
    registry.gauge("scenario.accuracy", scenario=spec.name).set(pooled.accuracy)
    registry.gauge("scenario.error_rate", scenario=spec.name).set(
        pooled.error_rate
    )
    registry.gauge("scenario.kbps", scenario=spec.name).set(pooled.kbps)
    return ScenarioResult(
        spec=spec, outcome=pooled, per_trial=outcomes, failures=failures
    )
