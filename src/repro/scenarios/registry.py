"""The name → :class:`ScenarioSpec` registry.

One flat namespace: the CLI (``python -m repro scenario run <name>``),
the sweep service (scenario grid submissions), and the bench suite all
resolve scenarios through :func:`get`.  Builtin scenarios are installed
when ``repro.scenarios`` is imported — including inside pickled sweep
factories in worker processes, which only ever reference scenarios by
name.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["register", "unregister", "get", "names", "all_specs"]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Install a scenario under its name.

    Re-registering the *identical* spec is a no-op (idempotent module
    reloads); registering a different spec under a taken name requires
    ``replace=True``.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec and not replace:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered with a "
            "different spec; pass replace=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a scenario (primarily for tests)."""
    if name not in _REGISTRY:
        raise ConfigurationError(f"scenario {name!r} is not registered")
    del _REGISTRY[name]


def get(name: str) -> ScenarioSpec:
    """Resolve a scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(names()) or '(none)'}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_specs() -> tuple[ScenarioSpec, ...]:
    """All registered specs, in name order."""
    return tuple(_REGISTRY[name] for name in names())
