"""Scenario micro-benchmark: the pinned ``scenarios-micro-v1`` suite.

The frontend bench (``repro.bench``) times raw ``run_loop`` dispatch;
this suite times whole *scenario trials* — the realistic unit of work a
scenario sweep schedules — for every registered builtin scenario, under
every simulation backend.  Before any timing, each scenario trial is
checked for identical outcome metrics across the backends (the
bit-identical backend contract extends through attacks, enclaves, and
channels; a fast backend that changes an attack's result is broken, not
fast).

Two views per backend, mirroring the frontend suite:

* **trial latency** — median wall time of one ``run_trial`` at a
  pinned seed;
* **points/sec** — throughput of a small pinned scenario grid under
  the serial executor.

``python -m repro bench --suite scenarios`` writes the result through
the same :func:`repro.bench.write_bench` snapshot machinery into
``BENCH_scenarios.json``.
"""

from __future__ import annotations

import time

from repro.errors import ExecutionError
from repro.exec import SerialExecutor
from repro.frontend.backends import set_default_backend
from repro.obs import MetricsRegistry, use_registry
from repro.scenarios import registry
from repro.scenarios.builtin import BUILTIN_SCENARIOS
from repro.scenarios.runners import run_trial
from repro.scenarios.sweep import ScenarioSweepSpec

__all__ = ["SUITE_NAME", "pinned_grids", "run_bench"]

SUITE_NAME = "scenarios-micro-v1"

#: Seed every latency/equivalence trial uses (never change: results
#: stay comparable over time).
_TRIAL_SEED = 20220417


def pinned_grids() -> dict[str, dict[str, list]]:
    """The fixed per-scenario sweep grids the throughput view runs."""
    return {
        "frontal": {"steps_per_branch": [3, 5]},
        "retirement-channel": {"bits": [120, 200]},
        "spectre-v2": {"attempts_per_chunk": [1, 3]},
    }


def _assert_equivalent(backends: tuple[str, ...]) -> dict[str, dict]:
    """Refuse to benchmark backends that change any scenario's outcome.

    Returns the (backend-independent) outcome metrics per scenario for
    embedding in the result document.
    """
    reference_metrics: dict[str, dict] = {}
    for spec in BUILTIN_SCENARIOS:
        per_backend = {}
        for backend in backends:
            previous = set_default_backend(backend)
            try:
                outcome = run_trial(spec, seed=_TRIAL_SEED)
            finally:
                set_default_backend(previous)
            per_backend[backend] = outcome.metrics()
        first = per_backend[backends[0]]
        for backend, metrics in per_backend.items():
            if metrics != first:
                raise ExecutionError(
                    f"backend {backend!r} changes scenario {spec.name!r} "
                    f"outcome ({metrics} != {first}); fix equivalence "
                    "before benchmarking"
                )
        reference_metrics[spec.name] = first
    return reference_metrics


def run_bench(
    loops: int = 5,
    trials: int = 2,
    backends: tuple[str, ...] = ("reference", "vectorized"),
) -> dict:
    """Run the pinned scenario suite and return the result document.

    ``loops`` is the sample count for trial-latency medians; ``trials``
    the sweep trial count for the points/sec view.
    """
    grids = pinned_grids()
    metrics_registry = MetricsRegistry()
    latency_ms: dict[str, dict[str, float]] = {}
    points_per_sec: dict[str, dict[str, float]] = {}
    with use_registry(metrics_registry):
        outcomes = _assert_equivalent(backends)
        for backend in backends:
            latency_ms[backend] = {}
            points_per_sec[backend] = {}
            previous = set_default_backend(backend)
            try:
                for spec in BUILTIN_SCENARIOS:
                    samples = []
                    for _ in range(loops):
                        start = time.perf_counter()
                        run_trial(spec, seed=_TRIAL_SEED)
                        samples.append(time.perf_counter() - start)
                    samples.sort()
                    latency_ms[backend][spec.name] = (
                        samples[len(samples) // 2] * 1e3
                    )
                    sweep = ScenarioSweepSpec(
                        scenario=spec.name,
                        grid=grids[spec.name],
                        trials=trials,
                        base_seed=1,
                    ).build_sweep()
                    n_points = len(sweep.points())
                    start = time.perf_counter()
                    sweep.run(executor=SerialExecutor())
                    elapsed = time.perf_counter() - start
                    points_per_sec[backend][spec.name] = n_points / elapsed
            finally:
                set_default_backend(previous)
    return {
        "suite": SUITE_NAME,
        "loops": loops,
        "trials": trials,
        "scenarios": {
            spec.name: {
                "kind": spec.kind,
                "machine": spec.machine,
                "grid": grids[spec.name],
            }
            for spec in BUILTIN_SCENARIOS
        },
        "outcomes": outcomes,
        "latency_ms": latency_ms,
        "points_per_sec": points_per_sec,
        "registered": list(registry.names()),
        "metrics": metrics_registry.snapshot(),
    }
