"""Scenario grids as sweep jobs: the service/cluster bridge.

A scenario's parameters are natural sweep axes (message length,
attempts per chunk, defense mode, ...).  :class:`ScenarioSweepSpec` is
the JSON-safe submission — the ``scenario`` field routes it at the
service's ``submit`` op (``repro.service.server`` dispatches on its
presence) — and :func:`scenario_point_metrics` is the picklable point
factory, so scenario sweeps flow through the exact cache / dedup /
cluster / obs stack ordinary channel sweeps use.

Each sweep point runs **one trial** of the scenario with the point's
canonical derived seed and the point's values overriding the registered
spec's params; statistical pooling over trials is the sweep's ``trials``
dimension, exactly as for channel sweeps.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs import get_registry
from repro.scenarios import registry
from repro.scenarios.runners import run_trial
from repro.sweep import ParameterSweep, SweepPoint

__all__ = ["ScenarioSweepSpec", "scenario_point_metrics"]


def scenario_point_metrics(name: str, point: SweepPoint) -> dict:
    """Sweep factory: one scenario trial at one grid point.

    Module-level (dispatched via :func:`functools.partial` over the
    scenario *name*, never the spec object) so worker processes resolve
    the scenario from their own registry after importing
    ``repro.scenarios`` — keeping the partial picklable and the cache
    fingerprint stable across CLI and service submissions.
    """
    spec = registry.get(name).with_overrides(params=dict(point.values))
    outcome = run_trial(spec, seed=point.seed)
    get_registry().counter("scenario.points", scenario=name).inc()
    return outcome.metrics()


@dataclass(frozen=True)
class ScenarioSweepSpec:
    """JSON-safe description of one scenario-grid sweep job.

    Mirrors :class:`repro.service.spec.SweepSpec`; the ``scenario``
    field names a registered scenario and doubles as the submit-op
    dispatch key.
    """

    scenario: str
    grid: Mapping[str, Sequence[object]]
    trials: int = 1
    base_seed: int = 0
    priority: int = 0
    label: str | None = None

    def __post_init__(self) -> None:
        registry.get(self.scenario)  # raises on unknown names
        if not self.grid:
            raise ConfigurationError("scenario sweep needs a non-empty grid")
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )

    # ------------------------------------------------------------------
    def point_count(self) -> int:
        """Points this spec expands to: axis-length product × trials.

        Same contract as :meth:`SweepSpec.point_count` — cheap enough
        that quota admission can run before the grid is materialised.
        """
        count = int(self.trials)
        for values in self.grid.values():
            count *= len(values)
        return count

    def build_sweep(self) -> ParameterSweep:
        """Materialise as a runnable :class:`ParameterSweep`."""
        factory = functools.partial(scenario_point_metrics, self.scenario)
        return ParameterSweep(
            factory,
            {name: list(values) for name, values in self.grid.items()},
            trials=int(self.trials),
            base_seed=int(self.base_seed),
        )

    def to_dict(self) -> dict:
        """Plain-JSON form (the ``spec`` field of a ``submit`` request)."""
        return {
            "scenario": self.scenario,
            "grid": {name: list(values) for name, values in self.grid.items()},
            "trials": self.trials,
            "base_seed": self.base_seed,
            "priority": self.priority,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioSweepSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"scenario sweep spec must be an object: {payload!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario sweep spec field(s) {unknown}"
            )
        if "scenario" not in payload:
            raise ConfigurationError("scenario sweep spec needs a scenario name")
        grid = payload.get("grid")
        if not isinstance(grid, Mapping):
            raise ConfigurationError("scenario sweep spec needs a grid object")
        return cls(
            **{
                **payload,
                "scenario": str(payload["scenario"]),
                "grid": {str(k): list(v) for k, v in grid.items()},
            }
        )
