"""Side-channel (non-cooperative victim) attacks via the frontend.

The paper's channels are mostly *covert* (a cooperating sender).  This
package demonstrates the side-channel counterpart: a victim whose
control flow depends on a secret leaves a secret-dependent *instruction
footprint* in the DSB, and an attacker sharing the frontend recovers the
secret by priming and probing DSB sets — no victim cooperation, no data
caches touched.

* :class:`~repro.sidechannel.victim.SquareAndMultiplyVictim` — the
  classic left-to-right modular exponentiation shape: every key bit
  executes the *square* code; only 1-bits execute the *multiply* code.
* :class:`~repro.sidechannel.attack.DsbFootprintAttack` — primes the
  DSB set backing the multiply code before each key-bit window and
  times a probe afterwards: the multiply code's fills evict the
  attacker's lines exactly when the bit was 1.
"""

from repro.sidechannel.victim import SquareAndMultiplyVictim
from repro.sidechannel.attack import DsbFootprintAttack, KeyRecovery

__all__ = ["SquareAndMultiplyVictim", "DsbFootprintAttack", "KeyRecovery"]
