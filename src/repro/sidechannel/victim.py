"""A secret-dependent victim: square-and-multiply exponentiation shape.

Left-to-right binary exponentiation processes the exponent's bits most
significant first::

    for bit in key_bits:
        r = square(r)          # always
        if bit:
            r = multiply(r, b) # only for 1-bits

The *data* leak of this pattern is folklore; the frontend leak the paper
enables is subtler: even with constant-time arithmetic, the multiply
routine's *instructions* enter the DSB only on 1-bits.  The victim here
executes representative instruction blocks (no actual arithmetic — the
simulator only models the frontend) whose DSB placement is fixed by the
binary's layout and therefore known to the attacker.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.frontend.engine import LoopReport
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine

__all__ = ["SquareAndMultiplyVictim"]


class SquareAndMultiplyVictim:
    """Processes one key bit per call, leaving its frontend footprint."""

    #: Loop iterations each routine runs per bit (models the routine's
    #: internal loop; more iterations = a firmer DSB footprint).
    ROUTINE_ITERATIONS = 8

    def __init__(
        self,
        machine: Machine,
        key_bits: list[int],
        square_set: int = 2,
        multiply_set: int = 21,
        region_base: int = 0x05_000000,
    ) -> None:
        if not key_bits or any(b not in (0, 1) for b in key_bits):
            raise ConfigurationError("key_bits must be a non-empty 0/1 list")
        if square_set == multiply_set:
            raise ConfigurationError(
                "square and multiply routines must live in different DSB sets"
            )
        self.machine = machine
        self.key_bits = list(key_bits)
        layout = machine.layout(region_base=region_base)
        # The square routine: 4 blocks; the multiply routine: 3 blocks.
        # Their addresses — hence DSB sets — are fixed by the victim
        # binary's layout, which the attacker can read offline.
        self.square_program = LoopProgram(
            layout.chain(square_set, 4, label="victim.square"),
            self.ROUTINE_ITERATIONS,
            "victim.square",
        )
        self.multiply_program = LoopProgram(
            layout.chain(multiply_set, 3, first_slot=10, label="victim.multiply"),
            self.ROUTINE_ITERATIONS,
            "victim.multiply",
        )
        self.square_set = square_set
        self.multiply_set = multiply_set
        self._cursor = 0

    @property
    def bits_remaining(self) -> int:
        return len(self.key_bits) - self._cursor

    def process_next_bit(self) -> LoopReport:
        """Execute one exponentiation step (square [+ multiply])."""
        if self._cursor >= len(self.key_bits):
            raise ConfigurationError("all key bits already processed")
        bit = self.key_bits[self._cursor]
        self._cursor += 1
        report = self.machine.run_loop(self.square_program)
        if bit:
            report.merge(self.machine.run_loop(self.multiply_program))
        return report

    def reset(self) -> None:
        """Restart the exponentiation (e.g. for a repeated decryption)."""
        self._cursor = 0
