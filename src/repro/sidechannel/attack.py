"""DSB footprint prime+probe against a secret-dependent victim.

Per key-bit window the attacker (time-sliced on the same hardware
thread, like the paper's non-MT setting):

1. **Prime** — executes 8 of its own blocks mapping to the multiply
   routine's DSB set, filling all ways;
2. lets the victim process one key bit;
3. **Probe** — re-executes its 8 blocks once, timed: if the victim's
   multiply code ran, its 3 line fills evicted attacker lines and the
   probe pays MITE redelivery — bit 1.  A 0-bit leaves the set intact —
   fast probe, bit 0.

The channel never touches the L1 caches (the attacker's blocks stride
the L1I like every chain in this library), so the classic cache-attack
detectors see nothing.  Repetition across ``attempts`` decryptions plus
a median-threshold vote handles timing noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.threshold import calibrate_threshold
from repro.errors import ConfigurationError
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.sidechannel.victim import SquareAndMultiplyVictim

__all__ = ["DsbFootprintAttack", "KeyRecovery"]


@dataclass(frozen=True)
class KeyRecovery:
    """Result of one key-extraction run."""

    true_bits: tuple[int, ...]
    recovered_bits: tuple[int, ...]
    probe_measurements: tuple[float, ...]
    threshold: float

    @property
    def accuracy(self) -> float:
        matches = sum(a == b for a, b in zip(self.true_bits, self.recovered_bits))
        return matches / len(self.true_bits)

    @property
    def recovered_int(self) -> int:
        value = 0
        for bit in self.recovered_bits:
            value = (value << 1) | bit
        return value


class DsbFootprintAttack:
    """Recovers a victim's key bits from its DSB instruction footprint."""

    def __init__(
        self,
        machine: Machine,
        victim: SquareAndMultiplyVictim,
        attempts: int = 5,
        prime_ways: int = 8,
        region_base: int = 0x06_000000,
    ) -> None:
        if attempts < 1:
            raise ConfigurationError("attempts must be >= 1")
        if not 1 <= prime_ways <= machine.spec.dsb_ways:
            raise ConfigurationError(
                f"prime_ways must be in 1..{machine.spec.dsb_ways}"
            )
        self.machine = machine
        self.victim = victim
        self.attempts = attempts
        layout = machine.layout(region_base=region_base)
        self._prime_program = LoopProgram(
            layout.chain(victim.multiply_set, prime_ways, label="attack.prime"),
            3,  # enough iterations to fill and settle
            "attack.prime",
        )

    # ------------------------------------------------------------------
    def _probe_once(self) -> float:
        probe = self._prime_program.with_iterations(1)
        report = self.machine.run_loop(probe)
        return self.machine.timer.measure(report.cycles).measured_cycles

    def _observe_window(self) -> float:
        """Prime, let the victim process one bit, probe."""
        self.machine.run_loop(self._prime_program)
        self.victim.process_next_bit()
        return self._probe_once()

    def _calibrate(self) -> float:
        """Threshold from synthetic 0/1 windows on the attacker's side.

        The attacker knows the victim binary's layout, so it can rehearse
        both outcomes offline: probe after nothing (bit 0) and probe
        after executing its own copy of the multiply routine (bit 1).
        """
        zeros, ones = [], []
        rehearsal = self.victim.multiply_program
        for _ in range(8):
            self.machine.run_loop(self._prime_program)
            zeros.append(self._probe_once())
            self.machine.run_loop(self._prime_program)
            self.machine.run_loop(rehearsal.with_iterations(1))
            ones.append(self._probe_once())
        return calibrate_threshold(zeros, ones).threshold

    # ------------------------------------------------------------------
    def run(self) -> KeyRecovery:
        """Observe ``attempts`` full decryptions and majority-vote bits."""
        threshold = self._calibrate()
        n_bits = len(self.victim.key_bits)
        votes = np.zeros(n_bits, dtype=int)
        measurements = np.zeros(n_bits, dtype=float)
        for _ in range(self.attempts):
            self.victim.reset()
            for index in range(n_bits):
                measured = self._observe_window()
                measurements[index] += measured
                if measured > threshold:
                    votes[index] += 1
        recovered = tuple(int(2 * v > self.attempts) for v in votes)
        return KeyRecovery(
            true_bits=tuple(self.victim.key_bits),
            recovered_bits=recovered,
            probe_measurements=tuple(measurements / self.attempts),
            threshold=threshold,
        )
