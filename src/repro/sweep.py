"""Parameter-sweep framework for channel and model studies.

The evaluation repeatedly asks "how does X change as parameter Y moves?"
(Figure 11's d-sweep, the ablation benchmarks, calibration work).  This
module factors that pattern into a reusable, deterministic grid runner::

    sweep = ParameterSweep(
        factory=lambda point: run_my_channel(d=point["d"], seed=point.seed),
        grid={"d": [1, 2, 4, 6, 8]},
        trials=3,
    )
    table = sweep.run()
    print(table.render())

Each grid point runs ``trials`` times with per-point derived seeds; the
result table carries mean/min/max per metric and renders as ASCII or
exports to plain dicts for further analysis.

How the points get computed is pluggable (:mod:`repro.exec`): the
default :class:`~repro.exec.serial.SerialExecutor` preserves the
historical in-process behaviour, a
:class:`~repro.exec.parallel.ParallelExecutor` fans points across worker
processes, and a :class:`~repro.exec.cache.ResultCache` memoises
already-computed points on disk.  All strategies produce identical
tables; ``sweep.last_stats`` carries the throughput/cache statistics of
the most recent run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.exec.canonical import point_seed_name
from repro.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.base import ExecutionStats, Executor, ProgressFn
    from repro.exec.cache import ResultCache

__all__ = ["SweepPoint", "SweepResult", "SweepTable", "ParameterSweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid coordinate plus its derived trial seed."""

    values: Mapping[str, object]
    trial: int
    seed: int

    def __getitem__(self, key: str) -> object:
        return self.values[key]


@dataclass(frozen=True)
class SweepResult:
    """Metrics measured at one point/trial."""

    point: SweepPoint
    metrics: Mapping[str, float]


@dataclass
class SweepTable:
    """Aggregated sweep output: one row per grid coordinate.

    Rows come back in **grid order** (the cartesian-product order of
    ``grid``) regardless of the order results were appended in — a
    parallel executor completing points out of order still yields the
    same table.  Coordinates not described by ``grid`` (or all rows,
    when ``grid`` is omitted) keep first-appearance order.

    The per-row aggregation is cached; use :meth:`append` (not direct
    mutation of ``results``) so the cache invalidates correctly.
    """

    parameter_names: tuple[str, ...]
    metric_names: tuple[str, ...]
    results: list[SweepResult] = field(default_factory=list)
    grid: Mapping[str, Sequence[object]] | None = None
    _rows_cache: list[dict] | None = field(
        default=None, repr=False, compare=False
    )

    def append(self, result: SweepResult) -> None:
        """Add one result and invalidate the cached aggregation."""
        self.results.append(result)
        self._rows_cache = None

    def rows(self) -> list[dict]:
        """Per-coordinate aggregation (mean/min/max over trials)."""
        if self._rows_cache is None:
            self._rows_cache = self._aggregate()
        return [dict(row) for row in self._rows_cache]

    def _aggregate(self) -> list[dict]:
        grouped: dict[tuple, list[SweepResult]] = {}
        for result in self.results:
            key = tuple(result.point.values[name] for name in self.parameter_names)
            grouped.setdefault(key, []).append(result)
        rows = []
        for key in self._ordered_keys(grouped):
            bucket = grouped[key]
            row: dict = dict(zip(self.parameter_names, key))
            for metric in self.metric_names:
                samples = [r.metrics[metric] for r in bucket]
                row[f"{metric}_mean"] = float(np.mean(samples))
                row[f"{metric}_min"] = float(np.min(samples))
                row[f"{metric}_max"] = float(np.max(samples))
            rows.append(row)
        return rows

    def _ordered_keys(self, grouped: Mapping[tuple, object]) -> list[tuple]:
        """Grouped coordinate keys, sorted into grid order."""
        keys = list(grouped)
        if self.grid is None:
            return keys
        axes = [list(self.grid.get(name, [])) for name in self.parameter_names]
        in_grid: list[tuple[tuple[int, ...], tuple]] = []
        extras: list[tuple] = []
        for key in keys:
            try:
                rank = tuple(axis.index(value) for axis, value in zip(axes, key))
            except ValueError:
                extras.append(key)
            else:
                in_grid.append((rank, key))
        in_grid.sort(key=lambda item: item[0])
        return [key for _, key in in_grid] + extras

    def column(self, metric: str) -> list[float]:
        """Mean values of one metric, in grid order."""
        return [row[f"{metric}_mean"] for row in self.rows()]

    def render(self, precision: int = 2) -> str:
        rows = self.rows()
        if not rows:
            return "(empty sweep)"
        headers = list(self.parameter_names) + [
            f"{metric}_mean" for metric in self.metric_names
        ]
        widths = [max(len(h), 10) for h in headers]
        lines = ["".join(h.ljust(w + 2) for h, w in zip(headers, widths))]
        lines.append("-" * len(lines[0]))
        for row in rows:
            cells = []
            for header, width in zip(headers, widths):
                value = row[header]
                text = (
                    f"{value:.{precision}f}" if isinstance(value, float) else str(value)
                )
                cells.append(text.ljust(width + 2))
            lines.append("".join(cells))
        return "\n".join(lines)


class ParameterSweep:
    """Deterministic grid sweep runner.

    Parameters
    ----------
    factory:
        Callable ``(point) -> Mapping[str, float]`` running one trial and
        returning named metrics.  It receives a :class:`SweepPoint` whose
        ``seed`` is unique and stable per (coordinate, trial).  To run
        under a :class:`~repro.exec.parallel.ParallelExecutor` the
        factory must be picklable (module-level function or
        ``functools.partial``).
    grid:
        Parameter name -> list of values.  The cartesian product is run.
    trials:
        Repetitions per coordinate (different seeds).
    base_seed:
        Root of the per-point seed derivation.  Seeds use a canonical
        type-tagged encoding of the coordinate (:mod:`repro.exec.canonical`),
        so they are stable across processes and immune to ``repr`` drift,
        and grids may mix value types freely on an axis.
    """

    def __init__(
        self,
        factory: Callable[[SweepPoint], Mapping[str, float]],
        grid: Mapping[str, Sequence[object]],
        trials: int = 1,
        base_seed: int = 0,
    ) -> None:
        if not grid:
            raise ConfigurationError("sweep grid must name at least one parameter")
        if any(len(values) == 0 for values in grid.values()):
            raise ConfigurationError("every grid axis needs at least one value")
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        self.factory = factory
        self.grid = {name: list(values) for name, values in grid.items()}
        self.trials = trials
        self.base_seed = base_seed
        #: Stats of the most recent :meth:`run` (None before the first).
        self.last_stats: "ExecutionStats | None" = None

    def points(self) -> list[SweepPoint]:
        names = list(self.grid)
        points = []
        for combo in itertools.product(*(self.grid[name] for name in names)):
            values = dict(zip(names, combo))
            for trial in range(self.trials):
                seed = derive_seed(self.base_seed, point_seed_name(values, trial))
                points.append(SweepPoint(values=values, trial=trial, seed=seed))
        return points

    def run(
        self,
        executor: "Executor | None" = None,
        cache: "ResultCache | None" = None,
        progress: "ProgressFn | None" = None,
    ) -> SweepTable:
        """Execute the grid and aggregate into a :class:`SweepTable`.

        Parameters
        ----------
        executor:
            Execution strategy; defaults to a fresh
            :class:`~repro.exec.serial.SerialExecutor`.
        cache:
            Optional :class:`~repro.exec.cache.ResultCache`; hits skip
            the factory entirely.
        progress:
            Optional ``(completed, total, timing)`` callback invoked
            after every point.
        """
        from repro.exec.serial import SerialExecutor

        if executor is None:
            executor = SerialExecutor()
        points = self.points()
        results, stats = executor.run(points, self.factory, cache=cache, progress=progress)
        self.last_stats = stats
        return self.build_table(results)

    def build_table(self, results: Sequence[SweepResult]) -> SweepTable:
        """Validate per-point metrics and aggregate into a table.

        Factored out of :meth:`run` so alternative drivers (notably the
        sweep service, which resolves points through its cross-job dedup
        layer rather than a single executor call) produce tables with
        identical validation and grid-order semantics.
        """
        metric_names = self._validate_metrics(results)
        return SweepTable(
            parameter_names=tuple(self.grid),
            metric_names=metric_names,
            results=list(results),
            grid={name: tuple(values) for name, values in self.grid.items()},
        )

    def _validate_metrics(self, results: Sequence[SweepResult]) -> tuple[str, ...]:
        metric_names: tuple[str, ...] = ()
        for result in results:
            metrics = result.metrics
            if not metrics:
                raise ConfigurationError(
                    f"sweep factory returned no metrics at {result.point.values}"
                )
            if not metric_names:
                metric_names = tuple(metrics)
            elif tuple(metrics) != metric_names:
                raise ConfigurationError(
                    "sweep factory must return the same metrics at every "
                    f"point (got {tuple(metrics)} vs {metric_names})"
                )
        return metric_names
