"""Parameter-sweep framework for channel and model studies.

The evaluation repeatedly asks "how does X change as parameter Y moves?"
(Figure 11's d-sweep, the ablation benchmarks, calibration work).  This
module factors that pattern into a reusable, deterministic grid runner::

    sweep = ParameterSweep(
        factory=lambda point: run_my_channel(d=point["d"], seed=point.seed),
        grid={"d": [1, 2, 4, 6, 8]},
        trials=3,
    )
    table = sweep.run()
    print(table.render())

Each grid point runs ``trials`` times with per-point derived seeds; the
result table carries mean/min/max per metric and renders as ASCII or
exports to plain dicts for further analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import derive_seed

__all__ = ["SweepPoint", "SweepResult", "SweepTable", "ParameterSweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid coordinate plus its derived trial seed."""

    values: Mapping[str, object]
    trial: int
    seed: int

    def __getitem__(self, key: str) -> object:
        return self.values[key]


@dataclass(frozen=True)
class SweepResult:
    """Metrics measured at one point/trial."""

    point: SweepPoint
    metrics: Mapping[str, float]


@dataclass
class SweepTable:
    """Aggregated sweep output: one row per grid coordinate."""

    parameter_names: tuple[str, ...]
    metric_names: tuple[str, ...]
    results: list[SweepResult] = field(default_factory=list)

    def rows(self) -> list[dict]:
        """Per-coordinate aggregation (mean/min/max over trials)."""
        grouped: dict[tuple, list[SweepResult]] = {}
        for result in self.results:
            key = tuple(result.point.values[name] for name in self.parameter_names)
            grouped.setdefault(key, []).append(result)
        rows = []
        for key, bucket in grouped.items():
            row: dict = dict(zip(self.parameter_names, key))
            for metric in self.metric_names:
                samples = [r.metrics[metric] for r in bucket]
                row[f"{metric}_mean"] = float(np.mean(samples))
                row[f"{metric}_min"] = float(np.min(samples))
                row[f"{metric}_max"] = float(np.max(samples))
            rows.append(row)
        return rows

    def column(self, metric: str) -> list[float]:
        """Mean values of one metric, in grid order."""
        return [row[f"{metric}_mean"] for row in self.rows()]

    def render(self, precision: int = 2) -> str:
        rows = self.rows()
        if not rows:
            return "(empty sweep)"
        headers = list(self.parameter_names) + [
            f"{metric}_mean" for metric in self.metric_names
        ]
        widths = [max(len(h), 10) for h in headers]
        lines = ["".join(h.ljust(w + 2) for h, w in zip(headers, widths))]
        lines.append("-" * len(lines[0]))
        for row in rows:
            cells = []
            for header, width in zip(headers, widths):
                value = row[header]
                text = (
                    f"{value:.{precision}f}" if isinstance(value, float) else str(value)
                )
                cells.append(text.ljust(width + 2))
            lines.append("".join(cells))
        return "\n".join(lines)


class ParameterSweep:
    """Deterministic grid sweep runner.

    Parameters
    ----------
    factory:
        Callable ``(point) -> Mapping[str, float]`` running one trial and
        returning named metrics.  It receives a :class:`SweepPoint` whose
        ``seed`` is unique and stable per (coordinate, trial).
    grid:
        Parameter name -> list of values.  The cartesian product is run.
    trials:
        Repetitions per coordinate (different seeds).
    base_seed:
        Root of the per-point seed derivation.
    """

    def __init__(
        self,
        factory: Callable[[SweepPoint], Mapping[str, float]],
        grid: Mapping[str, Sequence[object]],
        trials: int = 1,
        base_seed: int = 0,
    ) -> None:
        if not grid:
            raise ConfigurationError("sweep grid must name at least one parameter")
        if any(len(values) == 0 for values in grid.values()):
            raise ConfigurationError("every grid axis needs at least one value")
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        self.factory = factory
        self.grid = {name: list(values) for name, values in grid.items()}
        self.trials = trials
        self.base_seed = base_seed

    def points(self) -> list[SweepPoint]:
        names = list(self.grid)
        points = []
        for combo in itertools.product(*(self.grid[name] for name in names)):
            values = dict(zip(names, combo))
            for trial in range(self.trials):
                seed = derive_seed(self.base_seed, f"{sorted(values.items())}/{trial}")
                points.append(SweepPoint(values=values, trial=trial, seed=seed))
        return points

    def run(self) -> SweepTable:
        results = []
        metric_names: tuple[str, ...] = ()
        for point in self.points():
            metrics = dict(self.factory(point))
            if not metrics:
                raise ConfigurationError(
                    f"sweep factory returned no metrics at {point.values}"
                )
            if not metric_names:
                metric_names = tuple(metrics)
            elif tuple(metrics) != metric_names:
                raise ConfigurationError(
                    "sweep factory must return the same metrics at every "
                    f"point (got {tuple(metrics)} vs {metric_names})"
                )
            results.append(SweepResult(point=point, metrics=metrics))
        return SweepTable(
            parameter_names=tuple(self.grid),
            metric_names=metric_names,
            results=results,
        )
