"""Client side of the sweep service's Unix-socket protocol.

:class:`ServiceClient` is the async API; :func:`submit_and_stream` is
the synchronous convenience the ``python -m repro submit`` command uses:
it submits one :class:`~repro.service.spec.SweepSpec`, mirrors every
event as a JSONL line on ``events_out`` (stderr in the CLI), and returns
the terminal ``job-done`` event — whose ``rows`` payload carries the
aggregated result table.

Server-side refusals arrive as protocol frames and surface here as
typed exceptions: a ``deny`` frame raises :class:`ServiceDeniedError`,
``quota-exceeded`` raises :class:`ServiceQuotaError` (carrying
``retry_after_s`` for rate denials), an undecodable or non-event frame
raises :class:`ServiceProtocolError` instead of hanging the stream, and
``timeout_s`` bounds every read with :class:`ServiceTimeoutError`.  The
server's in-band ``error`` events (a bad spec, an unknown op) still
stream through as events — they answer a request that *was* accepted.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from typing import IO, AsyncIterator

from repro.errors import ConfigurationError, ReproError
from repro.service.endpoints import open_endpoint, parse_endpoint
from repro.service.events import Event
from repro.service.spec import SweepSpec

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceDeniedError",
    "ServiceQuotaError",
    "ServiceTimeoutError",
    "ServiceProtocolError",
    "submit_and_stream",
    "watch_and_stream",
    "fetch_metrics",
    "render_rows",
]


class ServiceError(ReproError):
    """Base of every error the sweep service client raises itself."""


class ServiceDeniedError(ServiceError):
    """The server refused the request (``deny`` frame): bad/missing token."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(f"{message} [{reason}]")
        self.reason = reason


class ServiceQuotaError(ServiceDeniedError):
    """The request was over quota (``quota-exceeded`` frame)."""

    def __init__(
        self, reason: str, message: str, retry_after_s: float | None = None
    ) -> None:
        super().__init__(reason, message)
        #: Seconds until a rate-limited client may retry; ``None`` for
        #: denials (active jobs, points) where waiting alone won't help.
        self.retry_after_s = retry_after_s


class ServiceTimeoutError(ServiceError):
    """No frame arrived within the client's ``timeout_s``."""


class ServiceProtocolError(ServiceError):
    """The server sent bytes that are not a protocol frame."""


def _raise_for_denial(payload: dict) -> None:
    """Map a refusal frame to its typed exception (no-op otherwise)."""
    kind = payload.get("event")
    if kind == "quota-exceeded":
        retry_after = payload.get("retry_after_s")
        raise ServiceQuotaError(
            reason=str(payload.get("reason")),
            message=str(payload.get("message")),
            retry_after_s=(
                float(retry_after)
                if isinstance(retry_after, (int, float))
                else None
            ),
        )
    if kind == "deny":
        raise ServiceDeniedError(
            reason=str(payload.get("reason")),
            message=str(payload.get("message")),
        )


class ServiceClient:
    """Talks JSONL to a :class:`~repro.service.server.SweepServer`.

    ``socket_path`` accepts any endpoint string the service can listen
    on: a Unix socket path (the default transport) or ``tcp://host:port``
    / bare ``host:port`` when the server was started with a TCP listener.
    ``token`` authenticates every request against the server's
    :class:`~repro.service.auth.AuthPolicy` (omit it for policy-less
    servers); ``timeout_s`` bounds each frame read.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike,
        *,
        token: str | None = None,
        timeout_s: float | None = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.endpoint = parse_endpoint(self.socket_path)
        self.token = token
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    async def submit(self, spec: SweepSpec) -> AsyncIterator[Event]:
        """Submit one spec; yields its events through ``job-done``."""
        reader, writer = await self._connect()
        try:
            request: dict = {"op": "submit", "spec": spec.to_dict()}
            if self.token is not None:
                request["token"] = self.token
            await self._send(writer, request)
            async for event in self._events(reader):
                yield event
                if event.kind in ("job-done", "error"):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation of a job by id; True if it was live."""
        cancel_request: dict = {"op": "cancel", "job": job_id}
        if self.token is not None:
            cancel_request["token"] = self.token
        event = await self._round_trip(cancel_request)
        return bool(event.get("ok"))

    async def ping(self) -> Event:
        """Liveness check; returns the server's ``pong`` counters."""
        ping_request: dict = {"op": "ping"}
        if self.token is not None:
            ping_request["token"] = self.token
        return await self._round_trip(ping_request)

    async def metrics(self) -> Event:
        """The server's metrics snapshot (the ``metrics`` op)."""
        metrics_request: dict = {"op": "metrics"}
        if self.token is not None:
            metrics_request["token"] = self.token
        return await self._round_trip(metrics_request)

    async def watch(self, kinds: list[str] | None = None) -> AsyncIterator[Event]:
        """Stream the service-wide event feed (the ``watch`` op).

        Yields the initial ``watching`` acknowledgement, then every
        service event (optionally filtered to ``kinds``) until the
        server shuts down — a shutdown ends the iterator rather than
        raising.  Break out of the loop to hang up.
        """
        reader, writer = await self._connect()
        try:
            request: dict = {"op": "watch"}
            if kinds is not None:
                request["kinds"] = list(kinds)
            if self.token is not None:
                request["token"] = self.token
            await self._send(writer, request)
            async for event in self._events(reader):
                yield event
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    async def _connect(self):
        try:
            return await open_endpoint(self.endpoint)
        except (ConnectionRefusedError, FileNotFoundError, OSError) as exc:
            raise ConfigurationError(
                f"no sweep service listening on {self.endpoint} "
                f"(start one with: python -m repro serve --socket "
                f"{self.socket_path})"
            ) from exc

    async def _round_trip(self, request: dict) -> Event:
        reader, writer = await self._connect()
        try:
            await self._send(writer, request)
            line = await self._readline(reader)
            if not line:
                raise ConfigurationError("sweep service closed the connection")
            return self._parse_frame(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _readline(self, reader: asyncio.StreamReader) -> bytes:
        """One frame line, bounded by ``timeout_s`` when it is set."""
        if self.timeout_s is None:
            return await reader.readline()
        try:
            return await asyncio.wait_for(reader.readline(), self.timeout_s)
        except asyncio.TimeoutError:
            raise ServiceTimeoutError(
                f"no frame from the sweep service within {self.timeout_s:g}s"
            ) from None

    @staticmethod
    def _parse_frame(line: bytes) -> Event:
        """Decode one frame; refusals and damage raise typed errors."""
        try:
            payload = json.loads(line.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceProtocolError(
                f"sweep service sent an undecodable frame: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "event" not in payload:
            raise ServiceProtocolError(
                f"sweep service sent a non-event frame: {line[:200]!r}"
            )
        _raise_for_denial(payload)
        kind = payload.pop("event")
        return Event(str(kind), payload)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, request: dict) -> None:
        writer.write(json.dumps(request, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _events(self, reader: asyncio.StreamReader) -> AsyncIterator[Event]:
        while True:
            line = await self._readline(reader)
            if not line:
                return
            yield self._parse_frame(line)


def render_rows(
    parameters: list, metrics: list, rows: list[dict], precision: int = 3
) -> str:
    """ASCII table from a ``job-done`` event's rows payload (mirrors
    :meth:`repro.sweep.SweepTable.render` so ``submit`` output matches a
    local ``sweep`` run)."""
    if not rows:
        return "(empty sweep)"
    headers = [str(p) for p in parameters] + [f"{m}_mean" for m in metrics]
    widths = [max(len(h), 10) for h in headers]
    lines = ["".join(h.ljust(w + 2) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        cells = []
        for header, width in zip(headers, widths):
            value = row.get(header)
            text = (
                f"{value:.{precision}f}" if isinstance(value, float) else str(value)
            )
            cells.append(text.ljust(width + 2))
        lines.append("".join(cells))
    return "\n".join(lines)


def submit_and_stream(
    socket_path: str | os.PathLike,
    spec: SweepSpec,
    events_out: IO[str] | None = None,
    token: str | None = None,
    timeout_s: float | None = None,
) -> Event:
    """Submit a spec and stream its progress (the CLI ``submit`` body).

    Every event is mirrored as one JSONL line to ``events_out`` (default
    stderr); returns the terminal event (``job-done``, or the server's
    ``error``).  Refusals raise the client's typed exceptions.
    """
    err = events_out if events_out is not None else sys.stderr

    async def run() -> Event:
        client = ServiceClient(socket_path, token=token, timeout_s=timeout_s)
        last: Event | None = None
        async for event in client.submit(spec):
            print(event.to_json(), file=err, flush=True)
            last = event
        if last is None or last.kind not in ("job-done", "error"):
            raise ConfigurationError(
                "sweep service closed the stream before job-done"
            )
        return last

    return asyncio.run(run())


def fetch_metrics(
    socket_path: str | os.PathLike,
    token: str | None = None,
    timeout_s: float | None = None,
) -> dict:
    """One-shot metrics snapshot from a running service (CLI ``metrics``).

    Returns the ``snapshot`` payload of the server's ``metrics`` event —
    ``{"metrics": [...]}`` in the registry's deterministic order — or
    raises :class:`~repro.errors.ConfigurationError` if nothing is
    listening (same contract as the other one-shot ops).
    """

    async def run() -> dict:
        client = ServiceClient(socket_path, token=token, timeout_s=timeout_s)
        event = await client.metrics()
        if event.kind != "metrics":
            raise ConfigurationError(
                f"service answered {event.kind!r}: {event.get('message')}"
            )
        snapshot = event.get("snapshot")
        return snapshot if isinstance(snapshot, dict) else {"metrics": []}

    return asyncio.run(run())


def watch_and_stream(
    socket_path: str | os.PathLike,
    events_out: IO[str] | None = None,
    kinds: list[str] | None = None,
    limit: int | None = None,
    token: str | None = None,
    timeout_s: float | None = None,
) -> int:
    """Mirror the service's event feed as JSONL (the CLI ``watch`` body).

    Prints one line per event to ``events_out`` (default stdout — watch
    output *is* the result) until the server shuts down, the connection
    drops, or ``limit`` events have been seen.  Returns the number of
    events printed (excluding the ``watching`` acknowledgement).  Note
    ``timeout_s`` bounds *every* frame read — an idle feed will trip it.
    """
    out = events_out if events_out is not None else sys.stdout

    async def run() -> int:
        client = ServiceClient(socket_path, token=token, timeout_s=timeout_s)
        seen = 0
        async for event in client.watch(kinds=kinds):
            print(event.to_json(), file=out, flush=True)
            if event.kind != "watching":
                seen += 1
            if limit is not None and seen >= limit:
                break
        return seen

    return asyncio.run(run())
