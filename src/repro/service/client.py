"""Client side of the sweep service's Unix-socket protocol.

:class:`ServiceClient` is the async API; :func:`submit_and_stream` is
the synchronous convenience the ``python -m repro submit`` command uses:
it submits one :class:`~repro.service.spec.SweepSpec`, mirrors every
event as a JSONL line on ``events_out`` (stderr in the CLI), and returns
the terminal ``job-done`` event — whose ``rows`` payload carries the
aggregated result table.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from typing import IO, AsyncIterator

from repro.errors import ConfigurationError
from repro.service.endpoints import open_endpoint, parse_endpoint
from repro.service.events import Event
from repro.service.spec import SweepSpec

__all__ = [
    "ServiceClient",
    "submit_and_stream",
    "watch_and_stream",
    "fetch_metrics",
    "render_rows",
]


class ServiceClient:
    """Talks JSONL to a :class:`~repro.service.server.SweepServer`.

    ``socket_path`` accepts any endpoint string the service can listen
    on: a Unix socket path (the default transport) or ``tcp://host:port``
    / bare ``host:port`` when the server was started with a TCP listener.
    """

    def __init__(self, socket_path: str | os.PathLike) -> None:
        self.socket_path = str(socket_path)
        self.endpoint = parse_endpoint(self.socket_path)

    # ------------------------------------------------------------------
    async def submit(self, spec: SweepSpec) -> AsyncIterator[Event]:
        """Submit one spec; yields its events through ``job-done``."""
        reader, writer = await self._connect()
        try:
            await self._send(writer, {"op": "submit", "spec": spec.to_dict()})
            async for event in self._events(reader):
                yield event
                if event.kind in ("job-done", "error"):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation of a job by id; True if it was live."""
        event = await self._round_trip({"op": "cancel", "job": job_id})
        return bool(event.get("ok"))

    async def ping(self) -> Event:
        """Liveness check; returns the server's ``pong`` counters."""
        return await self._round_trip({"op": "ping"})

    async def metrics(self) -> Event:
        """The server's metrics snapshot (the ``metrics`` op)."""
        return await self._round_trip({"op": "metrics"})

    async def watch(self, kinds: list[str] | None = None) -> AsyncIterator[Event]:
        """Stream the service-wide event feed (the ``watch`` op).

        Yields the initial ``watching`` acknowledgement, then every
        service event (optionally filtered to ``kinds``) until the
        server shuts down — a shutdown ends the iterator rather than
        raising.  Break out of the loop to hang up.
        """
        reader, writer = await self._connect()
        try:
            request: dict = {"op": "watch"}
            if kinds is not None:
                request["kinds"] = list(kinds)
            await self._send(writer, request)
            async for event in self._events(reader):
                yield event
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    async def _connect(self):
        try:
            return await open_endpoint(self.endpoint)
        except (ConnectionRefusedError, FileNotFoundError, OSError) as exc:
            raise ConfigurationError(
                f"no sweep service listening on {self.endpoint} "
                f"(start one with: python -m repro serve --socket "
                f"{self.socket_path})"
            ) from exc

    async def _round_trip(self, request: dict) -> Event:
        reader, writer = await self._connect()
        try:
            await self._send(writer, request)
            line = await reader.readline()
            if not line:
                raise ConfigurationError("sweep service closed the connection")
            return Event.from_json(line.decode())
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, request: dict) -> None:
        writer.write(json.dumps(request, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    @staticmethod
    async def _events(reader: asyncio.StreamReader) -> AsyncIterator[Event]:
        while True:
            line = await reader.readline()
            if not line:
                return
            yield Event.from_json(line.decode())


def render_rows(
    parameters: list, metrics: list, rows: list[dict], precision: int = 3
) -> str:
    """ASCII table from a ``job-done`` event's rows payload (mirrors
    :meth:`repro.sweep.SweepTable.render` so ``submit`` output matches a
    local ``sweep`` run)."""
    if not rows:
        return "(empty sweep)"
    headers = [str(p) for p in parameters] + [f"{m}_mean" for m in metrics]
    widths = [max(len(h), 10) for h in headers]
    lines = ["".join(h.ljust(w + 2) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        cells = []
        for header, width in zip(headers, widths):
            value = row.get(header)
            text = (
                f"{value:.{precision}f}" if isinstance(value, float) else str(value)
            )
            cells.append(text.ljust(width + 2))
        lines.append("".join(cells))
    return "\n".join(lines)


def submit_and_stream(
    socket_path: str | os.PathLike,
    spec: SweepSpec,
    events_out: IO[str] | None = None,
) -> Event:
    """Submit a spec and stream its progress (the CLI ``submit`` body).

    Every event is mirrored as one JSONL line to ``events_out`` (default
    stderr); returns the terminal event (``job-done``, or the server's
    ``error``).
    """
    err = events_out if events_out is not None else sys.stderr

    async def run() -> Event:
        client = ServiceClient(socket_path)
        last: Event | None = None
        async for event in client.submit(spec):
            print(event.to_json(), file=err, flush=True)
            last = event
        if last is None or last.kind not in ("job-done", "error"):
            raise ConfigurationError(
                "sweep service closed the stream before job-done"
            )
        return last

    return asyncio.run(run())


def fetch_metrics(socket_path: str | os.PathLike) -> dict:
    """One-shot metrics snapshot from a running service (CLI ``metrics``).

    Returns the ``snapshot`` payload of the server's ``metrics`` event —
    ``{"metrics": [...]}`` in the registry's deterministic order — or
    raises :class:`~repro.errors.ConfigurationError` if nothing is
    listening (same contract as the other one-shot ops).
    """

    async def run() -> dict:
        event = await ServiceClient(socket_path).metrics()
        if event.kind != "metrics":
            raise ConfigurationError(
                f"service answered {event.kind!r}: {event.get('message')}"
            )
        snapshot = event.get("snapshot")
        return snapshot if isinstance(snapshot, dict) else {"metrics": []}

    return asyncio.run(run())


def watch_and_stream(
    socket_path: str | os.PathLike,
    events_out: IO[str] | None = None,
    kinds: list[str] | None = None,
    limit: int | None = None,
) -> int:
    """Mirror the service's event feed as JSONL (the CLI ``watch`` body).

    Prints one line per event to ``events_out`` (default stdout — watch
    output *is* the result) until the server shuts down, the connection
    drops, or ``limit`` events have been seen.  Returns the number of
    events printed (excluding the ``watching`` acknowledgement).
    """
    out = events_out if events_out is not None else sys.stdout

    async def run() -> int:
        client = ServiceClient(socket_path)
        seen = 0
        async for event in client.watch(kinds=kinds):
            print(event.to_json(), file=out, flush=True)
            if event.kind != "watching":
                seen += 1
            if limit is not None and seen >= limit:
                break
        return seen

    return asyncio.run(run())
