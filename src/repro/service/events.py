"""The sweep service's JSONL event vocabulary.

Everything the service tells the outside world — progress, cache
behaviour, job lifecycle — is a stream of single-line JSON objects, one
:class:`Event` per line::

    {"event": "submitted",  "job": "job-1", "points": 8, "priority": 0, "seq": 0}
    {"event": "scheduled",  "job": "job-1", "points": 8, "seq": 1}
    {"event": "cache-hit",  "job": "job-1", "point": 0, "done": 1, "total": 8, "source": "disk", "seq": 2}
    {"event": "point-done", "job": "job-1", "point": 3, "done": 2, "total": 8, "elapsed_s": 0.12, "shared": false, "seq": 3}
    {"event": "job-done",   "job": "job-1", "status": "ok", "points": 8, "cache_hits": 1, "computed": 7, "shared": 0, "elapsed_s": 0.9, "seq": 4}
    {"event": "error",      "job": "job-1", "message": "...", "seq": 4}

The same format backs ``python -m repro sweep --progress`` (via
:func:`jsonl_progress`, minus the job/seq fields), so a consumer written
against the service's stream parses single-shot CLI sweeps unchanged.
Events go to **stderr** in the CLI; stdout stays reserved for results.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.base import PointTiming

__all__ = [
    "EVENT_KINDS",
    "Event",
    "jsonl_progress",
]

#: Every event kind the service emits, in rough lifecycle order.
EVENT_KINDS = (
    "submitted",   # job accepted into the queue
    "scheduled",   # job picked up; its grid is expanded and claimed
    "cache-hit",   # one point served without execution (disk or memory)
    "point-done",  # one point computed (possibly by another job: shared)
    "job-done",    # terminal: status ok / cancelled / error, with totals
    "error",       # a job failed; the message explains why
)


@dataclass(frozen=True)
class Event:
    """One service event: a ``kind`` plus its flat JSON payload."""

    kind: str
    data: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """Single-line JSON encoding (the wire/stderr format)."""
        return json.dumps(
            {"event": self.kind, **self.data}, separators=(",", ":"), default=repr
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        """Decode one JSONL line back into an :class:`Event`."""
        payload = json.loads(line)
        if not isinstance(payload, dict) or "event" not in payload:
            raise ValueError(f"not a service event: {line!r}")
        kind = payload.pop("event")
        return cls(kind=str(kind), data=payload)

    def __getitem__(self, key: str) -> object:
        return self.data[key]

    def get(self, key: str, default: object = None) -> object:
        return self.data.get(key, default)


def jsonl_progress(
    stream: IO[str] | None = None,
) -> Callable[[int, int, "PointTiming"], None]:
    """Progress callback emitting service-format JSONL events.

    Drop-in for :meth:`repro.sweep.ParameterSweep.run`'s ``progress``
    argument: every completed point becomes one ``cache-hit`` or
    ``point-done`` line on ``stream`` (default stderr), identical in
    shape to the sweep service's per-point events so the two streams
    share one parser.
    """
    out = stream if stream is not None else sys.stderr

    def callback(done: int, total: int, timing: "PointTiming") -> None:
        if timing.cached:
            event = Event(
                "cache-hit",
                {"point": timing.index, "done": done, "total": total,
                 "source": "disk"},
            )
        else:
            event = Event(
                "point-done",
                {"point": timing.index, "done": done, "total": total,
                 "elapsed_s": round(timing.elapsed_s, 6), "shared": False},
            )
        print(event.to_json(), file=out, flush=True)

    return callback
