"""Serialisable sweep submissions: what crosses the service's wire.

An arbitrary :class:`~repro.sweep.ParameterSweep` carries a Python
callable and cannot travel over a socket.  :class:`SweepSpec` is the
JSON-safe subset the remote service accepts: a channel-transmission
sweep described by machine / channel / variant / message bits plus the
grid, trials, and base seed.  ``build_sweep()`` turns a spec into a real
``ParameterSweep`` whose factory is a ``functools.partial`` over the
module-level :func:`sweep_point_metrics` — picklable for the parallel
executor and stably fingerprintable for the cache and dedup layers.

The channel-construction helpers here (:func:`build_channel`,
:data:`CHANNEL_DEFAULTS`, :func:`sweep_config`) are also what
``python -m repro transmit`` / ``sweep`` use, so the CLI's one-shot
sweeps and the service's jobs hit byte-identical factories — and
therefore share cache entries.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.bits import alternating_bits
from repro.channels.base import ChannelConfig
from repro.channels.eviction import MtEvictionChannel, NonMtEvictionChannel
from repro.channels.misalignment import (
    MISALIGN_DEFAULTS,
    MtMisalignmentChannel,
    NonMtMisalignmentChannel,
)
from repro.channels.power import (
    POWER_ITERATIONS,
    PowerEvictionChannel,
    PowerMisalignmentChannel,
)
from repro.channels.retirement import RetirementChannel
from repro.channels.slow_switch import SlowSwitchChannel
from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.specs import spec_by_name
from repro.sweep import ParameterSweep, SweepPoint

__all__ = [
    "CHANNEL_NAMES",
    "CHANNEL_DEFAULTS",
    "SweepSpec",
    "build_channel",
    "load_spec",
    "sweep_config",
    "sweep_point_metrics",
    "parse_param_axis",
]

#: Channel names accepted by ``transmit``/``sweep``/``submit``.
CHANNEL_NAMES = (
    "eviction",
    "misalignment",
    "slow-switch",
    "mt-eviction",
    "mt-misalignment",
    "mt-retirement",
    "power-eviction",
    "power-misalignment",
)

#: Per-channel default protocol parameters, mirroring each constructor's
#: ``config is None`` branch so sweep overrides start from the same
#: baseline as a plain ``transmit``.
CHANNEL_DEFAULTS: dict[str, dict] = {
    "eviction": {},
    "misalignment": dict(MISALIGN_DEFAULTS),
    "slow-switch": {},
    "mt-eviction": dict(MtEvictionChannel.MT_DEFAULTS),
    "mt-misalignment": dict(MtMisalignmentChannel.MT_DEFAULTS),
    "mt-retirement": dict(RetirementChannel.MT_DEFAULTS),
    "power-eviction": {"p": POWER_ITERATIONS, "q": POWER_ITERATIONS},
    "power-misalignment": {
        "p": POWER_ITERATIONS,
        "q": POWER_ITERATIONS,
        "d": 5,
        "M": 8,
    },
}


def build_channel(machine: Machine, name: str, variant: str, config=None):
    """Construct one covert channel by CLI name."""
    builders = {
        "eviction": lambda: NonMtEvictionChannel(machine, config, variant=variant),
        "misalignment": lambda: NonMtMisalignmentChannel(
            machine, config, variant=variant
        ),
        "slow-switch": lambda: SlowSwitchChannel(machine, config),
        "mt-eviction": lambda: MtEvictionChannel(machine, config),
        "mt-misalignment": lambda: MtMisalignmentChannel(machine, config),
        "mt-retirement": lambda: RetirementChannel(machine, config),
        "power-eviction": lambda: PowerEvictionChannel(
            machine, config, variant=variant
        ),
        "power-misalignment": lambda: PowerMisalignmentChannel(
            machine, config, variant=variant
        ),
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown channel {name!r}; choose from {sorted(builders)}"
        ) from None
    return builder()


def sweep_config(channel_name: str, overrides) -> ChannelConfig:
    """ChannelConfig for one grid point: channel defaults + overrides."""
    known = {f.name for f in dataclasses.fields(ChannelConfig)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown ChannelConfig parameter(s) {unknown}; choose from "
            f"{sorted(known)}"
        )
    merged = {**CHANNEL_DEFAULTS[channel_name], **dict(overrides)}
    try:
        return ChannelConfig(**merged)
    except TypeError as exc:
        # e.g. a string grid value for a numeric protocol parameter.
        raise ConfigurationError(
            f"invalid ChannelConfig for {channel_name}: {exc}"
        ) from exc


def sweep_point_metrics(
    machine_name: str, channel_name: str, variant: str, bits: int, point: SweepPoint
) -> dict:
    """Sweep factory: one channel transmission at one grid point.

    Module-level (and dispatched via :func:`functools.partial`) so the
    parallel executor can pickle it into worker processes and the cache
    fingerprint stays stable across CLI and service submissions.
    """
    machine = Machine(spec_by_name(machine_name), seed=point.seed)
    config = sweep_config(channel_name, point.values)
    channel = build_channel(machine, channel_name, variant, config)
    result = channel.transmit(alternating_bits(bits))
    return {"kbps": result.kbps, "error": result.error_rate}


def parse_param_axis(text: str) -> tuple[str, list]:
    """Parse one ``--param name=v1,v2,...`` grid axis."""
    name, sep, tail = text.partition("=")
    if not sep or not name or not tail:
        raise ConfigurationError(
            f"--param expects NAME=V1,V2,... (got {text!r})"
        )

    def parse_value(token: str):
        for caster in (int, float):
            try:
                return caster(token)
            except ValueError:
                continue
        return token

    return name, [parse_value(token) for token in tail.split(",")]


@dataclass(frozen=True)
class SweepSpec:
    """JSON-safe description of one channel-parameter sweep job."""

    grid: Mapping[str, Sequence[object]]
    machine: str = "Gold 6226"
    channel: str = "eviction"
    variant: str = "fast"
    bits: int = 32
    trials: int = 1
    base_seed: int = 0
    priority: int = 0
    label: str | None = None

    def __post_init__(self) -> None:
        if self.channel not in CHANNEL_NAMES:
            raise ConfigurationError(
                f"unknown channel {self.channel!r}; choose from "
                f"{sorted(CHANNEL_NAMES)}"
            )
        if not self.grid:
            raise ConfigurationError("sweep spec needs a non-empty grid")

    # ------------------------------------------------------------------
    def point_count(self) -> int:
        """Points this spec expands to: axis-length product × trials.

        Computed from the grid's axis lengths alone — no cross-product
        is materialised — so quota admission can bound a submission's
        cost *before* the server pays it.
        """
        count = int(self.trials)
        for values in self.grid.values():
            count *= len(values)
        return count

    def build_sweep(self) -> ParameterSweep:
        """Materialise the spec as a runnable :class:`ParameterSweep`."""
        factory = functools.partial(
            sweep_point_metrics, self.machine, self.channel, self.variant,
            int(self.bits),
        )
        return ParameterSweep(
            factory,
            {name: list(values) for name, values in self.grid.items()},
            trials=int(self.trials),
            base_seed=int(self.base_seed),
        )

    def to_dict(self) -> dict:
        """Plain-JSON form (the ``spec`` field of a ``submit`` request)."""
        return {
            "grid": {name: list(values) for name, values in self.grid.items()},
            "machine": self.machine,
            "channel": self.channel,
            "variant": self.variant,
            "bits": self.bits,
            "trials": self.trials,
            "base_seed": self.base_seed,
            "priority": self.priority,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(f"sweep spec must be an object: {payload!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown sweep spec field(s) {unknown}")
        grid = payload.get("grid")
        if not isinstance(grid, Mapping):
            raise ConfigurationError("sweep spec needs a grid object")
        return cls(**{**payload, "grid": {str(k): list(v) for k, v in grid.items()}})


def load_spec(payload: Mapping[str, object]):
    """Parse one JSON submit payload into a buildable spec.

    The single dispatch point shared by the socket server and WAL
    recovery, so a spec that was accepted over the wire always replays
    after a restart: a ``"scenario"`` key selects
    :class:`~repro.scenarios.sweep.ScenarioSweepSpec`, anything else is
    a plain :class:`SweepSpec`.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(f"sweep spec must be an object: {payload!r}")
    if "scenario" in payload:
        # Deferred import: scenarios sits above this module in the
        # layering, and only scenario submissions need it.
        from repro.scenarios.sweep import ScenarioSweepSpec

        return ScenarioSweepSpec.from_dict(payload)
    return SweepSpec.from_dict(payload)
