"""The long-running sweep service: queue + scheduler + event stream.

:class:`SweepService` is the in-process heart of service mode.  Clients
submit :class:`~repro.sweep.ParameterSweep` grids (with a priority) and
get a :class:`~repro.service.jobs.Job` back; worker tasks pull jobs off
the priority queue, claim their points through the deduplicating
:class:`~repro.service.scheduler.Scheduler`, and narrate everything as
:class:`~repro.service.events.Event` objects — per job (``job.events``,
``job.event_queue``) and to any number of service-wide subscribers.

Usage::

    async with SweepService(cache=ResultCache(".repro-cache")) as service:
        job = service.submit(sweep, priority=5)
        await job.wait()
        table = job.result()

The Unix-socket server (:mod:`repro.service.server`) is a thin network
shim over this class; tests and the tier-1 smoke benchmark drive it
directly, no sockets required.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import TYPE_CHECKING, Callable

from repro.exec.base import ExecutionStats, Executor, PointTiming
from repro.obs import MetricsRegistry, get_registry
from repro.service.events import Event
from repro.service.jobs import Job, JobQueue, JobStatus
from repro.service.scheduler import Resolution, Scheduler
from repro.service.store import JobStore, StoredJob, WalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import ResultCache
    from repro.sweep import ParameterSweep

__all__ = ["SweepService"]


class SweepService:
    """Asyncio sweep service with cross-job dedup and progress events.

    Parameters
    ----------
    executor / cache / batch_size:
        Forwarded to the :class:`Scheduler` (see its docstring).
    workers:
        Concurrent jobs.  More workers means more cross-job point
        overlap (and therefore more dedup wins); priorities order job
        *starts* whenever workers are scarcer than queued jobs.
    job_ttl_s:
        Retention of *terminal* jobs (done / cancelled / failed) in
        :attr:`jobs`, seconds.  ``None`` (the default) keeps every job
        forever — the pre-GC behaviour; a long-running service should
        set a TTL so job tables and event logs stop accumulating.
        Eviction is opportunistic (on submit and on job completion) plus
        explicit via :meth:`gc`.
    clock:
        Monotonic time source for TTL bookkeeping and job timing (tests
        inject a fake; the default is the metrics registry's clock,
        which is the host monotonic clock unless injected too).
    registry:
        The :class:`~repro.obs.MetricsRegistry` this service records
        into (queue depth, dedup counters, job latency); the ``{"op":
        "metrics"}`` verb snapshots it.  Defaults to the process
        registry.
    store:
        Optional :class:`~repro.service.store.JobStore` write-ahead
        log.  When attached, every spec-backed submission and state
        transition is logged, and :meth:`recover` resubmits the jobs a
        crashed predecessor left unfinished (their computed points
        replay from the shared cache).  In-process submissions of raw
        sweeps have no JSON spec to persist and are never logged.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        cache: "ResultCache | None" = None,
        batch_size: int = 8,
        workers: int = 2,
        job_ttl_s: float | None = None,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
        store: JobStore | None = None,
    ) -> None:
        if job_ttl_s is not None and job_ttl_s < 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"job_ttl_s must be >= 0 or None, got {job_ttl_s}"
            )
        self.queue = JobQueue()
        self.scheduler = Scheduler(
            executor=executor, cache=cache, batch_size=batch_size
        )
        self.workers = max(1, int(workers))
        self.job_ttl_s = job_ttl_s
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock if clock is not None else self.registry.clock
        self.store = store
        self.jobs: dict[str, Job] = {}
        self._next_job_id = 1
        self._seq = itertools.count()
        self._worker_tasks: list[asyncio.Task] = []
        #: ``(queue, client)`` pairs; ``client=None`` sees every event,
        #: a named client only its own jobs' (tenant-scoped watchers).
        self._subscribers: list[tuple[asyncio.Queue, str | None]] = []
        self._g_queue_depth = self.registry.gauge("service.queue_depth")
        self._h_job_latency = self.registry.histogram("service.job_latency_s")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "SweepService":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def start(self) -> None:
        """Spin up the scheduler and the worker tasks."""
        if self._worker_tasks:
            return
        self.scheduler.start()
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker(), name=f"sweep-worker-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel workers and the scheduler; close subscriber streams."""
        # Take ownership of both lists before the first await: a second
        # stop() racing this one must not cancel/close anything twice.
        tasks, self._worker_tasks = self._worker_tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        await self.scheduler.stop()
        subscribers, self._subscribers = self._subscribers, []
        for queue, _ in subscribers:
            queue.put_nowait(None)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        sweep: "ParameterSweep",
        priority: int = 0,
        label: str | None = None,
        *,
        client: str = "anonymous",
        spec_payload: dict | None = None,
        job_id: str | None = None,
        record: bool = True,
    ) -> Job:
        """Queue one sweep; returns immediately with the live job.

        ``client`` is the tenant identity fair-share scheduling and
        quotas key on; ``spec_payload`` is the JSON submit payload kept
        for WAL persistence (``None`` skips logging — a raw in-process
        sweep cannot be replayed after a restart).  ``job_id`` and
        ``record=False`` are recovery's hooks: resubmit under the
        original id without re-logging a job record the WAL already
        holds.
        """
        self.gc()
        if job_id is None:
            job_id = f"job-{self._next_job_id}"
            self._next_job_id += 1
        else:
            from repro.service.store import _job_index

            self._next_job_id = max(self._next_job_id, _job_index(job_id) + 1)
        job = Job(
            id=job_id,
            sweep=sweep,
            priority=int(priority),
            label=label,
            client=str(client),
            spec_payload=spec_payload,
        )
        self.jobs[job.id] = job
        if record and self.store is not None and spec_payload is not None:
            self.store.record_job(
                job.id,
                spec_payload,
                priority=job.priority,
                label=job.label,
                client=job.client,
            )
        self._emit(
            job,
            "submitted",
            points=len(sweep.points()),
            priority=job.priority,
            label=job.label,
            client=job.client,
        )
        self.queue.put(job)
        self.registry.counter("service.jobs_submitted").inc()
        self._g_queue_depth.set(len(self.queue))
        return job

    def active_jobs(self, client: str) -> int:
        """How many of ``client``'s jobs are queued or running."""
        return sum(
            1
            for job in self.jobs.values()
            if job.client == client and not job.status.terminal
        )

    def cancel(self, job_id: str) -> bool:
        """Request cancellation of a queued or running job."""
        job = self.jobs.get(job_id)
        if job is None or job.status.terminal:
            return False
        job.cancel()
        return True

    def subscribe(
        self, client: str | None = None
    ) -> "asyncio.Queue[Event | None]":
        """Service-wide event feed; ``None`` marks service shutdown.

        With ``client`` the feed carries only that tenant's jobs — the
        socket server scopes authenticated non-admin watchers this way,
        so one tenant cannot observe another's progress, labels, or
        result rows.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append((queue, client))
        return queue

    def unsubscribe(self, queue: "asyncio.Queue[Event | None]") -> None:
        """Detach one subscriber queue (watcher hung up).

        Without this, every disconnected ``watch`` client would leave a
        queue behind that :meth:`_emit` keeps filling forever.  Unknown
        queues are ignored — shutdown already cleared the list.
        """
        self._subscribers = [
            entry for entry in self._subscribers if entry[0] is not queue
        ]

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def gc(self, now: float | None = None) -> int:
        """Evict terminal jobs older than :attr:`job_ttl_s`.

        Dropping a job from :attr:`jobs` releases its result table and
        its whole event log; live jobs (queued or running) are never
        touched, and with ``job_ttl_s=None`` this is a no-op.  Returns
        the number of jobs evicted.  Runs opportunistically on every
        submit and job completion, so a busy service stays bounded
        without a background timer task.
        """
        if self.job_ttl_s is None:
            return 0
        if now is None:
            now = self._clock()
        expired = [
            job_id
            for job_id, job in self.jobs.items()
            if job.status.terminal
            and job.finished_at is not None
            and now - job.finished_at >= self.job_ttl_s
        ]
        for job_id in expired:
            del self.jobs[job_id]
        if expired and self.store is not None:
            # Evicted jobs must leave the WAL too, or the log would
            # replay ghosts the service no longer knows about.
            self._checkpoint()
        return len(expired)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def restore(self, state: WalState) -> list[Job]:
        """Resubmit a recovered WAL's pending jobs under their old ids.

        The id counter always advances to the log's watermark — even
        when nothing is pending — so a restarted service never reissues
        an id a cache entry or client transcript might still reference.
        A record whose JSON parsed but whose spec no longer loads (bit
        damage inside the payload, or a schema from another version) is
        skipped and counted in ``state.dropped`` — one bad record must
        cost one job, never crash-loop every restart until the WAL is
        hand-edited.
        """
        # Deferred: spec.py pulls in the channel/machine stack, which a
        # store-less in-process service never needs.
        from repro.service.spec import load_spec

        self._next_job_id = max(self._next_job_id, state.next_job_index)
        recovered: list[Job] = []
        for stored in state.pending():
            try:
                job = self.submit(
                    load_spec(stored.spec).build_sweep(),
                    priority=stored.priority,
                    label=stored.label,
                    client=stored.client,
                    spec_payload=dict(stored.spec),
                    job_id=stored.id,
                    record=False,
                )
            except Exception:
                state.dropped += 1
                continue
            recovered.append(job)
        return recovered

    async def recover(self) -> list[Job]:
        """Replay the WAL, resubmit unfinished jobs, compact the log.

        A no-op without a store.  Run it **before** :meth:`start`, so
        the restored queue is complete before workers begin consuming
        it (:class:`~repro.service.server.SweepServer` orders its
        startup this way).  The closing compaction folds the replayed
        history — torn tail, unloadable specs and all — into a clean
        log, so repeated crash/restart cycles cannot grow the WAL
        unboundedly; it runs on the event loop deliberately: WAL
        appends (:meth:`_record_state`) happen there too, so a running
        worker's append can never interleave with the rewrite and land
        in the replaced file.
        """
        if self.store is None:
            return []
        state = await asyncio.to_thread(self.store.replay)
        recovered = self.restore(state)
        self._checkpoint()
        if recovered:
            self.registry.counter("service.jobs_recovered").inc(len(recovered))
        if state.dropped:
            self.registry.counter("service.recover_dropped").inc(state.dropped)
        return recovered

    def _record_state(self, job: Job) -> None:
        """Log one job's current status; compact when the WAL is due."""
        if self.store is None or job.spec_payload is None:
            return
        self.store.record_state(job.id, job.status.value)
        if self.store.should_compact():
            self._checkpoint()

    def _store_entries(self) -> list[StoredJob]:
        """The retained spec-backed jobs, as compaction should write them."""
        return [
            StoredJob(
                id=job.id,
                spec=job.spec_payload,
                priority=job.priority,
                label=job.label,
                client=job.client,
                status=job.status.value,
            )
            for job in self.jobs.values()
            if job.spec_payload is not None
        ]

    def _checkpoint(self) -> None:
        if self.store is None:
            return
        self.store.compact(
            self._store_entries(), next_job_index=self._next_job_id
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit(self, job: Job | None, kind: str, **data) -> Event:
        payload = {"job": job.id if job is not None else None, **data}
        event = Event(kind, {**payload, "seq": next(self._seq)})
        if job is not None:
            job.events.append(event)
            job.event_queue.put_nowait(event)
            if kind == "job-done":
                job.event_queue.put_nowait(None)
        for queue, client in self._subscribers:
            if client is not None and (job is None or job.client != client):
                continue
            queue.put_nowait(event)
        return event

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            self._g_queue_depth.set(len(self.queue))
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        if job.cancel_requested:  # cancelled while queued: never starts
            self._finish(job, JobStatus.CANCELLED, points=0)
            return
        job.status = JobStatus.RUNNING
        self._record_state(job)
        start = self._clock()
        points = job.sweep.points()
        total = len(points)
        try:
            from repro.exec.canonical import callable_fingerprint

            fingerprint = callable_fingerprint(job.sweep.factory)
            self._emit(job, "scheduled", points=total)
            resolutions = self.scheduler.claim(
                job.id, points, job.sweep.factory, fingerprint
            )
        except Exception as exc:
            self._fail(job, exc, start)
            return
        self.registry.counter("service.points_claimed").inc(total)

        metrics_by_index: list = [None] * total
        timings: list[PointTiming] = []
        done = cache_hits = computed = shared = 0
        pending: dict[int, Resolution] = {}
        for index, resolution in enumerate(resolutions):
            if resolution.hit:
                metrics_by_index[index] = resolution.metrics
                timings.append(PointTiming(index=index, elapsed_s=0.0, cached=True))
                done += 1
                cache_hits += 1
                self.registry.counter(
                    "service.dedup_hits", source=resolution.source
                ).inc()
                self._emit(
                    job,
                    "cache-hit",
                    point=index,
                    done=done,
                    total=total,
                    source=resolution.source,
                )
            else:
                pending[index] = resolution

        cancel_wait = asyncio.ensure_future(job._cancel.wait())
        try:
            while pending:
                futures = {r.entry.future for r in pending.values()}
                await asyncio.wait(
                    futures | {cancel_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if job.cancel_requested:
                    for resolution in pending.values():
                        self.scheduler.release(resolution.entry)
                    self._finish(
                        job,
                        JobStatus.CANCELLED,
                        points=total,
                        done=done,
                        elapsed_s=self._clock() - start,
                    )
                    return
                failure: BaseException | None = None
                for index in [
                    i for i, r in list(pending.items()) if r.entry.future.done()
                ]:
                    resolution = pending.pop(index)
                    exc = resolution.entry.future.exception()
                    if exc is not None:
                        failure = exc
                        continue
                    metrics, elapsed = resolution.entry.future.result()
                    metrics_by_index[index] = metrics
                    timings.append(
                        PointTiming(index=index, elapsed_s=elapsed, cached=False)
                    )
                    done += 1
                    if resolution.entry.owner == job.id:
                        computed += 1
                        self.registry.counter("service.points_computed").inc()
                    else:
                        shared += 1
                        # Another job owned the computation: an in-flight
                        # dedup win, same family as the memory/disk hits.
                        self.registry.counter(
                            "service.dedup_hits", source="inflight"
                        ).inc()
                    self._emit(
                        job,
                        "point-done",
                        point=index,
                        done=done,
                        total=total,
                        elapsed_s=round(elapsed, 6),
                        shared=resolution.entry.owner != job.id,
                    )
                if failure is not None:
                    for resolution in pending.values():
                        self.scheduler.release(resolution.entry)
                    self._fail(job, failure, start)
                    return
        finally:
            cancel_wait.cancel()

        from repro.sweep import SweepResult

        try:
            table = job.sweep.build_table(
                [
                    SweepResult(point=points[i], metrics=metrics_by_index[i])
                    for i in range(total)
                ]
            )
        except Exception as exc:
            self._fail(job, exc, start)
            return
        elapsed_total = self._clock() - start
        job.table = table
        job.sweep.last_stats = job.stats = ExecutionStats(
            executor="service",
            jobs=self.workers,
            points=total,
            cache_hits=cache_hits,
            elapsed_s=elapsed_total,
            timings=sorted(timings, key=lambda t: t.index),
        )
        self._h_job_latency.observe(elapsed_total)
        self._finish(
            job,
            JobStatus.DONE,
            points=total,
            cache_hits=cache_hits,
            computed=computed,
            shared=shared,
            elapsed_s=round(elapsed_total, 6),
        )

    def _finish(self, job: Job, status: JobStatus, **data) -> None:
        job.finish(status, at=self._clock())
        self._record_state(job)
        self.registry.counter("service.jobs_finished", status=status.value).inc()
        self._emit(job, "job-done", status=status.value, **data)
        self.gc()

    def _fail(self, job: Job, exc: BaseException, start: float) -> None:
        job.error = f"{type(exc).__name__}: {exc}"
        self._emit(job, "error", message=job.error)
        job.finish(JobStatus.FAILED, at=self._clock())
        self._record_state(job)
        self.registry.counter(
            "service.jobs_finished", status=JobStatus.FAILED.value
        ).inc()
        self._emit(
            job,
            "job-done",
            status=JobStatus.FAILED.value,
            message=job.error,
            elapsed_s=round(self._clock() - start, 6),
        )
        self.gc()
