"""Jobs and the fair-share queue feeding the sweep service.

A :class:`Job` is one submitted :class:`~repro.sweep.ParameterSweep`
plus its lifecycle: queued -> running -> done / cancelled / failed.  The
:class:`JobQueue` hands queued jobs to the service's workers
round-robin across clients (so one tenant's backlog cannot starve
another's single job), highest priority first within a client (FIFO
within a priority), and cancellation works at any stage — a queued job
never starts, a running job stops at the next point boundary.
"""

from __future__ import annotations

import asyncio
import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.service.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.base import ExecutionStats
    from repro.sweep import ParameterSweep, SweepTable

__all__ = ["JobStatus", "Job", "JobQueue"]


class JobStatus(str, enum.Enum):
    """Lifecycle states of a submitted sweep."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "ok"
    CANCELLED = "cancelled"
    FAILED = "error"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.CANCELLED, JobStatus.FAILED)


@dataclass
class Job:
    """One submitted sweep and everything the service learns about it."""

    id: str
    sweep: "ParameterSweep"
    priority: int = 0
    label: str | None = None
    #: Tenant that submitted the job (fair-share and quota identity).
    client: str = "anonymous"
    #: The JSON submit payload, kept for WAL persistence; ``None`` for
    #: in-process submissions of raw sweeps (which cannot be replayed
    #: after a restart and are therefore never logged).
    spec_payload: dict | None = None
    status: JobStatus = JobStatus.QUEUED
    #: Populated on success.
    table: "SweepTable | None" = None
    stats: "ExecutionStats | None" = None
    #: Populated on failure.
    error: str | None = None
    #: Every event emitted for this job, in emission order.
    events: list[Event] = field(default_factory=list)
    #: Live event feed (one reader); ``None`` is the end-of-stream mark.
    event_queue: "asyncio.Queue[Event | None]" = field(
        default_factory=asyncio.Queue
    )
    #: Monotonic timestamp of the terminal transition (service clock);
    #: ``None`` while the job is live.  Drives TTL-based job GC.
    finished_at: float | None = None
    _cancel: asyncio.Event = field(default_factory=asyncio.Event)
    _finished: asyncio.Event = field(default_factory=asyncio.Event)

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cancellation; takes effect at the next point boundary."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    async def wait(self) -> JobStatus:
        """Block until the job reaches a terminal status."""
        await self._finished.wait()
        return self.status

    def result(self) -> "SweepTable":
        """The finished job's table; raises if it did not complete."""
        if self.status is not JobStatus.DONE or self.table is None:
            raise ConfigurationError(
                f"job {self.id} has no result (status: {self.status.value})"
            )
        return self.table

    def finish(self, status: JobStatus, at: float | None = None) -> None:
        """Mark terminal state and release every waiter."""
        self.status = status
        self.finished_at = at
        self._finished.set()


class JobQueue:
    """Fair-share queue of submitted jobs (await-able, cancellation-aware).

    One priority heap per client, served round-robin by
    least-recently-served: each :meth:`get` picks the client that has
    waited longest since its last dequeue (ties broken by name, so the
    order is deterministic) and pops that client's best job — higher
    ``priority`` first, submission order within a priority.  A single
    client therefore degenerates to the plain priority queue, while a
    tenant with a thousand queued jobs still yields every other turn to
    a tenant with one.  Cross-tenant, fairness deliberately outranks
    priority: a tenant cannot jump another's turn by inflating its
    priorities (admission quotas live in
    :class:`~repro.service.auth.AuthPolicy`).

    Jobs cancelled while queued are still handed out (so the service
    can emit their terminal event) but are never executed.
    """

    def __init__(self) -> None:
        self._heaps: dict[str, list[tuple[int, int, Job]]] = {}
        self._last_served: dict[str, int] = {}
        self._seq = itertools.count()
        self._turns = itertools.count()
        self._available = asyncio.Event()

    def put(self, job: Job) -> None:
        self._heaps.setdefault(job.client, [])
        heapq.heappush(
            self._heaps[job.client], (-job.priority, next(self._seq), job)
        )
        self._available.set()

    async def get(self) -> Job:
        """Wait for, then pop, the next job under fair-share order."""
        while not self._heaps:
            self._available.clear()
            await self._available.wait()
        client = min(
            self._heaps, key=lambda name: (self._last_served.get(name, -1), name)
        )
        heap = self._heaps[client]
        _, _, job = heapq.heappop(heap)
        # The serve stamp outlives a drained heap on purpose: a client
        # that resubmits right after its queue empties resumes its slot
        # in the rotation instead of re-entering as "never served" and
        # cutting ahead of tenants still waiting their turn.
        self._last_served[client] = next(self._turns)
        if not heap:
            del self._heaps[client]
        return job

    def __len__(self) -> int:
        return sum(len(heap) for heap in self._heaps.values())
