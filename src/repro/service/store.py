"""Crash-safe persistence for the sweep service: a JSONL write-ahead log.

:class:`JobStore` records every spec-backed submission and every job
state transition as one appended, flushed JSON line, so a ``serve
--state-dir`` process that dies — including via ``SIGKILL`` — can
rebuild its queue on restart: :meth:`replay` folds the log into a
:class:`WalState`, whose non-terminal jobs the service resubmits under
their original ids.  Point *results* are not duplicated here; they live
in the shared :class:`~repro.exec.cache.ResultCache`, which is what
makes a recovered job resume (all previously computed points replay as
cache hits) instead of restarting.

The log is torn-tail tolerant by construction.  Records are only ever
appended, each line is self-contained, and the final line is dropped
when it lacks its trailing newline or fails to parse — exactly the
states a mid-``write`` crash can leave behind.  Corrupt interior lines
are skipped (and counted) rather than aborting recovery.

Three record kinds::

    {"record": "meta",  "next_job_index": 7}
    {"record": "job",   "id": "job-3", "spec": {...}, "priority": 0,
     "label": null, "client": "alice"}
    {"record": "state", "id": "job-3", "status": "running"}

Compaction (:meth:`compact`) rewrites the log to one ``meta`` line plus
the records of the jobs still retained by the service, via the same
tmp-file + :func:`os.replace` idiom as :meth:`ResultCache.store` — a
reader sees either the old log or the new one, never a half-written
file.  The ``meta`` record preserves the job-id counter across
compactions so terminal jobs can be dropped without ever reissuing an
id that a cache entry or a client transcript might still reference.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.service.jobs import JobStatus

__all__ = ["JobStore", "StoredJob", "WalState", "TERMINAL_STATUSES"]

#: Job statuses that replay as "nothing left to do".
TERMINAL_STATUSES = frozenset(
    status.value for status in JobStatus if status.terminal
)


@dataclass
class StoredJob:
    """One job as the write-ahead log knows it."""

    id: str
    spec: dict
    priority: int = 0
    label: str | None = None
    client: str = "anonymous"
    status: str = JobStatus.QUEUED.value

    @property
    def pending(self) -> bool:
        """Does this job still need to run after a restart?"""
        return self.status not in TERMINAL_STATUSES


@dataclass
class WalState:
    """Everything :meth:`JobStore.replay` recovers from the log."""

    #: Job id -> last recorded state, in first-record order.
    jobs: dict[str, StoredJob]
    #: Next job index to issue (``job-N``); never reuses a logged id.
    next_job_index: int = 1
    #: Records applied.
    records: int = 0
    #: Lines dropped as torn, corrupt, or orphaned.
    dropped: int = 0

    def pending(self) -> list[StoredJob]:
        """Jobs to resubmit, in original submission order."""
        return [job for job in self.jobs.values() if job.pending]


def _job_index(job_id: str) -> int:
    """The N of a ``job-N`` id; 0 for ids minted elsewhere."""
    prefix, _, tail = job_id.partition("-")
    if prefix == "job" and tail.isdigit():
        return int(tail)
    return 0


class JobStore:
    """Append-only JSONL WAL of job specs and state transitions.

    Parameters
    ----------
    state_dir:
        Directory holding the log (created on first append).  One store
        per directory; the service owns it exclusively.
    compact_every:
        Appends between automatic compactions (the service checks
        :meth:`should_compact` after each terminal transition).
    fsync:
        Force each append through to the device.  The default relies on
        the OS page cache, which survives process death — the fault
        model the service defends against; flip it on when the state
        directory must also survive power loss.
    """

    WAL_NAME = "jobs.wal"

    def __init__(
        self,
        state_dir: str | os.PathLike,
        *,
        compact_every: int = 512,
        fsync: bool = False,
    ) -> None:
        if compact_every < 1:
            raise ConfigurationError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.state_dir = Path(state_dir)
        self.path = self.state_dir / self.WAL_NAME
        self.compact_every = int(compact_every)
        self.fsync = bool(fsync)
        self._appended = 0
        self._handle: IO[str] | None = None

    # -- appending ------------------------------------------------------
    def record_job(
        self,
        job_id: str,
        spec: Mapping[str, object],
        *,
        priority: int = 0,
        label: str | None = None,
        client: str = "anonymous",
    ) -> None:
        """Log one accepted submission (its JSON spec travels whole)."""
        self._append(
            {
                "record": "job",
                "id": str(job_id),
                "spec": dict(spec),
                "priority": int(priority),
                "label": label,
                "client": str(client),
            }
        )

    def record_state(self, job_id: str, status: str) -> None:
        """Log one state transition (``running``, ``ok``, ...)."""
        self._append({"record": "state", "id": str(job_id), "status": str(status)})

    def should_compact(self) -> bool:
        return self._appended >= self.compact_every

    def _append(self, payload: dict) -> None:
        if self._handle is None or self._handle.closed:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._appended += 1

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None and not handle.closed:
            handle.close()

    # -- recovery -------------------------------------------------------
    def replay(self) -> WalState:
        """Fold the log into a :class:`WalState`; never raises on damage.

        The final line is discarded when it lacks a trailing newline (a
        torn append); any line that fails to decode, or a ``state``
        record whose job record is gone, is counted in ``dropped`` and
        skipped.  Because records are append-only, truncation can only
        lose a *suffix* — every surviving record is consistent with the
        prefix that produced it.
        """
        state = WalState(jobs={})
        try:
            data = self.path.read_bytes()
        except (FileNotFoundError, OSError):
            return state
        body, newline, tail = data.rpartition(b"\n")
        if tail:
            state.dropped += 1  # torn final record: mid-append crash
        if not newline:
            return state
        for line in body.split(b"\n"):
            if not line.strip():
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                state.dropped += 1
                continue
            if not isinstance(payload, dict):
                state.dropped += 1
                continue
            if self._apply(state, payload):
                state.records += 1
            else:
                state.dropped += 1
        return state

    @staticmethod
    def _apply(state: WalState, payload: dict) -> bool:
        kind = payload.get("record")
        if kind == "meta":
            index = payload.get("next_job_index")
            if not isinstance(index, int) or index < 1:
                return False
            state.next_job_index = max(state.next_job_index, index)
            return True
        if kind == "job":
            job_id = payload.get("id")
            spec = payload.get("spec")
            if not isinstance(job_id, str) or not isinstance(spec, dict):
                return False
            label = payload.get("label")
            priority = payload.get("priority")
            state.jobs[job_id] = StoredJob(
                id=job_id,
                spec=spec,
                priority=priority if isinstance(priority, int) else 0,
                label=str(label) if label is not None else None,
                client=str(payload.get("client") or "anonymous"),
            )
            state.next_job_index = max(
                state.next_job_index, _job_index(job_id) + 1
            )
            return True
        if kind == "state":
            job_id = payload.get("id")
            status = payload.get("status")
            job = state.jobs.get(job_id) if isinstance(job_id, str) else None
            if job is None or not isinstance(status, str):
                return False  # orphaned transition (its job line was lost)
            job.status = status
            return True
        return False  # unknown record kind: a newer writer's extension

    # -- compaction -----------------------------------------------------
    def compact(
        self, entries: Iterable[StoredJob], *, next_job_index: int = 1
    ) -> None:
        """Atomically rewrite the log to ``meta`` + ``entries``.

        Same idiom as :meth:`ResultCache.store`: write a sibling tmp
        file, flush+fsync it, then :func:`os.replace` over the log — a
        crash at any instant leaves either the old log or the new one.
        """
        self.close()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(
                {"record": "meta", "next_job_index": max(1, int(next_job_index))},
                separators=(",", ":"),
                sort_keys=True,
            )
        ]
        for job in entries:
            lines.append(
                json.dumps(
                    {
                        "record": "job",
                        "id": job.id,
                        "spec": dict(job.spec),
                        "priority": int(job.priority),
                        "label": job.label,
                        "client": job.client,
                    },
                    separators=(",", ":"),
                    sort_keys=True,
                )
            )
            if job.status != JobStatus.QUEUED.value:
                lines.append(
                    json.dumps(
                        {"record": "state", "id": job.id, "status": job.status},
                        separators=(",", ":"),
                        sort_keys=True,
                    )
                )
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._appended = 0
