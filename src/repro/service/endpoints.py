"""Socket endpoints: one grammar for Unix paths and TCP host:port pairs.

The JSONL protocols in this repository (the sweep service's
``serve``/``submit``/``watch`` front door and the cluster fabric's
coordinator/worker link) are transport-agnostic: the same
newline-delimited JSON flows over a Unix domain socket or a TCP
connection.  This module owns the *naming* of those transports so every
CLI flag and constructor accepts the same strings:

* ``unix:///path/to.sock`` or any string with a ``/`` (or no port
  suffix) — a Unix domain socket path;
* ``tcp://host:port`` or a bare ``host:port`` — a TCP endpoint.

A Unix socket keeps traffic machine-local and permission-guarded by the
filesystem; TCP opens the protocol to other hosts, which is what the
cluster fabric needs — see ``docs/distributed.md`` for the security
caveats that come with that (bind to loopback or a trusted network).
"""

from __future__ import annotations

import asyncio
import os
import re
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Endpoint", "parse_endpoint", "start_endpoint_server", "open_endpoint"]

#: StreamReader line limit for the JSONL protocols.  Shard messages
#: carry whole point batches, so the default 64 KiB is too tight.
LINE_LIMIT = 8 * 1024 * 1024

_TCP_RE = re.compile(r"^(?P<host>\[[0-9A-Fa-f:]+\]|[^/:]+):(?P<port>\d{1,5})$")


@dataclass(frozen=True)
class Endpoint:
    """One parsed socket address: TCP ``host:port`` or a Unix path."""

    scheme: str  # "tcp" | "unix"
    host: str | None = None
    port: int | None = None
    path: str | None = None

    @property
    def is_tcp(self) -> bool:
        return self.scheme == "tcp"

    def __str__(self) -> str:
        if self.is_tcp:
            return f"tcp://{self.host}:{self.port}"
        return str(self.path)


def parse_endpoint(text: str) -> Endpoint:
    """Parse one endpoint string (see module docstring for the grammar)."""
    text = str(text).strip()
    if not text:
        raise ConfigurationError("endpoint must not be empty")
    if text.startswith("unix://"):
        return Endpoint(scheme="unix", path=text[len("unix://"):])
    if text.startswith("tcp://"):
        rest = text[len("tcp://"):]
        match = _TCP_RE.match(rest)
        if match is None:
            raise ConfigurationError(
                f"tcp endpoint must look like tcp://HOST:PORT, got {text!r}"
            )
    else:
        match = _TCP_RE.match(text)
        if match is None:  # no host:port shape: a Unix socket path
            return Endpoint(scheme="unix", path=text)
    host = match.group("host").strip("[]")
    port = int(match.group("port"))
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port must be 0..65535, got {port}")
    return Endpoint(scheme="tcp", host=host, port=port)


async def start_endpoint_server(handler, endpoint: Endpoint) -> tuple[asyncio.AbstractServer, Endpoint]:
    """Start an asyncio stream server on ``endpoint``.

    Returns ``(server, bound)`` where ``bound`` carries the actual
    address — for ``port=0`` TCP binds, the kernel-assigned port.
    """
    if endpoint.is_tcp:
        server = await asyncio.start_server(
            handler, host=endpoint.host, port=endpoint.port, limit=LINE_LIMIT
        )
        port = server.sockets[0].getsockname()[1]
        return server, Endpoint(scheme="tcp", host=endpoint.host, port=port)
    await asyncio.to_thread(_remove_stale_socket, str(endpoint.path))
    server = await asyncio.start_unix_server(
        handler, path=endpoint.path, limit=LINE_LIMIT
    )
    return server, endpoint


def _remove_stale_socket(path: str) -> None:
    """Unlink a leftover socket file so a restarted server can rebind.

    Only socket files are removed — anything else at the path is a
    configuration error better surfaced by the bind failing.
    """
    import stat

    try:
        mode = os.stat(path).st_mode
    except OSError:
        return
    if stat.S_ISSOCK(mode):
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced with another server
            pass


async def open_endpoint(
    endpoint: Endpoint,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open one stream connection to ``endpoint``."""
    if endpoint.is_tcp:
        return await asyncio.open_connection(
            endpoint.host, endpoint.port, limit=LINE_LIMIT
        )
    return await asyncio.open_unix_connection(endpoint.path, limit=LINE_LIMIT)
