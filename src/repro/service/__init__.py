"""Sweep service: an async job queue over the execution layer.

Turns the sweep engine into a servable system: a long-running
:class:`SweepService` accepts prioritised grid submissions, expands them
to canonical points, **dedupes identical points across concurrent
jobs**, consults the shared :class:`~repro.exec.cache.ResultCache`
before dispatching anything, and batches the remainder onto the
existing executors — all while narrating progress as a JSONL
:class:`Event` stream.

Layers (bottom up):

* :mod:`repro.service.scheduler` — point claiming, cross-job dedup,
  cache consults, batched dispatch onto
  :meth:`~repro.exec.base.Executor.compute_stream`;
* :mod:`repro.service.jobs` — :class:`Job` lifecycle and the
  fair-share :class:`JobQueue`;
* :mod:`repro.service.store` — the :class:`JobStore` write-ahead log
  behind ``serve --state-dir`` crash recovery;
* :mod:`repro.service.auth` — :class:`AuthPolicy` token auth and
  per-client quotas (``serve --auth``);
* :mod:`repro.service.service` — the :class:`SweepService` facade;
* :mod:`repro.service.events` — the JSONL event vocabulary (shared
  with ``repro sweep --progress`` and the cluster coordinator);
* :mod:`repro.service.endpoints` — the endpoint grammar (Unix socket
  paths and ``tcp://host:port``), shared with the cluster fabric;
* :mod:`repro.service.spec` — :class:`SweepSpec`, the JSON-safe
  submission format, plus the channel-sweep factory;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  socket protocol behind ``python -m repro serve`` / ``submit`` /
  ``watch``.

See ``docs/service.md`` for the architecture and event schema.
"""

from repro.service.auth import AuthPolicy, ClientAccount, Denial, Quota
from repro.service.endpoints import Endpoint, parse_endpoint
from repro.service.events import EVENT_KINDS, Event, jsonl_progress
from repro.service.jobs import Job, JobQueue, JobStatus
from repro.service.scheduler import Scheduler
from repro.service.server import SweepServer
from repro.service.service import SweepService
from repro.service.spec import SweepSpec, load_spec
from repro.service.store import JobStore, StoredJob, WalState
from repro.service.client import (
    ServiceClient,
    ServiceDeniedError,
    ServiceError,
    ServiceProtocolError,
    ServiceQuotaError,
    ServiceTimeoutError,
    submit_and_stream,
    watch_and_stream,
)

__all__ = [
    "AuthPolicy",
    "ClientAccount",
    "Denial",
    "EVENT_KINDS",
    "Endpoint",
    "Event",
    "jsonl_progress",
    "Job",
    "JobQueue",
    "JobStatus",
    "JobStore",
    "load_spec",
    "parse_endpoint",
    "Quota",
    "Scheduler",
    "ServiceClient",
    "ServiceDeniedError",
    "ServiceError",
    "ServiceProtocolError",
    "ServiceQuotaError",
    "ServiceTimeoutError",
    "StoredJob",
    "SweepServer",
    "SweepService",
    "SweepSpec",
    "submit_and_stream",
    "watch_and_stream",
    "WalState",
]
