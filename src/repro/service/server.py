"""Unix-socket front door for the sweep service (JSONL protocol).

One request per connection, newline-delimited JSON both ways:

* ``{"op": "submit", "spec": {...}}`` — validate the
  :class:`~repro.service.spec.SweepSpec`, queue it, then stream the
  job's events until ``job-done`` (which is enriched with the result
  rows so clients can render the table without a second round trip);
* ``{"op": "cancel", "job": "job-3"}`` — request cancellation; answers
  ``{"event": "cancel", "job": ..., "ok": true/false}``;
* ``{"op": "ping"}`` — liveness check, answers ``{"event": "pong"}``
  with queue/scheduler counters.

A Unix socket (not TCP) keeps the service machine-local and permission
-guarded by the filesystem; the protocol itself is transport-agnostic.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.errors import ConfigurationError, ReproError
from repro.service.events import Event
from repro.service.service import SweepService
from repro.service.spec import SweepSpec

__all__ = ["SweepServer"]


class SweepServer:
    """Serves one :class:`SweepService` over a Unix domain socket."""

    def __init__(self, service: SweepService, socket_path: str | os.PathLike) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    def _prepare_socket_path(self) -> None:
        """Clear a stale socket and ensure its directory exists.

        Synchronous filesystem work, so it runs in a worker thread: a
        slow/network filesystem must not stall the event loop (and the
        async-blocking lint rule holds the service to that).
        """
        if self.socket_path.exists():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)

    async def start(self) -> None:
        await asyncio.to_thread(self._prepare_socket_path)
        self.service.start()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()
        await asyncio.to_thread(self.socket_path.unlink, missing_ok=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro serve`` loop)."""
        await self.start()
        try:
            assert self._server is not None
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                op = request.get("op")
                if op == "submit":
                    await self._handle_submit(request, writer)
                elif op == "cancel":
                    await self._send(
                        writer,
                        Event(
                            "cancel",
                            {
                                "job": request.get("job"),
                                "ok": self.service.cancel(str(request.get("job"))),
                            },
                        ),
                    )
                elif op == "ping":
                    await self._send(
                        writer,
                        Event(
                            "pong",
                            {
                                "jobs": len(self.service.jobs),
                                "queued": len(self.service.queue),
                                "executions": self.service.scheduler.executions,
                            },
                        ),
                    )
                else:
                    raise ValueError(f"unknown op {op!r}")
            except (ValueError, ReproError) as exc:
                await self._send(writer, Event("error", {"message": str(exc)}))
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_submit(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        spec_payload = request.get("spec")
        if not isinstance(spec_payload, dict):
            raise ConfigurationError("submit request needs a spec object")
        spec = SweepSpec.from_dict(spec_payload)
        job = self.service.submit(
            spec.build_sweep(), priority=spec.priority, label=spec.label
        )
        # job.event_queue carries every event from "submitted" onwards
        # (the job is created inside submit(), before any emission), so
        # draining it until the sentinel streams the full history.
        while True:
            event = await job.event_queue.get()
            if event is None:
                break
            if event.kind == "job-done" and job.table is not None:
                event = Event(
                    event.kind,
                    {
                        **event.data,
                        "parameters": list(job.table.parameter_names),
                        "metrics": list(job.table.metric_names),
                        "rows": job.table.rows(),
                    },
                )
            await self._send(writer, event)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, event: Event) -> None:
        writer.write(event.to_json().encode() + b"\n")
        await writer.drain()
