"""Socket front door for the sweep service (JSONL protocol).

One request per connection, newline-delimited JSON both ways:

* ``{"op": "submit", "spec": {...}}`` — validate the
  :class:`~repro.service.spec.SweepSpec`, queue it, then stream the
  job's events until ``job-done`` (which is enriched with the result
  rows so clients can render the table without a second round trip);
* ``{"op": "cancel", "job": "job-3"}`` — request cancellation; answers
  ``{"event": "cancel", "job": ..., "ok": true/false}``.  Under an
  auth policy only the submitting tenant (or an admin account) may
  cancel a job — anyone else gets a ``deny`` frame (``not-owner``);
* ``{"op": "ping"}`` — liveness check, answers ``{"event": "pong"}``
  with queue/scheduler counters;
* ``{"op": "metrics"}`` — answers ``{"event": "metrics"}`` carrying the
  deterministic snapshot of the service process's
  :class:`~repro.obs.MetricsRegistry` (exec, service, and — when the
  executor is distributed — cluster instruments; see
  ``docs/observability.md``);
* ``{"op": "watch"}`` — subscribe to the service event feed: after an
  initial ``watching`` acknowledgement, events stream to the client
  until it hangs up or the service stops (the stream then ends
  cleanly).  Any number of watchers may be connected at once; an
  optional ``"kinds": [...]`` list filters the stream.  Under an auth
  policy the feed is tenant-scoped — a non-admin account sees only its
  own jobs' events; admin accounts see every tenant's.

The primary listener is a Unix domain socket — machine-local and
permission-guarded by the filesystem.  An *additional* TCP listener can
be enabled (``tcp="host:port"``) for remote monitoring and submission;
the protocol is identical, and both listeners honour the same optional
:class:`~repro.service.auth.AuthPolicy`: every request may carry a
``"token"`` key, an unacceptable token answers ``{"event": "deny"}``,
and a submission over the account's quota answers ``{"event":
"quota-exceeded"}`` (with ``retry_after_s`` for rate denials).  Without
a policy the Unix socket relies on filesystem permissions as before —
but see ``docs/distributed.md`` (and ``docs/service.md``) before
binding TCP beyond loopback.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.errors import ConfigurationError, ReproError
from repro.service.auth import AuthPolicy, ClientAccount, Denial
from repro.service.endpoints import (
    LINE_LIMIT,
    Endpoint,
    parse_endpoint,
    start_endpoint_server,
)
from repro.service.events import Event
from repro.service.service import SweepService
from repro.service.spec import load_spec

__all__ = ["SweepServer"]


class SweepServer:
    """Serves one :class:`SweepService` over a Unix socket (and optional TCP)."""

    def __init__(
        self,
        service: SweepService,
        socket_path: str | os.PathLike,
        tcp: str | None = None,
        auth: AuthPolicy | None = None,
    ) -> None:
        self.service = service
        self.auth = auth
        self.socket_path = Path(socket_path)
        self._server: asyncio.AbstractServer | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self.tcp_endpoint = parse_endpoint(tcp) if tcp else None
        if self.tcp_endpoint is not None and not self.tcp_endpoint.is_tcp:
            raise ConfigurationError(
                f"tcp listener needs a host:port endpoint, got {tcp!r}"
            )
        #: Bound TCP address after :meth:`start` (resolves port 0).
        self.tcp_address: Endpoint | None = None

    # ------------------------------------------------------------------
    def _prepare_socket_path(self) -> None:
        """Clear a stale socket and ensure its directory exists.

        Synchronous filesystem work, so it runs in a worker thread: a
        slow/network filesystem must not stall the event loop (and the
        async-blocking lint rule holds the service to that).
        """
        if self.socket_path.exists():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)

    async def start(self) -> None:
        await asyncio.to_thread(self._prepare_socket_path)
        # Recover before the workers spin up and before listening: the
        # restored queue must not be consumed (appending new WAL state
        # records) while recovery's closing compaction rewrites the
        # log, and a client connecting right after the restart must
        # already see the predecessor's unfinished jobs.
        await self.service.recover()
        self.service.start()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=LINE_LIMIT
        )
        if self.tcp_endpoint is not None:
            self._tcp_server, self.tcp_address = await start_endpoint_server(
                self._handle, self.tcp_endpoint
            )

    async def stop(self) -> None:
        # Detach both listeners before the first await so a concurrent
        # stop() (or a serve_forever() waking up) sees them gone at once.
        servers = (self._server, self._tcp_server)
        self._server = None
        self._tcp_server = None
        for server in servers:
            if server is not None:
                server.close()
                await server.wait_closed()
        await self.service.stop()
        await asyncio.to_thread(self.socket_path.unlink, missing_ok=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro serve`` loop)."""
        await self.start()
        try:
            assert self._server is not None
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                account: ClientAccount | None = None
                if self.auth is not None:
                    outcome = self.auth.authenticate(request.get("token"))
                    if isinstance(outcome, Denial):
                        await self._refuse(writer, outcome)
                        return
                    account = outcome
                op = request.get("op")
                if op == "submit":
                    await self._handle_submit(request, writer, account)
                elif op == "cancel":
                    await self._handle_cancel(request, writer, account)
                elif op == "ping":
                    await self._send(
                        writer,
                        Event(
                            "pong",
                            {
                                "jobs": len(self.service.jobs),
                                "queued": len(self.service.queue),
                                "executions": self.service.scheduler.executions,
                                "watchers": self.service.subscriber_count,
                            },
                        ),
                    )
                elif op == "metrics":
                    await self._send(
                        writer,
                        Event(
                            "metrics",
                            {"snapshot": self.service.registry.snapshot()},
                        ),
                    )
                elif op == "watch":
                    await self._handle_watch(request, writer, account)
                else:
                    raise ValueError(f"unknown op {op!r}")
            except (ValueError, ReproError) as exc:
                await self._send(writer, Event("error", {"message": str(exc)}))
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_submit(
        self,
        request: dict,
        writer: asyncio.StreamWriter,
        account: ClientAccount | None = None,
    ) -> None:
        spec_payload = request.get("spec")
        if not isinstance(spec_payload, dict):
            raise ConfigurationError("submit request needs a spec object")
        spec = load_spec(spec_payload)
        if self.auth is not None and account is not None:
            # Admit on the grid's axis-length product, *before*
            # build_sweep() materialises the cross-product: the points
            # quota must bound the expansion cost, not audit a
            # potentially huge list the server already paid for.
            denial = self.auth.admit_submit(
                account,
                points=spec.point_count(),
                active_jobs=self.service.active_jobs(account.name),
            )
            if denial is not None:
                await self._refuse(writer, denial)
                return
        sweep = spec.build_sweep()
        job = self.service.submit(
            sweep,
            priority=spec.priority,
            label=spec.label,
            client=account.name if account is not None else "anonymous",
            spec_payload=dict(spec_payload),
        )
        # job.event_queue carries every event from "submitted" onwards
        # (the job is created inside submit(), before any emission), so
        # draining it until the sentinel streams the full history.
        while True:
            event = await job.event_queue.get()
            if event is None:
                break
            if event.kind == "job-done" and job.table is not None:
                event = Event(
                    event.kind,
                    {
                        **event.data,
                        "parameters": list(job.table.parameter_names),
                        "metrics": list(job.table.metric_names),
                        "rows": job.table.rows(),
                    },
                )
            await self._send(writer, event)

    async def _handle_cancel(
        self,
        request: dict,
        writer: asyncio.StreamWriter,
        account: ClientAccount | None = None,
    ) -> None:
        """Cancel a job — but only the requesting tenant's own.

        Job ids are predictable (``job-1``, ``job-2``, ...), so without
        the ownership check any authenticated client could kill every
        other tenant's work with a trivial id sweep.  Another tenant's
        job answers a ``deny`` frame (``not-owner``); admin accounts
        may cancel anything.  Unknown ids answer ``ok: false`` as
        before.
        """
        job_id = str(request.get("job"))
        if account is not None and not account.admin:
            job = self.service.jobs.get(job_id)
            if job is not None and job.client != account.name:
                await self._refuse(
                    writer,
                    Denial(
                        kind="deny",
                        reason="not-owner",
                        message=(
                            f"job {job_id} belongs to another tenant; only "
                            "its submitter (or an admin account) may cancel "
                            "it"
                        ),
                    ),
                )
                return
        await self._send(
            writer,
            Event(
                "cancel",
                {"job": job_id, "ok": self.service.cancel(job_id)},
            ),
        )

    async def _handle_watch(
        self,
        request: dict,
        writer: asyncio.StreamWriter,
        account: ClientAccount | None = None,
    ) -> None:
        """Stream the service event feed until hangup or shutdown.

        Each watcher gets its own subscriber queue, so any number can be
        connected concurrently without slowing each other (or the
        service: emission is a non-blocking ``put_nowait`` per queue).
        Under an auth policy the feed is tenant-scoped: a non-admin
        account only receives its own jobs' events — the service-wide
        stream (including other tenants' labels and result rows) is
        reserved for admin accounts and policy-less servers.
        """
        kinds_payload = request.get("kinds")
        kinds: frozenset[str] | None = None
        if kinds_payload is not None:
            if not isinstance(kinds_payload, list):
                raise ConfigurationError("watch 'kinds' must be a list of strings")
            kinds = frozenset(str(kind) for kind in kinds_payload)
        scope = (
            account.name
            if account is not None and not account.admin
            else None
        )
        queue = self.service.subscribe(client=scope)
        try:
            await self._send(
                writer,
                Event(
                    "watching",
                    {
                        "jobs": len(self.service.jobs),
                        "queued": len(self.service.queue),
                        "watchers": self.service.subscriber_count,
                    },
                ),
            )
            while True:
                event = await queue.get()
                if event is None:
                    break  # service shutdown: end the stream cleanly
                if kinds is not None and event.kind not in kinds:
                    continue
                await self._send(writer, event)
        finally:
            self.service.unsubscribe(queue)

    @staticmethod
    async def _refuse(writer: asyncio.StreamWriter, denial: Denial) -> None:
        """Answer one request with its :class:`Denial` frame and stop.

        Frames are spelled as dict literals (not :class:`Event`) so the
        ``proto-*`` lint sees the senders: deleting either frame, or the
        manifest entry covering it, fails the build.
        """
        if denial.kind == "quota-exceeded":
            throttled: dict = {
                "event": "quota-exceeded",
                "reason": denial.reason,
                "message": denial.message,
            }
            if denial.retry_after_s is not None:
                throttled["retry_after_s"] = denial.retry_after_s
            writer.write(
                json.dumps(throttled, separators=(",", ":")).encode() + b"\n"
            )
            await writer.drain()
            return
        refusal = {
            "event": "deny",
            "reason": denial.reason,
            "message": denial.message,
        }
        writer.write(json.dumps(refusal, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, event: Event) -> None:
        writer.write(event.to_json().encode() + b"\n")
        await writer.drain()
