"""Token auth, per-client quotas and submit rate limits for the service.

The sweep service's listeners (Unix socket and TCP alike) are
multi-tenant once an :class:`AuthPolicy` is attached: every request may
carry a ``"token"`` key, the policy maps it to a :class:`ClientAccount`
(or refuses it), and submissions are admitted against that account's
:class:`Quota` — a cap on concurrently active jobs, a cap on points per
job, and a token-bucket submit rate.  Refusals are values, not
exceptions: :meth:`AuthPolicy.authenticate` and
:meth:`AuthPolicy.admit_submit` return a :class:`Denial` that the
server serialises as a ``deny`` or ``quota-exceeded`` protocol frame
(see the lint protocol manifest) and the client surfaces as a typed
exception.

Fairness between admitted tenants is the queue's business, not the
policy's: see :class:`~repro.service.jobs.JobQueue`'s round-robin.

The policy file (``serve --auth policy.json``)::

    {
      "allow_anonymous": false,
      "tokens": {
        "s3cret-alice": {"name": "alice", "max_active_jobs": 4,
                          "max_points": 4096,
                          "submit_rate_per_s": 5, "submit_burst": 10},
        "s3cret-bob":   {"name": "bob"},
        "s3cret-ops":   {"name": "ops", "admin": true}
      }
    }

Omitted quota fields mean "unlimited"; ``"admin": true`` marks an
operator account that may cancel any tenant's jobs and watch the
unscoped event feed.  Rate limiting uses the injected
clock (the registry's monotonic clock by default), so tests drive it
with :class:`~repro.obs.ManualClock`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import ConfigurationError

__all__ = ["Quota", "Denial", "ClientAccount", "AuthPolicy"]


@dataclass(frozen=True)
class Quota:
    """Per-client admission limits; ``None`` fields are unlimited."""

    #: Max jobs queued or running at once.
    max_active_jobs: int | None = None
    #: Max grid points a single submission may expand to.
    max_points: int | None = None
    #: Sustained submissions per second (token bucket).
    submit_rate_per_s: float | None = None
    #: Bucket capacity: submissions a quiet client may burst.
    submit_burst: int = 2

    def __post_init__(self) -> None:
        if self.max_active_jobs is not None and self.max_active_jobs < 1:
            raise ConfigurationError(
                f"max_active_jobs must be >= 1, got {self.max_active_jobs}"
            )
        if self.max_points is not None and self.max_points < 1:
            raise ConfigurationError(
                f"max_points must be >= 1, got {self.max_points}"
            )
        if self.submit_rate_per_s is not None and self.submit_rate_per_s <= 0:
            raise ConfigurationError(
                f"submit_rate_per_s must be > 0, got {self.submit_rate_per_s}"
            )
        if self.submit_burst < 1:
            raise ConfigurationError(
                f"submit_burst must be >= 1, got {self.submit_burst}"
            )


@dataclass(frozen=True)
class Denial:
    """A refusal, ready to serialise as a protocol frame.

    ``kind`` selects the frame (``deny`` for authentication failures,
    ``quota-exceeded`` for admission failures), ``reason`` is the
    machine-readable slug clients can branch on, ``message`` the human
    sentence, and ``retry_after_s`` — set only for rate denials — when
    the bucket next has a token.
    """

    kind: str
    reason: str
    message: str
    retry_after_s: float | None = None


@dataclass(frozen=True)
class ClientAccount:
    """One authenticated tenant: a name, its quota, and its powers."""

    name: str
    quota: Quota = Quota()
    #: Operator accounts: may cancel any tenant's jobs and watch the
    #: unscoped service-wide event feed.  Ordinary tenants only see and
    #: control their own jobs.
    admin: bool = False


class _Bucket:
    """Token-bucket state for one client's submit rate."""

    __slots__ = ("tokens", "updated_at")

    def __init__(self, tokens: float, updated_at: float) -> None:
        self.tokens = tokens
        self.updated_at = updated_at


class AuthPolicy:
    """Maps tokens to accounts and admits submissions against quotas.

    Parameters
    ----------
    tokens:
        ``token -> ClientAccount``.  Tokens are opaque strings; account
        names are what jobs, quotas, and fair-share scheduling key on.
    allow_anonymous:
        Accept requests without a token as the ``anonymous`` account
        (with ``anonymous_quota``).  Off by default: attaching a policy
        means untokened clients get a ``deny`` frame.
    anonymous_quota:
        Quota for the anonymous account when allowed.
    clock:
        Monotonic time source for rate limiting; defaults to the
        metrics registry's clock (injectable in tests).
    """

    def __init__(
        self,
        tokens: Mapping[str, ClientAccount],
        *,
        allow_anonymous: bool = False,
        anonymous_quota: Quota | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._accounts = dict(tokens)
        names = [account.name for account in self._accounts.values()]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "auth policy maps two tokens to the same account name; "
                "give each tenant one token"
            )
        if "anonymous" in names:
            raise ConfigurationError(
                'account name "anonymous" is reserved for untokened clients'
            )
        self.allow_anonymous = bool(allow_anonymous)
        self._anonymous = ClientAccount(
            name="anonymous",
            quota=anonymous_quota if anonymous_quota is not None else Quota(),
        )
        self._clock = clock
        self._buckets: dict[str, _Bucket] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_file(
        cls,
        path: str | Path,
        *,
        clock: Callable[[], float] | None = None,
    ) -> "AuthPolicy":
        """Load a policy from the ``serve --auth`` JSON file."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ConfigurationError(f"auth policy file not found: {path}")
        except ValueError as exc:
            raise ConfigurationError(
                f"auth policy file {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"auth policy file {path} must hold a JSON object"
            )
        tokens_payload = payload.get("tokens", {})
        if not isinstance(tokens_payload, dict):
            raise ConfigurationError('auth policy "tokens" must be an object')
        accounts: dict[str, ClientAccount] = {}
        for token, entry in tokens_payload.items():
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"auth policy entry for token {token!r} must be an object"
                )
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                raise ConfigurationError(
                    f"auth policy entry for token {token!r} needs a name"
                )
            accounts[str(token)] = ClientAccount(
                name=name,
                quota=cls._quota_from(entry),
                admin=bool(entry.get("admin", False)),
            )
        anonymous_payload = payload.get("anonymous")
        anonymous_quota = (
            cls._quota_from(anonymous_payload)
            if isinstance(anonymous_payload, dict)
            else None
        )
        return cls(
            accounts,
            allow_anonymous=bool(payload.get("allow_anonymous", False)),
            anonymous_quota=anonymous_quota,
            clock=clock,
        )

    @staticmethod
    def _quota_from(entry: Mapping[str, object]) -> Quota:
        def number(key: str):
            value = entry.get(key)
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigurationError(
                    f"auth policy quota field {key!r} must be a number, "
                    f"got {value!r}"
                )
            return value

        burst = number("submit_burst")
        return Quota(
            max_active_jobs=(
                int(limit) if (limit := number("max_active_jobs")) is not None
                else None
            ),
            max_points=(
                int(points) if (points := number("max_points")) is not None
                else None
            ),
            submit_rate_per_s=(
                float(rate) if (rate := number("submit_rate_per_s")) is not None
                else None
            ),
            submit_burst=int(burst) if burst is not None else 2,
        )

    # ------------------------------------------------------------------
    def authenticate(self, token: object) -> "ClientAccount | Denial":
        """Resolve a request's token; a :class:`Denial` refuses it."""
        if token is None:
            if self.allow_anonymous:
                return self._anonymous
            return Denial(
                kind="deny",
                reason="unauthenticated",
                message=(
                    "this service requires a client token; pass one with "
                    '--token (the request\'s "token" key)'
                ),
            )
        account = self._accounts.get(str(token))
        if account is None:
            return Denial(
                kind="deny",
                reason="unknown-token",
                message="unrecognised client token",
            )
        return account

    def admit_submit(
        self, account: ClientAccount, *, points: int, active_jobs: int
    ) -> "Denial | None":
        """Admit one submission, or say exactly why not.

        Checks (in order): concurrently active jobs, points per job,
        then the token bucket — the bucket is only drained by admitted
        submissions, so a client bouncing off its active-jobs cap does
        not also burn its rate budget.
        """
        quota = account.quota
        if (
            quota.max_active_jobs is not None
            and active_jobs >= quota.max_active_jobs
        ):
            return Denial(
                kind="quota-exceeded",
                reason="active-jobs",
                message=(
                    f"client {account.name!r} already has {active_jobs} "
                    f"active job(s) (limit {quota.max_active_jobs}); wait "
                    "for one to finish or cancel it"
                ),
            )
        if quota.max_points is not None and points > quota.max_points:
            return Denial(
                kind="quota-exceeded",
                reason="points-per-job",
                message=(
                    f"submission expands to {points} point(s), over client "
                    f"{account.name!r}'s per-job limit of {quota.max_points}; "
                    "split the grid"
                ),
            )
        if quota.submit_rate_per_s is not None:
            now = self._now()
            bucket = self._buckets.get(account.name)
            if bucket is None:
                bucket = _Bucket(float(quota.submit_burst), now)
                self._buckets[account.name] = bucket
            refill = (now - bucket.updated_at) * quota.submit_rate_per_s
            bucket.tokens = min(
                float(quota.submit_burst), bucket.tokens + max(0.0, refill)
            )
            bucket.updated_at = now
            if bucket.tokens < 1.0:
                wait = (1.0 - bucket.tokens) / quota.submit_rate_per_s
                return Denial(
                    kind="quota-exceeded",
                    reason="submit-rate",
                    message=(
                        f"client {account.name!r} is over its submit rate of "
                        f"{quota.submit_rate_per_s:g}/s"
                    ),
                    retry_after_s=round(wait, 6),
                )
            bucket.tokens -= 1.0
        return None

    def _now(self) -> float:
        if self._clock is None:
            from repro.obs import get_registry

            self._clock = get_registry().clock
        return self._clock()
