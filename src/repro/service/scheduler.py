"""Deduplicating point scheduler: the sweep service's execution core.

Every submitted grid expands to canonical points, and each point's
identity is its :func:`repro.exec.canonical.point_key` — the same
content hash the on-disk :class:`~repro.exec.cache.ResultCache` uses.
The scheduler resolves each point through three layers, cheapest first:

1. **memory** — results already computed in this service's lifetime;
2. **disk** — the shared :class:`ResultCache`, consulted *before*
   dispatch so cache-warm jobs never touch an executor;
3. **in-flight dedup** — a point another concurrent job is already
   computing is awaited, not recomputed: submitting the same grid twice
   concurrently executes each unique point exactly once.

Only points that survive all three are batched to the worker pool,
which bridges onto the existing synchronous executors
(:class:`~repro.exec.serial.SerialExecutor` /
:class:`~repro.exec.parallel.ParallelExecutor`) through
:meth:`~repro.exec.base.Executor.compute_stream` in a thread, so the
event loop keeps serving submissions and cancellations while points
compute.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.exec.base import Executor
from repro.exec.cache import ResultCache
from repro.exec.canonical import point_key
from repro.exec.serial import SerialExecutor
from repro.sweep import SweepPoint

__all__ = ["PointEntry", "Resolution", "Scheduler"]


@dataclass
class PointEntry:
    """One unique in-flight computation, shared by its subscribers."""

    key: str
    point: SweepPoint
    factory: Callable[[SweepPoint], Mapping[str, float]]
    fingerprint: str
    owner: str  # job id that first claimed the point
    future: "asyncio.Future[tuple[Mapping[str, float], float]]"
    refs: int = 0
    dispatched: bool = False


@dataclass(frozen=True)
class Resolution:
    """How one claimed point will get its metrics."""

    #: ``"memory" | "disk"`` (instant hit) or ``"pending"`` (await entry).
    source: str
    metrics: Mapping[str, float] | None = None
    entry: PointEntry | None = None

    @property
    def hit(self) -> bool:
        return self.entry is None


class Scheduler:
    """Claims grid points for jobs, dedupes, and dispatches batches.

    Parameters
    ----------
    executor:
        Synchronous executor the batches run on (default
        :class:`SerialExecutor`; a
        :class:`~repro.exec.parallel.ParallelExecutor` fans each batch
        across processes).
    cache:
        Optional shared :class:`ResultCache`, consulted at claim time
        and written as points complete.
    batch_size:
        Max points per executor dispatch.  Smaller batches mean finer
        cancellation granularity; larger ones amortise pool overhead.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        batch_size: int = 8,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.batch_size = max(1, int(batch_size))
        #: Results computed during this service's lifetime, by point key.
        self._memory: dict[str, Mapping[str, float]] = {}
        #: Unresolved unique points, by key.
        self._inflight: dict[str, PointEntry] = {}
        self._dispatch: deque[PointEntry] = deque()
        self._work = asyncio.Event()
        self._task: asyncio.Task | None = None
        #: Points actually executed (the dedup/caching savings metric).
        self.executions = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="sweep-scheduler"
            )

    async def stop(self) -> None:
        # Swap before awaiting: a second concurrent stop() (or a
        # start() racing it) must never observe the half-cancelled task.
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------
    # claiming
    # ------------------------------------------------------------------
    def claim(
        self,
        job_id: str,
        points: Sequence[SweepPoint],
        factory: Callable[[SweepPoint], Mapping[str, float]],
        fingerprint: str,
    ) -> list[Resolution]:
        """Resolve every point against memory/disk/in-flight, registering
        the rest for dispatch.  Synchronous (no awaits), so one job's
        claim is atomic with respect to other jobs on the loop.
        """
        resolutions: list[Resolution] = []
        for point in points:
            key = point_key(point.values, point.trial, point.seed, fingerprint)
            metrics = self._memory.get(key)
            if metrics is not None:
                resolutions.append(Resolution(source="memory", metrics=metrics))
                continue
            if self.cache is not None:
                metrics = self.cache.load(point, fingerprint)
                if metrics is not None:
                    self._memory[key] = metrics
                    resolutions.append(Resolution(source="disk", metrics=metrics))
                    continue
            entry = self._inflight.get(key)
            if entry is None:
                entry = PointEntry(
                    key=key,
                    point=point,
                    factory=factory,
                    fingerprint=fingerprint,
                    owner=job_id,
                    future=asyncio.get_running_loop().create_future(),
                )
                self._inflight[key] = entry
                self._dispatch.append(entry)
                self._work.set()
            entry.refs += 1
            resolutions.append(Resolution(source="pending", entry=entry))
        return resolutions

    def release(self, entry: PointEntry) -> None:
        """Drop one subscription (job cancelled or failed mid-grid).

        A point nobody wants any more is removed before dispatch;
        already-dispatched points run to completion (their result still
        feeds the memo and cache).
        """
        entry.refs -= 1
        if entry.refs <= 0 and not entry.dispatched:
            self._inflight.pop(entry.key, None)
            try:
                self._dispatch.remove(entry)
            except ValueError:  # pragma: no cover - already popped
                pass
            if not entry.future.done():
                entry.future.cancel()

    # ------------------------------------------------------------------
    # dispatching
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._dispatch:
                self._work.clear()
                await self._work.wait()
                continue
            batch = self._next_batch()
            if not batch:
                continue
            for entry in batch:
                entry.dispatched = True
            try:
                await asyncio.to_thread(self._run_batch, loop, batch)
            except Exception as exc:  # factory blew up: fail the batch
                for entry in batch:
                    self._inflight.pop(entry.key, None)
                    if not entry.future.done():
                        entry.future.set_exception(exc)

    def _next_batch(self) -> list[PointEntry]:
        """Pop up to ``batch_size`` live entries sharing one factory."""
        batch: list[PointEntry] = []
        skipped: list[PointEntry] = []
        while self._dispatch and len(batch) < self.batch_size:
            entry = self._dispatch.popleft()
            if entry.refs <= 0:  # cancelled while queued
                self._inflight.pop(entry.key, None)
                if not entry.future.done():
                    entry.future.cancel()
                continue
            if batch and entry.fingerprint != batch[0].fingerprint:
                skipped.append(entry)  # different factory: next batch
                continue
            batch.append(entry)
        self._dispatch.extendleft(reversed(skipped))
        return batch

    def _run_batch(self, loop: asyncio.AbstractEventLoop, batch: list[PointEntry]) -> None:
        """Worker-thread body: stream one batch through the executor."""
        pending = [(i, entry.point) for i, entry in enumerate(batch)]
        factory = batch[0].factory
        resolved = 0
        for index, metrics, elapsed in self.executor.compute_stream(
            pending, factory
        ):
            entry = batch[index]
            if self.cache is not None:
                self.cache.store(entry.point, entry.fingerprint, metrics)
            loop.call_soon_threadsafe(self._resolve, entry, metrics, elapsed)
            resolved += 1
        if resolved != len(batch):  # pragma: no cover - defensive
            raise RuntimeError(
                f"executor resolved {resolved}/{len(batch)} batch points"
            )

    def _resolve(
        self, entry: PointEntry, metrics: Mapping[str, float], elapsed: float
    ) -> None:
        self.executions += 1
        self._memory[entry.key] = metrics
        self._inflight.pop(entry.key, None)
        if not entry.future.done():
            entry.future.set_result((metrics, elapsed))
