"""In-process executor: the sweep's original one-after-another behaviour."""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.exec.base import Executor
from repro.obs import get_registry

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Computes every pending point in order, in the calling process.

    The default executor: zero overhead, exact historical semantics, and
    the reference any parallel executor must reproduce bit-for-bit.
    """

    name = "serial"
    jobs = 1

    def _compute(
        self,
        pending: Sequence[tuple[int, object]],
        factory: Callable[[object], Mapping[str, float]],
    ) -> Iterable[tuple[int, Mapping[str, float], float]]:
        # The registry clock (not time.* directly) so an injected
        # ManualClock makes per-point timings — and therefore metric
        # snapshots — reproducible byte-for-byte.
        clock = get_registry().clock
        for index, point in pending:
            t0 = clock()
            metrics = dict(factory(point))
            yield index, metrics, clock() - t0
