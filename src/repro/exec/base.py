"""Executor abstraction: how a sweep's grid points get computed.

:class:`ParameterSweep` describes *what* to run (the grid, the trials,
the factory); an :class:`Executor` decides *how* — serially in-process,
fanned out across worker processes, or short-circuited through an
on-disk :class:`~repro.exec.cache.ResultCache`.  All executors observe
the same contract:

* results come back **in point order**, regardless of completion order,
  so a parallel run produces a table identical to a serial run;
* every run yields an :class:`ExecutionStats` with per-point timings,
  throughput, and the cache hit rate, for progress/throughput reporting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.exec.canonical import callable_fingerprint
from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import ResultCache
    from repro.sweep import SweepPoint, SweepResult

__all__ = ["PointTiming", "ExecutionStats", "Executor", "ProgressFn"]


@dataclass(frozen=True)
class PointTiming:
    """Wall time of one computed (or cache-served) grid point."""

    index: int
    elapsed_s: float
    cached: bool


@dataclass
class ExecutionStats:
    """Throughput summary of one executor run.

    Point/hit/corrupt counts are per-run deltas of the process
    :class:`repro.obs.MetricsRegistry` instruments (``exec.points``,
    ``exec.cache_hits``, ``cache.corrupt_evictions``) — a view over the
    registry, not separate bookkeeping — so the CLI one-liner and
    ``python -m repro metrics`` can never disagree.
    """

    executor: str
    jobs: int
    points: int
    cache_hits: int
    elapsed_s: float
    timings: list[PointTiming] = field(default_factory=list)
    #: Corrupt/truncated cache entries evicted (and recomputed) this run.
    cache_corrupt: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.points if self.points else 0.0

    @property
    def points_per_second(self) -> float:
        return self.points / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def computed_points(self) -> int:
        return self.points - self.cache_hits


#: Progress callback: ``(completed, total, timing)`` after every point.
ProgressFn = Callable[[int, int, PointTiming], None]


class Executor(abc.ABC):
    """Runs a factory over grid points, preserving point order.

    Subclasses implement :meth:`_compute`, yielding ``(index, metrics,
    elapsed_s)`` for the points the cache could not serve, in any
    completion order.  The base class handles cache lookups/stores,
    deterministic reassembly, timing, and progress callbacks.
    """

    name: str = "executor"
    jobs: int = 1

    def run(
        self,
        points: Sequence["SweepPoint"],
        factory: Callable[["SweepPoint"], Mapping[str, float]],
        cache: "ResultCache | None" = None,
        progress: ProgressFn | None = None,
    ) -> tuple[list["SweepResult"], ExecutionStats]:
        from repro.sweep import SweepResult

        # Per-run counts are registry deltas, not private tallies: the
        # returned ExecutionStats is a view over repro.obs instruments.
        registry = get_registry()
        clock = registry.clock
        c_points = registry.counter("exec.points", executor=self.name)
        c_hits = registry.counter("exec.cache_hits", executor=self.name)
        c_misses = registry.counter("exec.cache_misses", executor=self.name)
        h_latency = registry.histogram("exec.point_latency_s", executor=self.name)
        points_before = c_points.value
        hits_before = c_hits.value

        start = clock()
        total = len(points)
        metrics_by_index: list[Mapping[str, float] | None] = [None] * total
        timings: list[PointTiming | None] = [None] * total
        done = 0

        fingerprint = callable_fingerprint(factory) if cache is not None else ""
        corrupt_before = cache.corrupt_evictions if cache is not None else 0
        pending: list[tuple[int, "SweepPoint"]] = []
        for index, point in enumerate(points):
            entry = cache.load(point, fingerprint) if cache is not None else None
            if entry is not None:
                metrics_by_index[index] = entry
                timing = PointTiming(index=index, elapsed_s=0.0, cached=True)
                timings[index] = timing
                c_points.inc()
                c_hits.inc()
                done += 1
                if progress is not None:
                    progress(done, total, timing)
            else:
                if cache is not None:
                    c_misses.inc()
                pending.append((index, point))

        for index, metrics, elapsed in self._compute(pending, factory):
            metrics_by_index[index] = metrics
            timing = PointTiming(index=index, elapsed_s=elapsed, cached=False)
            timings[index] = timing
            if cache is not None:
                cache.store(points[index], fingerprint, metrics)
            c_points.inc()
            h_latency.observe(elapsed)
            done += 1
            if progress is not None:
                progress(done, total, timing)

        missing = [i for i, m in enumerate(metrics_by_index) if m is None]
        if missing:
            raise ConfigurationError(
                f"{self.name} executor returned no result for point(s) {missing}"
            )
        results = [
            SweepResult(point=points[i], metrics=metrics_by_index[i])
            for i in range(total)
        ]
        stats = ExecutionStats(
            executor=self.name,
            jobs=self.jobs,
            points=c_points.value - points_before,
            cache_hits=c_hits.value - hits_before,
            elapsed_s=clock() - start,
            timings=[t for t in timings if t is not None],
            cache_corrupt=(
                cache.corrupt_evictions - corrupt_before
                if cache is not None
                else 0
            ),
        )
        return results, stats

    def compute_stream(
        self,
        pending: Sequence[tuple[int, "SweepPoint"]],
        factory: Callable[["SweepPoint"], Mapping[str, float]],
    ) -> Iterable[tuple[int, Mapping[str, float], float]]:
        """Raw streaming compute: ``(index, metrics, elapsed_s)`` tuples
        in **completion order**, with no cache, reordering, or stats.

        This is the primitive the sweep service's scheduler bridges onto:
        it batches deduplicated points from many jobs and needs each
        point's metrics the moment that point finishes, not when the
        whole batch does.  :meth:`run` remains the one-shot, ordered,
        cache-aware entry point for everything else.

        Streamed points still land on the registry (``exec.points`` and
        the latency histogram, tagged with this executor's name), so
        service- and cluster-driven sweeps show up in ``python -m repro
        metrics`` exactly like :meth:`run`-driven ones.
        """
        registry = get_registry()
        c_points = registry.counter("exec.points", executor=self.name)
        h_latency = registry.histogram("exec.point_latency_s", executor=self.name)
        for index, metrics, elapsed in self._compute(pending, factory):
            c_points.inc()
            h_latency.observe(elapsed)
            yield index, metrics, elapsed

    @abc.abstractmethod
    def _compute(
        self,
        pending: Sequence[tuple[int, "SweepPoint"]],
        factory: Callable[["SweepPoint"], Mapping[str, float]],
    ) -> Iterable[tuple[int, Mapping[str, float], float]]:
        """Yield ``(index, metrics, elapsed_s)`` for every pending point."""
