"""Process-pool executor: fan grid points across worker processes.

The sweep grids are embarrassingly parallel — every point carries its
own derived seed and builds its own :class:`~repro.machine.machine.Machine`,
so points share no state.  :class:`ParallelExecutor` ships ``(factory,
point)`` pairs to a :class:`concurrent.futures.ProcessPoolExecutor` and
reassembles results **in point order** no matter which worker finishes
first, so the resulting table is identical to a serial run.

The factory must be picklable (a module-level function or a
``functools.partial`` over one); closures and lambdas work only with the
serial executor.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.exec.base import Executor
from repro.obs import get_registry

__all__ = ["ParallelExecutor"]


def _run_point(
    factory: Callable[[object], Mapping[str, float]], index: int, point: object
) -> tuple[int, dict, float]:
    """Worker entry point: compute one grid point, timed.

    Timed on the registry clock: in pool children that is the host
    monotonic clock (a fresh process default), while the inline
    ``jobs=1`` path honours an injected deterministic clock.
    """
    clock = get_registry().clock
    t0 = clock()
    metrics = dict(factory(point))
    return index, metrics, clock() - t0


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheap and inherits sys.path/imports; fall back to the
    # platform default (spawn on macOS/Windows) where fork is absent.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelExecutor(Executor):
    """Fans pending points across ``jobs`` worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count (>= 1).  ``jobs=1`` degenerates to serial
        execution without spinning up a pool.
    """

    name = "parallel"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    def _compute(
        self,
        pending: Sequence[tuple[int, object]],
        factory: Callable[[object], Mapping[str, float]],
    ) -> Iterable[tuple[int, Mapping[str, float], float]]:
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for index, point in pending:
                yield _run_point(factory, index, point)
            return
        workers = min(self.jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = [
                pool.submit(_run_point, factory, index, point)
                for index, point in pending
            ]
            for future in concurrent.futures.as_completed(futures):
                yield future.result()
