"""Execution layer for parameter sweeps.

Pluggable strategies for computing a sweep's grid points:

* :class:`SerialExecutor` — in-process, one point after another (the
  default; exact historical behaviour);
* :class:`ParallelExecutor` — fans points across worker processes while
  preserving deterministic point order;
* :class:`ResultCache` — content-addressed on-disk memoisation so
  repeated benchmark runs skip already-computed points.

Every executor returns :class:`ExecutionStats` (per-point timings,
points/sec, cache hit rate) alongside the ordered results.  See
``docs/api.md`` ("Running experiments at scale") for usage.
"""

from repro.exec.base import ExecutionStats, Executor, PointTiming, ProgressFn
from repro.exec.cache import ResultCache
from repro.exec.canonical import (
    callable_fingerprint,
    canonical_point_key,
    canonical_value,
    point_key,
    point_seed_name,
)
from repro.exec.parallel import ParallelExecutor
from repro.exec.serial import SerialExecutor

__all__ = [
    "Executor",
    "ExecutionStats",
    "PointTiming",
    "ProgressFn",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    "canonical_value",
    "canonical_point_key",
    "point_seed_name",
    "point_key",
    "callable_fingerprint",
]
