"""Content-addressed on-disk cache of sweep-point metrics.

Every figure/table rerun recomputes the same grid points; this cache
makes repeat runs near-free.  Entries are keyed on the *content* of the
computation:

* the canonical type-tagged encoding of the point's coordinate values
  (see :mod:`repro.exec.canonical`) — so ``1`` and ``1.0`` never collide
  and repr drift never aliases two different points;
* the trial index and derived seed — different trials cache separately;
* the factory fingerprint — editing the experiment code invalidates its
  entries automatically.

Metrics are stored as JSON.  Python's JSON round-trips finite floats via
shortest-repr exactly, so a cache hit returns **bit-identical** metrics.
Writes go through a temp file + :func:`os.replace`, so concurrent
workers (or concurrent benchmark invocations) never observe a torn
entry.

Corrupt or truncated entries (killed writer, disk trouble, manual
editing) are treated as misses: the bad file is evicted so the slot
heals on the recompute, and the eviction is counted in
:attr:`ResultCache.corrupt_evictions` so
:class:`~repro.exec.base.ExecutionStats` can report it instead of a
sweep dying halfway through.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError
from repro.exec.canonical import POINT_KEY_VERSION, point_key
from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep import SweepPoint

__all__ = ["ResultCache"]

_FORMAT_VERSION = POINT_KEY_VERSION


class ResultCache:
    """Directory-backed store of per-point sweep metrics.

    Parameters
    ----------
    root:
        Cache directory; created on first use.  Safe to share between
        concurrent processes and to delete at any time.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(f"cache path {self.root} is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        # Evictions are recorded on the process metrics registry; this
        # instance's corrupt_evictions is a view (delta since creation).
        self._registry = get_registry()
        self._corrupt_counter = self._registry.counter("cache.corrupt_evictions")
        self._corrupt_base = self._corrupt_counter.value

    @property
    def corrupt_evictions(self) -> int:
        """Corrupt/truncated entries evicted by :meth:`load` so far.

        A view over the ``cache.corrupt_evictions`` counter of the
        registry that was current at construction; each eviction also
        leaves a ``cache.corrupt-evicted`` event naming the key.
        """
        return self._corrupt_counter.value - self._corrupt_base

    # ------------------------------------------------------------------
    def key(self, point: "SweepPoint", fingerprint: str) -> str:
        """Content hash identifying one (point, trial, seed, factory)."""
        return point_key(point.values, point.trial, point.seed, fingerprint)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big grids.
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, point: "SweepPoint", fingerprint: str) -> dict | None:
        """Return cached metrics for ``point``, or ``None`` on a miss.

        Corrupt or truncated entries count as misses; the bad file is
        evicted (so the recompute heals it) and the eviction recorded in
        :attr:`corrupt_evictions`.
        """
        key = self.key(point, fingerprint)
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # absent (or unreadable): a plain miss
        except UnicodeDecodeError:
            return self._evict_corrupt(path, key)  # garbage bytes on disk
        try:
            payload = json.loads(text)
        except ValueError:
            return self._evict_corrupt(path, key)
        metrics = payload.get("metrics") if isinstance(payload, dict) else None
        if not isinstance(metrics, dict):
            return self._evict_corrupt(path, key)
        return metrics

    def _evict_corrupt(self, path: Path, key: str) -> None:
        """Drop one unparseable entry; count it and log *which* key.

        The key matters operationally — it names exactly which (point,
        trial, seed, factory) slot healed — so the eviction is recorded
        as a structured registry event, not just an anonymous count.
        """
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced with another evictor
            pass
        self._corrupt_counter.inc()
        self._registry.event(
            "cache.corrupt-evicted", key=key, path=str(path)
        )
        return None

    def store(
        self, point: "SweepPoint", fingerprint: str, metrics: Mapping[str, float]
    ) -> Path:
        """Persist one point's metrics; atomic against concurrent readers."""
        key = self.key(point, fingerprint)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _FORMAT_VERSION,
            "key": key,
            "values": {name: repr(value) for name, value in point.values.items()},
            "trial": point.trial,
            "seed": point.seed,
            "metrics": dict(metrics),
        }
        # No sort_keys: metric insertion order is part of the contract
        # (tables list metrics in factory-return order, hit or miss).
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
