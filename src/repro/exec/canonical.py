"""Canonical, cross-process-stable encodings for sweep coordinates.

Seed derivation and result caching both need a *stable identity* for a
grid point: the same coordinates must map to the same seed (and the same
cache key) in every process, on every run, forever.  ``repr``-based
encodings fail this in two ways:

* ``sorted(values.items())`` raises ``TypeError`` for grids that mix
  unorderable value types on one axis-key set (``{"x": [1, "a"]}``);
* ``repr`` drift silently changes seeds — ``1`` vs ``1.0`` collide or
  diverge depending on float formatting, and exotic value types have
  address-bearing reprs.

This module instead encodes values as *type-tagged* JSON: every scalar
carries an explicit type tag, floats are encoded via ``float.hex()``
(bit-exact, locale/repr independent), and mapping keys are sorted by
their encoded form so no cross-type comparison ever happens.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import numbers
from typing import Mapping

__all__ = [
    "canonical_value",
    "canonical_point_key",
    "point_seed_name",
    "point_key",
    "callable_fingerprint",
]

#: Version of the point-key material; bump to invalidate every existing
#: cache entry and dedup key at once.
POINT_KEY_VERSION = 1


def canonical_value(value: object) -> list:
    """Encode ``value`` as a type-tagged, JSON-serialisable structure.

    Distinct types never collide (``1`` ≠ ``1.0`` ≠ ``True`` ≠ ``"1"``)
    and the encoding is identical across processes and Python runs.
    """
    # bool first: bool is an int subclass and must keep its own tag.
    if isinstance(value, bool):
        return ["bool", bool(value)]
    if isinstance(value, numbers.Integral):
        return ["int", int(value)]
    if isinstance(value, numbers.Real):
        # float.hex() is bit-exact and immune to repr/locale drift.
        return ["float", float(value).hex()]
    if isinstance(value, str):
        return ["str", value]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    if value is None:
        return ["null"]
    if isinstance(value, (list, tuple)):
        return ["seq", [canonical_value(item) for item in value]]
    if isinstance(value, (set, frozenset)):
        encoded = sorted(json.dumps(canonical_value(item)) for item in value)
        return ["set", encoded]
    if isinstance(value, Mapping):
        items = sorted(
            (
                json.dumps(canonical_value(key)),
                canonical_value(val),
            )
            for key, val in value.items()
        )
        return ["map", [[k, v] for k, v in items]]
    # Last resort: type-qualified repr.  Stable only for types with
    # value-based reprs; grids should stick to the scalar types above.
    return ["repr", type(value).__qualname__, repr(value)]


def canonical_point_key(values: Mapping[str, object]) -> str:
    """Canonical string identity of one grid coordinate.

    Keys are sorted, values type-tagged; the result is a compact JSON
    document suitable both as seed-derivation material and as cache-key
    material.
    """
    encoded = {str(name): canonical_value(value) for name, value in values.items()}
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def point_seed_name(values: Mapping[str, object], trial: int) -> str:
    """Stream name for :func:`repro.rng.derive_seed` at one point/trial."""
    return f"sweep-point:{canonical_point_key(values)}|trial={int(trial)}"


def point_key(
    values: Mapping[str, object], trial: int, seed: int, fingerprint: str
) -> str:
    """Content hash identifying one (coordinate, trial, seed, factory).

    The single identity shared by the on-disk
    :class:`~repro.exec.cache.ResultCache` and the sweep service's
    cross-job dedup: two grid points with the same key are the *same
    computation* and may share one execution and one cached result.
    """
    material = json.dumps(
        {
            "version": POINT_KEY_VERSION,
            "point": canonical_point_key(values),
            "trial": trial,
            "seed": seed,
            "factory": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def callable_fingerprint(fn: object) -> str:
    """Content fingerprint of a sweep factory, stable across processes.

    Cache entries must be invalidated when the factory's *code* changes,
    so the fingerprint hashes the source text when available, falling
    back to the compiled code object, and finally to the qualified name.
    ``functools.partial`` objects fingerprint as (wrapped function,
    bound arguments), so CLI-built factories cache correctly.
    """
    if isinstance(fn, functools.partial):
        inner = callable_fingerprint(fn.func)
        bound = canonical_value([list(fn.args), dict(fn.keywords or {})])
        material = f"partial:{inner}:{json.dumps(bound, sort_keys=True)}"
        return hashlib.sha256(material.encode()).hexdigest()

    parts = [
        f"name:{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', type(fn).__qualname__)}"
    ]
    try:
        parts.append("src:" + inspect.getsource(fn))
    except (OSError, TypeError):
        code = getattr(fn, "__code__", None)
        if code is None and hasattr(fn, "__call__"):
            code = getattr(fn.__call__, "__code__", None)
        if code is not None:
            parts.append(
                "code:"
                + code.co_name
                + code.co_code.hex()
                + repr(code.co_names)
                + repr(code.co_consts)
            )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()
