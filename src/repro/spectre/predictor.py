"""Directional branch predictor: per-PC 2-bit saturating counters.

Spectre v1 needs exactly one property from the predictor: after a few
taken executions of the victim's bounds check, an out-of-bounds call is
still *predicted* taken, opening the transient window.  A table of 2-bit
counters indexed by branch PC provides that with the classic hysteresis.
"""

from __future__ import annotations

from repro.errors import SpectreError

__all__ = ["BranchPredictor"]

# 2-bit counter states.
STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = range(4)


class BranchPredictor:
    """Pattern history table of 2-bit saturating counters."""

    def __init__(self, entries: int = 1024) -> None:
        if entries < 1 or entries & (entries - 1):
            raise SpectreError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        # Weakly not-taken initial state, like a zeroed PHT.
        self._table = [WEAK_NOT_TAKEN] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= WEAK_TAKEN

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction."""
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(counter + 1, STRONG_TAKEN)
        else:
            self._table[index] = max(counter - 1, STRONG_NOT_TAKEN)

    def access(self, pc: int, taken: bool) -> bool:
        """Predict then update; returns True on a misprediction."""
        predicted = self.predict(pc)
        self.update(pc, taken)
        return predicted != taken

    def flush(self) -> None:
        self._table = [WEAK_NOT_TAKEN] * self.entries
