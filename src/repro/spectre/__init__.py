"""Spectre v1 with frontend covert channels (Section VIII, Table VII).

The paper's new Spectre variant uses the *frontend* as the transmission
medium: during transient execution the disclosure gadget executes an
instruction mix block whose address maps to DSB set ``secret_chunk``
(5-bit chunks, one of 32 sets).  Because DSB probing never touches the
L1 caches, the attack leaves the smallest cache footprint of any Spectre
channel — the property Table VII quantifies via L1 miss rates.

Implemented channels (paper's "Our" columns plus the [35] baselines):

* :class:`~repro.spectre.channels.MemFlushReload` — classic Flush+Reload
  on a shared probe array (lines flushed to DRAM);
* :class:`~repro.spectre.channels.L1dFlushReload` — Flush+Reload scoped
  to the L1D (eviction-based flushing);
* :class:`~repro.spectre.channels.L1dLruChannel` — the LRU-state channel
  of [35]: victim hits reorder LRU stacks without extra misses;
* :class:`~repro.spectre.channels.L1iFlushReload` — Flush+Reload on
  instruction fetches;
* :class:`~repro.spectre.channels.L1iPrimeProbe` — Prime+Probe on L1I
  sets;
* :class:`~repro.spectre.channels.FrontendDsbChannel` — the paper's new
  channel: DSB-set timing, zero cache interaction.
"""

from repro.spectre.predictor import BranchPredictor
from repro.spectre.victim import SpectreV1Victim, TransientWindow
from repro.spectre.channels import (
    SpectreChannel,
    MemFlushReload,
    L1dFlushReload,
    L1dLruChannel,
    L1iFlushReload,
    L1iPrimeProbe,
    FrontendDsbChannel,
    ALL_SPECTRE_CHANNELS,
)
from repro.spectre.attack import SpectreV1Attack, AttackReport
from repro.spectre.btb import (
    BranchTargetBuffer,
    SpectreV2Victim,
    SpectreV2Attack,
    V2_DEFENSES,
)

__all__ = [
    "BranchPredictor",
    "BranchTargetBuffer",
    "SpectreV1Victim",
    "TransientWindow",
    "SpectreChannel",
    "MemFlushReload",
    "L1dFlushReload",
    "L1dLruChannel",
    "L1iFlushReload",
    "L1iPrimeProbe",
    "FrontendDsbChannel",
    "ALL_SPECTRE_CHANNELS",
    "SpectreV1Attack",
    "AttackReport",
    "SpectreV2Victim",
    "SpectreV2Attack",
    "V2_DEFENSES",
]
