"""The Spectre v1 victim: a bounds-checked array read with a gadget.

Models the canonical pattern::

    if (x < array1_size)            // conditional branch, predictor-driven
        use(array1[x]);             // disclosure gadget: uses the loaded
                                    // value to touch channel element v

Architecturally, out-of-bounds calls do nothing.  Microarchitecturally,
if the branch is *predicted* taken, the gadget executes transiently with
``array1[x]`` reading past the array's end into the secret, and its
channel touch survives the squash.  The transient window is bounded: the
gadget only completes with ``TransientWindow.success_rate`` probability
(bounds resolving early squashes it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bits import pack_chunks
from repro.errors import SpectreError
from repro.spectre.predictor import BranchPredictor

__all__ = ["TransientWindow", "SpectreV1Victim"]


@dataclass(frozen=True)
class TransientWindow:
    """Transient-execution window characteristics.

    max_uops:
        Speculation depth available after the mispredicted branch
        (ROB-bounded; ~200 uops on Skylake).  The disclosure gadget
        (load + one channel touch) fits comfortably.
    success_rate:
        Probability the gadget completes before the bounds check
        resolves and squashes it (cache-miss latency of the bounds load
        gives the gadget its race window).
    """

    max_uops: int = 200
    success_rate: float = 0.98

    def __post_init__(self) -> None:
        if self.max_uops < 1:
            raise SpectreError("transient window must fit at least one uop")
        if not 0.0 <= self.success_rate <= 1.0:
            raise SpectreError("success_rate must be a probability")


class SpectreV1Victim:
    """Holder of the secret, exposing only the bounds-checked entry point."""

    def __init__(
        self,
        secret: bytes,
        rng: np.random.Generator,
        chunk_bits: int = 5,
        array1_size: int = 16,
        branch_pc: int = 0x401000,
        window: TransientWindow | None = None,
    ) -> None:
        if not secret:
            raise SpectreError("victim needs a non-empty secret")
        if array1_size < 1:
            raise SpectreError("array1 must have at least one element")
        self.chunk_bits = chunk_bits
        self.chunks = pack_chunks(secret, chunk_bits)
        self.array1 = [int(v) for v in rng.integers(0, 2**chunk_bits, size=array1_size)]
        self.branch_pc = branch_pc
        self.window = window or TransientWindow()
        self._rng = rng

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def oob_index(self, chunk: int) -> int:
        """The out-of-bounds index that reads secret chunk ``chunk``."""
        if not 0 <= chunk < self.n_chunks:
            raise SpectreError(
                f"chunk must be in 0..{self.n_chunks - 1}, got {chunk}"
            )
        return len(self.array1) + chunk

    def call(self, index: int, predictor: BranchPredictor, channel) -> bool:
        """One victim invocation; returns True if a transient touch fired.

        ``channel`` provides ``touch(value, transient)`` — the gadget's
        observable side effect.  In-bounds calls execute the gadget
        architecturally (with a public ``array1`` value); out-of-bounds
        calls execute it transiently if and only if the predictor says
        "taken".
        """
        in_bounds = index < len(self.array1)
        predicted = predictor.predict(self.branch_pc)
        predictor.update(self.branch_pc, taken=in_bounds)
        if in_bounds:
            channel.touch(self.array1[index], transient=False)
            return False
        if predicted and self._rng.random() < self.window.success_rate:
            secret_value = self.chunks[index - len(self.array1)]
            channel.touch(secret_value, transient=True)
            return True
        return False
