"""Covert-channel backends for the Spectre v1 comparison (Table VII).

Each channel implements the same tiny interface the victim's gadget and
the attacker's recovery loop need:

* ``prepare()`` — reset the medium before a transient attempt;
* ``touch(value, transient)`` — the gadget's side effect (called both
  architecturally during training and transiently during the attack);
* ``recover()`` — identify which of the 32 values was touched;
* ``background(calls)`` — the surrounding victim/application work, which
  is *identical* across channels so Table VII's L1 miss rates are
  comparable.

Miss accounting sums data-side (L1D) and instruction-side (L1I) accesses
and misses; the paper's headline result — the frontend channel causes no
cache misses at all, only DSB/LSD state changes — emerges mechanically
here because DSB-hit delivery never touches the L1I in the engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.caches.hierarchy import MemoryHierarchy
from repro.caches.sa_cache import SetAssociativeCache
from repro.errors import SpectreError
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine

__all__ = [
    "SpectreChannel",
    "MemFlushReload",
    "L1dFlushReload",
    "L1dLruChannel",
    "L1iFlushReload",
    "L1iPrimeProbe",
    "FrontendDsbChannel",
    "ALL_SPECTRE_CHANNELS",
    "MissCounts",
]

#: 5-bit secret chunks: 32 possible values, one DSB/cache set each.
N_VALUES = 32

#: Background work per victim invocation: data loads over a hot working
#: set and instruction fetches over the victim+attacker code footprint.
BG_DATA_ACCESSES = 220
BG_INST_FETCHES = 650
BG_DATA_LINES = 64  # working-set lines (fit in L1D: mostly hits)
BG_CODE_LINES = 96  # code lines (fit in L1I: mostly hits)


@dataclass(frozen=True)
class MissCounts:
    """Combined L1 (data + instruction) access/miss counts."""

    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def delta(self, earlier: "MissCounts") -> "MissCounts":
        return MissCounts(
            accesses=self.accesses - earlier.accesses,
            misses=self.misses - earlier.misses,
        )


class SpectreChannel(abc.ABC):
    """Base class with shared cache substrate and background workload."""

    name: str = "abstract"
    #: Secret chunk width: 5-bit chunks / 32 probe elements by default;
    #: MEM Flush+Reload follows [35] with byte chunks / 256 probe pages.
    chunk_bits: int = 5

    def __init__(self, machine: Machine, seed_name: str = "") -> None:
        self.machine = machine
        self._rng = machine.rngs.stream(f"spectre/{seed_name or self.name}")
        self.hierarchy = MemoryHierarchy()
        self.l1i = SetAssociativeCache(sets=64, ways=8, line_bytes=64, name="L1I")
        self._data_base = 0x10_0000
        self._code_base = 0x40_0000
        self._probe_base = 0x80_0000
        #: Cycles spent in channel operations + background work; the
        #: attack's leak bandwidth (Section VIII: frontend Spectre is
        #: slower than data-cache Spectre) derives from this.
        self.cycles = 0.0

    # -- cycle accounting helpers ----------------------------------------
    #: Cost of one instruction fetch that hits the L1I.
    IFETCH_HIT_CYCLES = 1.0
    #: Cost of an L1I miss fill (L2-resident code).
    IFETCH_MISS_CYCLES = 14.0
    #: Per-probe timer overhead (rdtscp pair) for timing-based recovery.
    TIMER_CYCLES = 32.0
    #: clflush instruction cost.
    CLFLUSH_CYCLES = 40.0

    def _load(self, addr: int) -> "AccessResult":
        result = self.hierarchy.load(addr)
        self.cycles += result.latency
        return result

    def _ifetch(self, addr: int) -> bool:
        hit = self.l1i.access(addr)
        self.cycles += self.IFETCH_HIT_CYCLES if hit else self.IFETCH_MISS_CYCLES
        return hit

    # -- interface ------------------------------------------------------
    @abc.abstractmethod
    def prepare(self) -> None:
        """Reset the medium ahead of one transient attempt."""

    @abc.abstractmethod
    def touch(self, value: int, transient: bool) -> None:
        """Gadget side effect encoding ``value``."""

    @abc.abstractmethod
    def recover(self) -> int:
        """Read the medium back and return the inferred value."""

    # -- shared helpers ---------------------------------------------------
    @property
    def n_values(self) -> int:
        return 1 << self.chunk_bits

    def _check_value(self, value: int) -> int:
        if not 0 <= value < self.n_values:
            raise SpectreError(
                f"value must be in 0..{self.n_values - 1}, got {value}"
            )
        return value

    #: Probe stride: one page plus one line, so consecutive values land
    #: in different pages *and* different L1 sets (set = addr[11:6]).
    PROBE_STRIDE = 4096 + 64

    def probe_data_addr(self, value: int) -> int:
        """Probe line for ``value``; each value maps to its own L1D set."""
        return self._probe_base + value * self.PROBE_STRIDE

    def probe_code_addr(self, value: int) -> int:
        """Probe instruction line for ``value``; one L1I set per value."""
        return self._probe_base + 0x100000 + value * self.PROBE_STRIDE

    def background(self, calls: int = 1) -> None:
        """Victim + application work surrounding each channel operation."""
        for _ in range(calls):
            data = self._rng.integers(0, BG_DATA_LINES, size=BG_DATA_ACCESSES)
            for index in data:
                self._load(self._data_base + int(index) * 64)
            code = self._rng.integers(0, BG_CODE_LINES, size=BG_INST_FETCHES)
            for index in code:
                self._ifetch(self._code_base + int(index) * 64)

    def miss_counts(self) -> MissCounts:
        d = self.hierarchy.l1.stats
        i = self.l1i.stats
        return MissCounts(
            accesses=d.accesses + i.accesses,
            misses=d.misses + i.misses,
        )


class MemFlushReload(SpectreChannel):
    """Flush+Reload to DRAM on a shared probe array (clflush-based).

    Follows the baseline of [35]: byte-granularity chunks over a
    256-page probe array, which is why its probe traffic (and L1 miss
    rate) exceeds the 32-element L1I/frontend channels.
    """

    name = "mem-flush-reload"
    chunk_bits = 8

    def prepare(self) -> None:
        for value in range(self.n_values):
            self.hierarchy.flush_line(self.probe_data_addr(value))
            self.cycles += self.CLFLUSH_CYCLES

    def touch(self, value: int, transient: bool) -> None:
        self._load(self.probe_data_addr(self._check_value(value)))

    def recover(self) -> int:
        best_value, best_latency = 0, float("inf")
        for value in range(self.n_values):
            addr = self.probe_data_addr(value)
            latency = self.hierarchy.probe_latency(addr)
            self._load(addr)
            self.cycles += self.TIMER_CYCLES
            if latency < best_latency:
                best_value, best_latency = value, latency
        return best_value


class L1dFlushReload(SpectreChannel):
    """Flush+Reload scoped to the L1D.

    There is no architectural "flush from L1 only" instruction, so the
    probe lines are pushed out of the L1 with per-set conflict evictions
    — which is why this channel's own eviction traffic makes it the
    noisiest in cache-miss terms (Table VII's highest L1 miss rate).
    """

    name = "l1d-flush-reload"

    #: Conflicting lines walked per probe set to force the eviction.
    EVICTION_WAYS = 8

    def _eviction_addr(self, value: int, way: int) -> int:
        # Same L1D set as the probe line, different tags.
        return self.probe_data_addr(value) + (way + 1) * 4096

    def prepare(self) -> None:
        for value in range(self.n_values):
            for way in range(self.EVICTION_WAYS):
                self._load(self._eviction_addr(value, way))

    def touch(self, value: int, transient: bool) -> None:
        self._load(self.probe_data_addr(self._check_value(value)))

    def recover(self) -> int:
        best_value, best_latency = 0, float("inf")
        for value in range(self.n_values):
            addr = self.probe_data_addr(value)
            latency = self.hierarchy.probe_latency(addr)
            self._load(addr)
            self.cycles += self.TIMER_CYCLES
            if latency < best_latency:
                best_value, best_latency = value, latency
        return best_value


class L1dLruChannel(SpectreChannel):
    """The L1D LRU-state channel of [35] (Xiong & Szefer, HPCA 2020).

    All probe lines stay resident; the victim's (transient) hit merely
    reorders one set's LRU stack.  The attacker then inserts a single
    conflicting line per set: the identity of the evicted way — observed
    by re-timing the original lines — reveals whether the set's stack
    was rotated.  Fewer compulsory misses than Flush+Reload.
    """

    name = "l1d-lru"

    def __init__(self, machine: Machine, seed_name: str = "") -> None:
        super().__init__(machine, seed_name)
        self._round = 0

    def _primed_addr(self, value: int, way: int) -> int:
        return self.probe_data_addr(value) + way * 4096

    def prepare(self) -> None:
        self._round += 1
        ways = self.hierarchy.l1.ways
        for value in range(self.n_values):
            for way in range(ways):
                self._load(self._primed_addr(value, way))

    def touch(self, value: int, transient: bool) -> None:
        # Hits the already-resident way-0 line: no miss, LRU rotation only.
        self._load(self._primed_addr(self._check_value(value), 0))

    def recover(self) -> int:
        ways = self.hierarchy.l1.ways
        touched = 0
        for value in range(self.n_values):
            # Insert one conflicting line (rotating between two tags so
            # later rounds partially hit): evicts the set's LRU way.
            self._load(self._primed_addr(value, ways + self._round % 2))
            self.cycles += self.TIMER_CYCLES
            # If the victim touched way 0, it was MRU and survived;
            # otherwise way 0 was LRU and is now gone.
            if self.hierarchy.l1.probe(self._primed_addr(value, 0)):
                touched = value
        return touched


class L1iFlushReload(SpectreChannel):
    """Flush+Reload on instruction lines (clflush is coherent with L1I)."""

    name = "l1i-flush-reload"

    def prepare(self) -> None:
        for value in range(self.n_values):
            self.l1i.flush_line(self.probe_code_addr(value))
            self.cycles += self.CLFLUSH_CYCLES

    def touch(self, value: int, transient: bool) -> None:
        # Transiently *executing* the probe block fetches its line.
        self._ifetch(self.probe_code_addr(self._check_value(value)))

    def recover(self) -> int:
        best = 0
        for value in range(self.n_values):
            addr = self.probe_code_addr(value)
            if self.l1i.probe(addr):
                best = value
            self._ifetch(addr)
            self.cycles += self.TIMER_CYCLES
        return best


class L1iPrimeProbe(SpectreChannel):
    """Prime+Probe on L1I sets: victim execution evicts an attacker line.

    Primes fewer ways than the associativity so the attacker's resident
    set coexists with the application's code working set instead of
    thrashing it — the victim's one extra fill still overflows the set.
    This keeps the channel's own miss footprint near zero after warmup,
    matching the low L1 miss rate the paper reports for L1I P+P.
    """

    name = "l1i-prime-probe"

    #: Ways primed per set; leaves headroom for resident background code.
    PRIME_WAYS = 6

    def _prime_addr(self, value: int, way: int) -> int:
        return self.probe_code_addr(value) + (way + 1) * 4096

    def prepare(self) -> None:
        for value in range(self.n_values):
            for way in range(self.PRIME_WAYS):
                self._ifetch(self._prime_addr(value, way))

    def touch(self, value: int, transient: bool) -> None:
        # Victim's probe-block execution fills one line, evicting the
        # attacker's LRU way in that set.
        self._ifetch(self.probe_code_addr(self._check_value(value)))

    def recover(self) -> int:
        """Pick the set with the most evicted prime ways.

        Background code fetches also nibble at the primed sets, so a
        simple any-way-missing test is too noisy; the victim's touch
        adds one eviction *on top of* that baseline.
        """
        best_value, best_missing = 0, -1
        for value in range(self.n_values):
            missing = sum(
                not self.l1i.probe(self._prime_addr(value, way))
                for way in range(self.PRIME_WAYS)
            )
            self.cycles += self.PRIME_WAYS * self.IFETCH_HIT_CYCLES
            self.cycles += self.TIMER_CYCLES
            if missing > best_missing:
                best_value, best_missing = value, missing
        return best_value


class FrontendDsbChannel(SpectreChannel):
    """The paper's new channel: DSB-set residency, zero cache footprint.

    The attacker keeps 8 of its own mix blocks resident in every DSB set;
    the gadget transiently *executes* one mix block mapping to DSB set
    ``value``, evicting an attacker line from that set only.  The
    attacker's per-set probe loops then reveal which set redelivers
    through MITE.  After warmup, neither the probes (DSB hits bypass the
    L1I) nor the gadget (its block's L1I line stays resident) cause any
    cache misses.
    """

    name = "frontend-dsb"

    #: Ways the attacker occupies per DSB set (leaves no spare way, so a
    #: transient touch must evict).
    PRIME_WAYS = 8

    def __init__(self, machine: Machine, seed_name: str = "") -> None:
        super().__init__(machine, seed_name)
        layout = machine.layout(region_base=0xC0_0000)
        self._prime_programs = [
            LoopProgram(
                layout.chain(value, self.PRIME_WAYS, label=f"dsb.prime{value}"),
                iterations=3,
                label=f"dsb-prime-{value}",
            )
            for value in range(N_VALUES)
        ]
        gadget_layout = machine.layout(region_base=0xE0_0000)
        self._gadget_programs = [
            LoopProgram(
                gadget_layout.chain(value, 1, first_slot=9, label=f"dsb.gadget{value}"),
                iterations=1,
                label=f"dsb-gadget-{value}",
            )
            for value in range(N_VALUES)
        ]
        # The frontend channel's i-side fetches go through the *machine*
        # core's L1I; mirror them into this experiment's L1I accounting.
        self._l1i_snapshot = machine.core.l1i.stats.snapshot()

    def prepare(self) -> None:
        for program in self._prime_programs:
            self.cycles += self.machine.run_loop(program).cycles

    def touch(self, value: int, transient: bool) -> None:
        report = self.machine.run_loop(
            self._gadget_programs[self._check_value(value)]
        )
        self.cycles += report.cycles

    def recover(self) -> int:
        slowest, slowest_cycles = 0, -1.0
        for value in range(self.n_values):
            probe = self._prime_programs[value].with_iterations(1)
            report = self.machine.run_loop(probe)
            self.cycles += report.cycles + self.TIMER_CYCLES
            measured = self.machine.timer.measure(report.cycles).measured_cycles
            if measured > slowest_cycles:
                slowest, slowest_cycles = value, measured
        return slowest

    def miss_counts(self) -> MissCounts:
        """Include the machine L1I traffic the frontend probes generate."""
        base = super().miss_counts()
        core_delta = self.machine.core.l1i.stats.delta(self._l1i_snapshot)
        return MissCounts(
            accesses=base.accesses + core_delta.accesses,
            misses=base.misses + core_delta.misses,
        )


#: All Table VII channels in the paper's column order.
ALL_SPECTRE_CHANNELS = (
    MemFlushReload,
    L1dFlushReload,
    L1dLruChannel,
    L1iFlushReload,
    L1iPrimeProbe,
    FrontendDsbChannel,
)
