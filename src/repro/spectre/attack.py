"""The Spectre v1 attack orchestrator (Section VIII).

Per 5-bit secret chunk:

1. **Train** — call the victim with in-bounds indices until the bounds
   check predicts "taken";
2. **Prepare** — reset the covert-channel medium;
3. **Mispredict** — call the victim out of bounds; the transient gadget
   touches channel element ``secret_chunk``;
4. **Recover** — read the medium back.

Background victim/application work (identical for every channel) runs
around each phase so the resulting L1 miss rates are comparable, which is
what Table VII reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bits import unpack_chunks
from repro.analysis.outcome import ScenarioOutcome, leak_kbps
from repro.errors import SpectreError
from repro.machine.machine import Machine
from repro.spectre.channels import MissCounts, SpectreChannel
from repro.spectre.predictor import BranchPredictor
from repro.spectre.victim import SpectreV1Victim, TransientWindow

__all__ = ["SpectreV1Attack", "AttackReport"]


@dataclass
class AttackReport:
    """Outcome of recovering a secret through one channel."""

    channel_name: str
    secret: bytes
    recovered: bytes
    chunks_total: int
    chunks_correct: int
    l1: MissCounts
    channel_cycles: float = 0.0
    frequency_hz: float = 0.0
    chunk_bits: int = 5

    @property
    def accuracy(self) -> float:
        return self.chunks_correct / self.chunks_total if self.chunks_total else 0.0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def leak_kbps(self) -> float:
        """Secret bits recovered per second of attack execution."""
        return leak_kbps(
            self.chunks_total * self.chunk_bits,
            self.channel_cycles,
            self.frequency_hz,
        )

    def to_outcome(self, machine: str = "") -> ScenarioOutcome:
        """Normalise into the shared outcome record scenarios consume."""
        return ScenarioOutcome.from_counts(
            label=self.channel_name,
            machine=machine,
            units_correct=self.chunks_correct,
            units_total=self.chunks_total,
            bits=self.chunks_total * self.chunk_bits,
            cycles=self.channel_cycles,
            frequency_hz=self.frequency_hz,
            details={"l1_miss_rate": self.l1_miss_rate},
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.channel_name}: {self.chunks_correct}/{self.chunks_total} chunks, "
            f"L1 miss rate {self.l1_miss_rate * 100:.2f}%"
        )


class SpectreV1Attack:
    """Recovers a victim secret through a chosen covert channel."""

    def __init__(
        self,
        machine: Machine,
        channel: SpectreChannel,
        secret: bytes,
        trainings: int = 5,
        attempts_per_chunk: int = 1,
        window: TransientWindow | None = None,
    ) -> None:
        if trainings < 1:
            raise SpectreError("need at least one training call per chunk")
        if attempts_per_chunk < 1:
            raise SpectreError("need at least one attempt per chunk")
        self.machine = machine
        self.channel = channel
        self.trainings = trainings
        self.attempts_per_chunk = attempts_per_chunk
        self.predictor = BranchPredictor()
        self.victim = SpectreV1Victim(
            secret,
            rng=machine.rngs.stream("spectre/victim"),
            chunk_bits=channel.chunk_bits,
            window=window,
        )
        self._secret = secret

    def recover_chunk(self, chunk: int) -> int:
        """Train, prepare, mispredict, recover — one 5-bit chunk."""
        in_bounds = chunk % len(self.victim.array1)
        for _ in range(self.trainings):
            self.victim.call(in_bounds, self.predictor, self.channel)
            self.channel.background()
        self.channel.prepare()
        self.channel.background()
        self.victim.call(self.victim.oob_index(chunk), self.predictor, self.channel)
        recovered = self.channel.recover()
        self.channel.background()
        return recovered

    def run(self) -> AttackReport:
        """Recover the whole secret; majority-vote across attempts."""
        before = self.channel.miss_counts()
        cycles_before = self.channel.cycles
        recovered_chunks: list[int] = []
        correct = 0
        for chunk_index, true_value in enumerate(self.victim.chunks):
            votes: dict[int, int] = {}
            for _ in range(self.attempts_per_chunk):
                guess = self.recover_chunk(chunk_index)
                votes[guess] = votes.get(guess, 0) + 1
            best = max(votes, key=lambda v: (votes[v], -v))
            recovered_chunks.append(best)
            if best == true_value:
                correct += 1
        after = self.channel.miss_counts()
        recovered = unpack_chunks(
            recovered_chunks, n_bytes=len(self._secret), chunk_bits=self.victim.chunk_bits
        )
        return AttackReport(
            channel_name=self.channel.name,
            secret=self._secret,
            recovered=recovered,
            chunks_total=len(self.victim.chunks),
            chunks_correct=correct,
            l1=after.delta(before),
            channel_cycles=self.channel.cycles - cycles_before,
            frequency_hz=self.machine.spec.frequency_hz,
            chunk_bits=self.victim.chunk_bits,
        )
