"""Spectre v2: branch-target injection through a partially-tagged BTB.

Spectre v1 (``repro.spectre.attack``) steers a *conditional* branch's
direction.  Variant 2 steers an *indirect* branch's target: the branch
target buffer stores only a partial tag above its set index, so an
attacker executing an indirect branch at a congruent address in its own
address space installs an entry the victim's branch hits.  The poisoned
prediction sends the victim's transient execution into a disclosure
gadget that touches one of the existing ``repro.spectre.channels``
media, exactly like a v1 gadget.

The model keeps the three properties the attack depends on:

* **partial tagging** — :meth:`BranchTargetBuffer.aliasing_pc` produces
  a different address with identical index *and* tag, so cross-address-
  space training works without knowing the victim's full PC;
* **entry turnover** — every architectural execution of the victim's
  branch overwrites the entry with the real target, so the attacker
  must re-poison before each victim invocation;
* **defenses** — ``retpoline`` (the victim's indirect branches never
  consume BTB predictions) and ``ibpb`` (the predictor is flushed on
  the context switch into the victim), evaluated by
  ``repro.defense.evaluation.evaluate_spectre_v2``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bits import pack_chunks, unpack_chunks
from repro.errors import SpectreError
from repro.machine.machine import Machine
from repro.spectre.attack import AttackReport
from repro.spectre.channels import SpectreChannel
from repro.spectre.victim import TransientWindow

__all__ = [
    "BranchTargetBuffer",
    "SpectreV2Victim",
    "SpectreV2Attack",
    "V2_DEFENSES",
]

#: Recognised defense modes for the v2 attack (``None`` = undefended).
V2_DEFENSES = (None, "retpoline", "ibpb")


class BranchTargetBuffer:
    """Set-indexed, partially-tagged branch target buffer.

    An entry is looked up by ``index = (pc >> 4) % entries`` with a
    ``tag_bits``-wide tag taken from the bits directly above the index.
    Address bits above the tag never participate — that truncation is
    the vulnerability: congruent PCs in different address spaces share
    an entry.
    """

    def __init__(self, entries: int = 512, tag_bits: int = 8) -> None:
        if entries < 1 or entries & (entries - 1):
            raise SpectreError(f"entries must be a power of two, got {entries}")
        if tag_bits < 1:
            raise SpectreError(f"tag_bits must be >= 1, got {tag_bits}")
        self.entries = entries
        self.tag_bits = tag_bits
        self._index_bits = entries.bit_length() - 1
        # index -> (tag, predicted target); None when invalid.
        self._table: list[tuple[int, int] | None] = [None] * entries

    def _locate(self, pc: int) -> tuple[int, int]:
        index = (pc >> 4) % self.entries
        tag = (pc >> (4 + self._index_bits)) & ((1 << self.tag_bits) - 1)
        return index, tag

    def predict(self, pc: int) -> int | None:
        """Predicted target for the indirect branch at ``pc`` (or None)."""
        index, tag = self._locate(pc)
        entry = self._table[index]
        if entry is None or entry[0] != tag:
            return None
        return entry[1]

    def update(self, pc: int, target: int) -> None:
        """Install the resolved target (evicting any tag-conflicting entry)."""
        index, tag = self._locate(pc)
        self._table[index] = (tag, target)

    def flush(self) -> None:
        """IBPB: invalidate every entry."""
        self._table = [None] * self.entries

    def aliasing_pc(self, pc: int, salt: int = 1) -> int:
        """A different address whose index *and* tag collide with ``pc``.

        Adding multiples of ``2 ** (4 + index_bits + tag_bits)`` changes
        only bits the lookup ignores — the attacker's trampoline address.
        """
        if salt < 1:
            raise SpectreError(f"salt must be >= 1, got {salt}")
        return pc + (salt << (4 + self._index_bits + self.tag_bits))


class SpectreV2Victim:
    """A victim dispatching through a function-pointer table.

    Architecturally every call lands in one of ``n_handlers`` benign
    handlers.  Microarchitecturally, if the BTB predicts the attacker's
    gadget address, the disclosure gadget runs transiently and touches
    channel element ``chunks[staged]`` before the squash — ``staged``
    models the attacker-controlled register contents left in place for
    the gadget to consume.
    """

    def __init__(
        self,
        secret: bytes,
        rng: np.random.Generator,
        chunk_bits: int = 5,
        n_handlers: int = 4,
        branch_pc: int = 0x402000,
        gadget_pc: int = 0x40F300,
        window: TransientWindow | None = None,
    ) -> None:
        if not secret:
            raise SpectreError("victim needs a non-empty secret")
        if n_handlers < 1:
            raise SpectreError("dispatch table needs at least one handler")
        self.chunk_bits = chunk_bits
        self.chunks = pack_chunks(secret, chunk_bits)
        self.branch_pc = branch_pc
        self.gadget_pc = gadget_pc
        self.handler_pcs = [0x404000 + 64 * i for i in range(n_handlers)]
        if gadget_pc in self.handler_pcs or gadget_pc == branch_pc:
            raise SpectreError("gadget_pc must not collide with victim code")
        self.window = window or TransientWindow()
        self._rng = rng
        self._staged = 0

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def stage(self, chunk: int) -> None:
        """Leave attacker-controlled register state selecting ``chunk``."""
        if not 0 <= chunk < self.n_chunks:
            raise SpectreError(
                f"chunk must be in 0..{self.n_chunks - 1}, got {chunk}"
            )
        self._staged = chunk

    def call(
        self,
        selector: int,
        btb: BranchTargetBuffer,
        channel,
        speculate: bool = True,
    ) -> bool:
        """One dispatch; returns True if the transient gadget fired.

        ``speculate=False`` models a retpoline-compiled victim: the
        indirect branch is a return trampoline that never consumes a
        BTB prediction.
        """
        if not 0 <= selector < len(self.handler_pcs):
            raise SpectreError(
                f"selector must be in 0..{len(self.handler_pcs) - 1}, "
                f"got {selector}"
            )
        target = self.handler_pcs[selector]
        predicted = btb.predict(self.branch_pc) if speculate else None
        fired = False
        if (
            predicted == self.gadget_pc
            and predicted != target
            and self._rng.random() < self.window.success_rate
        ):
            channel.touch(self.chunks[self._staged], transient=True)
            fired = True
        # The architectural path runs the benign handler — unlike v1's
        # in-bounds gadget it never touches the probe medium; its cache
        # footprint is modelled by the attack's background() calls.
        btb.update(self.branch_pc, target)
        return fired


class SpectreV2Attack:
    """Recovers a victim secret by branch-target injection.

    Mirrors :class:`~repro.spectre.attack.SpectreV1Attack`'s phase
    structure — poison, prepare, dispatch, recover — and returns the
    same :class:`~repro.spectre.attack.AttackReport`, so scenario
    success criteria consume both variants identically.
    """

    def __init__(
        self,
        machine: Machine,
        channel: SpectreChannel,
        secret: bytes,
        trainings: int = 4,
        attempts_per_chunk: int = 1,
        window: TransientWindow | None = None,
        defense: str | None = None,
        btb: BranchTargetBuffer | None = None,
    ) -> None:
        if trainings < 1:
            raise SpectreError("need at least one training call per chunk")
        if attempts_per_chunk < 1:
            raise SpectreError("need at least one attempt per chunk")
        if defense not in V2_DEFENSES:
            raise SpectreError(
                f"unknown defense {defense!r}; expected one of {V2_DEFENSES}"
            )
        self.machine = machine
        self.channel = channel
        self.trainings = trainings
        self.attempts_per_chunk = attempts_per_chunk
        self.defense = defense
        self.btb = btb or BranchTargetBuffer()
        self.victim = SpectreV2Victim(
            secret,
            rng=machine.rngs.stream("spectre/v2-victim"),
            chunk_bits=channel.chunk_bits,
            window=window,
        )
        self._train_pc = self.btb.aliasing_pc(self.victim.branch_pc)
        self._secret = secret

    def poison(self) -> None:
        """Train the shared BTB entry from the attacker's address space."""
        for _ in range(self.trainings):
            self.btb.update(self._train_pc, self.victim.gadget_pc)

    def recover_chunk(self, chunk: int) -> int:
        """Poison, prepare, dispatch, recover — one chunk."""
        self.poison()
        if self.defense == "ibpb":
            # Barrier on the context switch into the victim: the
            # attacker's training never survives to the dispatch.
            self.btb.flush()
        self.channel.prepare()
        self.channel.background()
        self.victim.stage(chunk)
        self.victim.call(
            chunk % len(self.victim.handler_pcs),
            self.btb,
            self.channel,
            speculate=self.defense != "retpoline",
        )
        recovered = self.channel.recover()
        self.channel.background()
        return recovered

    def run(self) -> AttackReport:
        """Recover the whole secret; majority-vote across attempts."""
        before = self.channel.miss_counts()
        cycles_before = self.channel.cycles
        recovered_chunks: list[int] = []
        correct = 0
        for chunk_index, true_value in enumerate(self.victim.chunks):
            votes: dict[int, int] = {}
            for _ in range(self.attempts_per_chunk):
                guess = self.recover_chunk(chunk_index)
                votes[guess] = votes.get(guess, 0) + 1
            best = max(votes, key=lambda v: (votes[v], -v))
            recovered_chunks.append(best)
            if best == true_value:
                correct += 1
        after = self.channel.miss_counts()
        recovered = unpack_chunks(
            recovered_chunks,
            n_bytes=len(self._secret),
            chunk_bits=self.victim.chunk_bits,
        )
        return AttackReport(
            channel_name=self.channel.name,
            secret=self._secret,
            recovered=recovered,
            chunks_total=len(self.victim.chunks),
            chunks_correct=correct,
            l1=after.delta(before),
            channel_cycles=self.channel.cycles - cycles_before,
            frequency_hz=self.machine.spec.frequency_hz,
            chunk_bits=self.victim.chunk_bits,
        )
