"""Shard planning: cut a sweep grid into cache-aware work units.

A shard is the unit of dispatch, retry and stealing in the cluster
fabric.  Planning is pure and deterministic — the same pending list
always yields the same shards in the same order — so a re-planned run
(or a resumed coordinator) dispatches identical work units and the
merged table stays byte-identical to a serial run.

**Locality.**  ``ParameterSweep.points()`` enumerates the cartesian
product with the *last* grid axis fastest, trials fastest of all; runs
of consecutive points therefore share every coordinate except that last
axis.  Each such run gets one ``locality`` key (the canonical encoding
of the shared prefix), and shards never mix localities unless a single
locality outgrows ``shard_size``.  Two payoffs:

* a worker holding a warm per-host :class:`~repro.exec.cache.ResultCache`
  (or a warm OS page cache over one) keeps receiving the neighbouring
  points whose entries sit next to the ones it just wrote — the
  locality-aware half of the ROADMAP's "cache-aware work stealing";
* when a straggler's shard is re-dispatched, the whole prefix moves as
  one unit, so the stealing worker replays one locality instead of a
  random scatter of the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.exec.canonical import canonical_point_key
from repro.sweep import SweepPoint

__all__ = ["Shard", "locality_key", "plan_shards"]


@dataclass(frozen=True)
class Shard:
    """One dispatchable slice of the grid: contiguous, one locality."""

    id: int
    pending: tuple[tuple[int, SweepPoint], ...]
    locality: str

    def __len__(self) -> int:
        return len(self.pending)

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(index for index, _ in self.pending)


def locality_key(point: SweepPoint) -> str:
    """Canonical key of every coordinate except the fastest-varying axis.

    Points sharing a key are grid neighbours (same values on all slower
    axes); single-axis grids collapse to one key per trial group, which
    degenerates gracefully to plain contiguous chunking.
    """
    names = list(point.values)
    prefix = {name: point.values[name] for name in names[:-1]}
    return canonical_point_key(prefix)


def plan_shards(
    pending: Sequence[tuple[int, SweepPoint]], shard_size: int
) -> list[Shard]:
    """Group ``pending`` into locality-pure shards of at most ``shard_size``.

    Order is preserved end to end: shard ids ascend with the first point
    index they contain, and points keep their relative order inside each
    shard — merging per-point results back by index reproduces the
    serial order exactly.
    """
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    shards: list[Shard] = []
    current: list[tuple[int, SweepPoint]] = []
    current_locality: str | None = None

    def close() -> None:
        if current:
            shards.append(
                Shard(
                    id=len(shards),
                    pending=tuple(current),
                    locality=current_locality or "",
                )
            )
            current.clear()

    for index, point in pending:
        locality = locality_key(point)
        if current and (
            locality != current_locality or len(current) >= shard_size
        ):
            close()
        if not current:
            current_locality = locality
        current.append((index, point))
    close()
    return shards
