"""The cluster coordinator: shard dispatch, fault tolerance, merge.

One :class:`Coordinator` owns one distributed run: it partitions the
pending points into locality-pure shards (:mod:`repro.cluster.shards`),
serves a JSONL socket (TCP or Unix) that workers register on, and
drives the run to completion through four cooperating mechanisms:

* **locality-aware assignment** — an idle worker preferentially gets
  the next shard whose locality matches the one it just finished, so
  per-host caches stay warm;
* **heartbeat eviction** — a worker silent for ``heartbeat_timeout``
  seconds is dropped and its in-flight shard goes back to the queue;
* **bounded retry with exponential backoff** — a shard lost to a dead
  worker (or failed by one) is re-dispatched after
  ``retry_backoff_s * 2**(attempt-1)`` seconds, at most ``max_retries``
  times beyond the first attempt before the run fails;
* **straggler stealing** — when the queue is empty but a shard has been
  running longer than ``steal_after_s`` on a single worker, an idle
  worker gets a *duplicate* dispatch; whichever copy reports a point
  first wins.

Correctness under all of that rests on the **idempotent merge**: every
result is recorded by point index exactly once — late duplicates from
evicted workers, retried shards or stolen copies are counted
(:attr:`Coordinator.duplicate_results`) and dropped.  Merged metrics
travel as JSON, which round-trips finite floats bit-exactly, so the
assembled table is byte-identical to a serial run of the same grid.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    ClusterError,
    ClusterProtocolError,
    encode_obj,
    encode_points,
    read_message,
    send_message,
)
from repro.cluster.shards import Shard, plan_shards
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, Span, get_registry, merge_snapshot
from repro.service.endpoints import Endpoint, parse_endpoint, start_endpoint_server
from repro.service.events import Event
from repro.sweep import SweepPoint

__all__ = ["Coordinator", "ShardState", "WorkerHandle"]


@dataclass
class ShardState:
    """One shard's dispatch lifecycle inside a run."""

    shard: Shard
    #: Dispatch attempts so far (first dispatch counts as 1).
    attempts: int = 0
    #: Workers currently holding a copy (2 while a steal is in flight).
    active: set[str] = field(default_factory=set)
    #: Point indices not yet merged.
    remaining: set[int] = field(default_factory=set)
    dispatched_at: float = 0.0
    #: Backoff gate: not assignable before this (coordinator clock).
    next_eligible_at: float = 0.0

    def __post_init__(self) -> None:
        self.remaining = set(self.shard.indices)

    @property
    def done(self) -> bool:
        return not self.remaining


@dataclass
class WorkerHandle:
    """One registered worker connection."""

    name: str
    writer: asyncio.StreamWriter
    last_seen: float
    #: Shard ids this worker currently holds (one, or two mid-steal).
    shards: set[int] = field(default_factory=set)
    #: Locality of the last shard dispatched to this worker.
    locality: str | None = None
    #: Local pool width the worker registered with (its ``jobs=``).
    slots: int = 1
    points_done: int = 0

    @property
    def idle(self) -> bool:
        return not self.shards


class Coordinator:
    """Drives one distributed sweep run over registered workers.

    Parameters
    ----------
    pending:
        ``(index, point)`` pairs to compute (cache misses only — the
        executor layer has already served cache hits).
    factory:
        The sweep factory; must be picklable (module-level function or
        ``functools.partial``), exactly as for the parallel executor.
    shard_size:
        Max points per shard (locality groups may close shards early).
    heartbeat_timeout:
        Seconds of silence before a worker is evicted.
    max_retries:
        Re-dispatches allowed per shard beyond its first attempt.
    retry_backoff_s:
        Base of the exponential re-dispatch delay.
    steal_after_s:
        Age at which a lone in-flight shard becomes stealable by an
        idle worker; ``None`` disables stealing.
    no_worker_grace_s:
        With work unresolved and *zero* connected workers, fail the run
        after this many seconds (workers may reconnect within it).
    on_event:
        Optional callback receiving :class:`~repro.service.events.Event`
        objects narrating the run (worker joins/losses, dispatches,
        re-dispatches, steals) in the service's JSONL vocabulary.
    clock:
        Monotonic time source; defaults to the registry's clock (tests
        inject a fake, usually via :class:`~repro.obs.ManualClock`).
    registry:
        Metrics registry the run's counters and spans land on; defaults
        to the process registry.  The public tallies
        (:attr:`duplicate_results`, :attr:`redispatches`,
        :attr:`steals`, :attr:`remote_cache_hits`) are *views* over
        these instruments — deltas since construction — so sequential
        runs in one process never double-count.
    """

    def __init__(
        self,
        pending: Sequence[tuple[int, SweepPoint]],
        factory: Callable[[SweepPoint], Mapping[str, float]],
        *,
        shard_size: int = 4,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 3,
        retry_backoff_s: float = 0.5,
        steal_after_s: float | None = 30.0,
        no_worker_grace_s: float = 30.0,
        on_event: Callable[[Event], None] | None = None,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        self._factory_b64 = encode_obj(factory)
        self.shard_size = int(shard_size)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.steal_after_s = steal_after_s
        self.no_worker_grace_s = float(no_worker_grace_s)
        self._on_event = on_event
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock if clock is not None else self.registry.clock
        self._seq = itertools.count()

        self._shards = [ShardState(shard=s) for s in plan_shards(pending, self.shard_size)]
        self._states_by_id = {state.shard.id: state for state in self._shards}
        self.total_points = sum(len(s.shard) for s in self._shards)
        #: index -> (metrics, elapsed_s); the idempotent merge target.
        self._results: dict[int, tuple[dict, float]] = {}
        self._queue: list[ShardState] = list(self._shards)
        self._workers: dict[str, WorkerHandle] = {}
        self._names = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._monitor: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        #: In-flight shard dispatch sends (see _dispatch / stop).
        self._send_tasks: set[asyncio.Task] = set()
        self._first_worker = asyncio.Event()
        self._finished = asyncio.Event()
        self._failure: BaseException | None = None
        self._stopped = False
        self._ever_had_workers = False
        self._workerless_since: float | None = None
        self.address: Endpoint | None = None

        # Run counters (surfaced in events and by the executor's log)
        # live on the registry; the public tallies are deltas since
        # construction (see the ``registry`` parameter above).
        self._c_duplicates = self.registry.counter("cluster.duplicate_results")
        self._c_redispatches = self.registry.counter("cluster.redispatches")
        self._c_steals = self.registry.counter("cluster.steals")
        self._c_remote_hits = self.registry.counter("cluster.remote_cache_hits")
        self._base_duplicates = self._c_duplicates.value
        self._base_redispatches = self._c_redispatches.value
        self._base_steals = self._c_steals.value
        self._base_remote_hits = self._c_remote_hits.value
        #: Open dispatch→completion spans, keyed (shard id, worker name).
        self._dispatch_spans: dict[tuple[int, str], Span] = {}
        #: Per-worker merge baselines for shipped registry snapshots
        #: (workers re-ship cumulative state; the baseline keeps the
        #: fleet merge delta-based).  Keyed by worker name.
        self._metric_baselines: dict[str, dict] = {}

        if self.total_points == 0:
            self._finished.set()

    # ------------------------------------------------------------------
    # run counters (views over the registry)
    # ------------------------------------------------------------------
    @property
    def duplicate_results(self) -> int:
        """Late duplicate point results dropped by the merge."""
        return self._c_duplicates.value - self._base_duplicates

    @property
    def redispatches(self) -> int:
        """Shards re-queued after a failure, loss, or anomaly."""
        return self._c_redispatches.value - self._base_redispatches

    @property
    def steals(self) -> int:
        """Straggler shards duplicated onto an idle worker."""
        return self._c_steals.value - self._base_steals

    @property
    def remote_cache_hits(self) -> int:
        """Points a worker answered from its local result cache."""
        return self._c_remote_hits.value - self._base_remote_hits

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, endpoint: Endpoint | str) -> Endpoint:
        """Bind the coordinator socket; returns the actual address."""
        if isinstance(endpoint, str):
            endpoint = parse_endpoint(endpoint)
        self._server, self.address = await start_endpoint_server(
            self._handle_connection, endpoint
        )
        self._monitor = asyncio.get_running_loop().create_task(
            self._monitor_loop(), name="cluster-monitor"
        )
        return self.address

    async def stop(self, reason: str = "coordinator stopped") -> None:
        """Tear the run down: notify workers, close everything.

        Safe to call at any point, including with shards in flight — the
        run is marked failed (unless already complete), workers receive
        a ``shutdown`` frame, and every task/connection is reaped.
        """
        if self._stopped:
            return
        self._stopped = True
        if not self._finished.is_set():
            self._failure = ClusterError(
                f"{reason} with {self.total_points - len(self._results)} "
                "point(s) unresolved"
            )
            self._finished.set()
        # Swap pattern throughout: take ownership of the shared handle
        # *before* the first await, so a concurrent stop() (or a handler
        # observing the teardown) never sees a half-cancelled task.
        monitor, self._monitor = self._monitor, None
        if monitor is not None:
            monitor.cancel()
            try:
                await monitor
            except asyncio.CancelledError:
                pass
        sends, self._send_tasks = self._send_tasks, set()
        for task in sends:
            task.cancel()
        for task in sends:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for worker in list(self._workers.values()):
            await self._send_safe(worker, {"type": "shutdown", "reason": reason})
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Leave the connections open: a worker honouring ``shutdown``
        # still owes us its final frames (``shard-done``/``goodbye``
        # snapshots for the fleet metrics merge) and closes its end when
        # done, so handlers drain to EOF on their own.  Cancellation is
        # a last resort for unresponsive peers (it also trips a noisy
        # wart in asyncio.streams' connection_made callback on 3.11).
        if self._handlers:
            _, stragglers = await asyncio.wait(set(self._handlers), timeout=2.0)
            for task in stragglers:
                task.cancel()
            for task in stragglers:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        for worker in list(self._workers.values()):
            worker.writer.close()
        self._handlers.clear()
        self._workers.clear()

    async def wait_for_workers(self, timeout: float) -> bool:
        """Block until at least one worker registers (or ``timeout``)."""
        if self._workers:
            return True
        try:
            await asyncio.wait_for(self._first_worker.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def results(self) -> list[tuple[int, dict, float]]:
        """Await completion; the merged ``(index, metrics, elapsed)`` list."""
        await self._finished.wait()
        if self._failure is not None:
            raise self._failure
        return [
            (index, metrics, elapsed)
            for index, (metrics, elapsed) in sorted(self._results.items())
        ]

    @property
    def workers(self) -> tuple[str, ...]:
        return tuple(sorted(self._workers))

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def merged_points(self) -> int:
        return len(self._results)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        worker: WorkerHandle | None = None
        try:
            register = await read_message(reader)
            if register is None or register.get("type") != "register":
                return
            if register.get("version") != PROTOCOL_VERSION:
                await send_message(
                    writer,
                    {
                        "type": "shutdown",
                        "reason": f"protocol version mismatch "
                        f"(coordinator speaks {PROTOCOL_VERSION})",
                    },
                )
                return
            worker = self._register(register, writer)
            await send_message(
                writer,
                {"type": "welcome", "worker": worker.name,
                 "version": PROTOCOL_VERSION},
            )
            self._assign(worker)
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                worker.last_seen = self._clock()
                self._dispatch_message(worker, message)
        except (ConnectionResetError, BrokenPipeError, ClusterProtocolError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            if worker is not None and worker.name in self._workers:
                self._drop_worker(worker, reason="disconnected")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _register(self, message: dict, writer: asyncio.StreamWriter) -> WorkerHandle:
        requested = str(message.get("worker") or f"worker-{next(self._names)}")
        name = requested
        suffix = 1
        while name in self._workers:
            suffix += 1
            name = f"{requested}-{suffix}"
        worker = WorkerHandle(
            name=name,
            writer=writer,
            last_seen=self._clock(),
            slots=max(1, int(message.get("slots") or 1)),
        )
        self._workers[name] = worker
        self._ever_had_workers = True
        self._workerless_since = None
        self._first_worker.set()
        self.registry.counter("cluster.workers_joined").inc()
        self._emit(
            "worker-joined",
            worker=name,
            workers=len(self._workers),
            slots=worker.slots,
        )
        return worker

    def _dispatch_message(self, worker: WorkerHandle, message: dict) -> None:
        kind = message.get("type")
        if kind == "heartbeat":
            return
        if kind == "point-result":
            self._on_point_result(worker, message)
        elif kind == "shard-done":
            self._on_shard_done(worker, message)
        elif kind == "shard-error":
            self._on_shard_error(worker, message)
        elif kind == "goodbye":
            self._on_goodbye(worker, message)
        else:
            raise ClusterProtocolError(f"unexpected worker message {kind!r}")

    # ------------------------------------------------------------------
    # result merging (idempotent by point index)
    # ------------------------------------------------------------------
    def _on_point_result(self, worker: WorkerHandle, message: dict) -> None:
        state = self._states_by_id.get(int(message.get("shard", -1)))
        index = int(message.get("index", -1))
        metrics = message.get("metrics")
        if state is None or not isinstance(metrics, dict):
            raise ClusterProtocolError(f"malformed point-result: {message}")
        if index in self._results or index not in set(state.shard.indices):
            # Late duplicate from an evicted worker, a retried shard or
            # a stolen copy: merged already, drop it.
            self._c_duplicates.inc()
            return
        self._results[index] = (metrics, float(message.get("elapsed_s", 0.0)))
        state.remaining.discard(index)
        worker.points_done += 1
        self.registry.counter("cluster.points_done", worker=worker.name).inc()
        if message.get("cached"):
            self._c_remote_hits.inc()
        if len(self._results) >= self.total_points:
            self._emit(
                "cluster-done",
                points=self.total_points,
                duplicates=self.duplicate_results,
                redispatches=self.redispatches,
                steals=self.steals,
            )
            self._finished.set()

    def _on_shard_done(self, worker: WorkerHandle, message: dict) -> None:
        self._merge_worker_metrics(worker, message.get("snapshot"))
        state = self._states_by_id.get(int(message.get("shard", -1)))
        if state is None:
            raise ClusterProtocolError(f"shard-done for unknown shard: {message}")
        self._end_span(state.shard.id, worker.name)
        worker.shards.discard(state.shard.id)
        state.active.discard(worker.name)
        if not state.done and not state.active:
            # The worker claims completion but points are missing — a
            # protocol anomaly; treat it like a failed attempt.
            self._requeue(state, reason=f"incomplete shard-done from {worker.name}")
        self._assign(worker)

    def _on_shard_error(self, worker: WorkerHandle, message: dict) -> None:
        state = self._states_by_id.get(int(message.get("shard", -1)))
        if state is None:
            raise ClusterProtocolError(f"shard-error for unknown shard: {message}")
        self._end_span(state.shard.id, worker.name)
        worker.shards.discard(state.shard.id)
        state.active.discard(worker.name)
        if not state.done and not state.active:
            self._requeue(
                state,
                reason=f"worker {worker.name} failed: {message.get('message')}",
            )
        self._assign(worker)

    def _on_goodbye(self, worker: WorkerHandle, message: dict) -> None:
        """A worker honouring ``shutdown``: take its parting snapshot."""
        self._merge_worker_metrics(worker, message.get("snapshot"))

    def _merge_worker_metrics(self, worker: WorkerHandle, snapshot: object) -> None:
        """Fold one shipped registry snapshot into the fleet registry.

        Delta-based against the worker's previous shipment, so the
        cumulative snapshots in successive ``shard-done`` frames (and
        the final ``goodbye``) never double-count; a worker that
        reconnects under a new name simply starts a fresh baseline.
        """
        if not isinstance(snapshot, dict):
            return
        self._metric_baselines[worker.name] = merge_snapshot(
            self.registry, snapshot, self._metric_baselines.get(worker.name)
        )
        self.registry.counter("cluster.snapshots_merged").inc()

    # ------------------------------------------------------------------
    # dispatch / retry / steal
    # ------------------------------------------------------------------
    def _assign(self, worker: WorkerHandle) -> None:
        """Hand the idle ``worker`` its next shard, if any is eligible."""
        if self._finished.is_set() or not worker.idle:
            return
        now = self._clock()
        eligible = [s for s in self._queue if now >= s.next_eligible_at]
        if eligible:
            preferred = [s for s in eligible if s.shard.locality == worker.locality]
            state = min(preferred or eligible, key=lambda s: s.shard.id)
            self._queue.remove(state)
            self._dispatch(worker, state)
            return
        if self._queue or self.steal_after_s is None:
            return  # everything is backing off, or stealing disabled
        stealable = [
            s
            for s in self._shards
            if not s.done
            and len(s.active) == 1
            and worker.name not in s.active
            and now - s.dispatched_at >= self.steal_after_s
        ]
        if stealable:
            state = min(stealable, key=lambda s: s.dispatched_at)
            self._c_steals.inc()
            self._emit(
                "shard-stolen",
                shard=state.shard.id,
                worker=worker.name,
                straggler=next(iter(state.active)),
            )
            self._dispatch(worker, state, stolen=True)

    def _dispatch(
        self, worker: WorkerHandle, state: ShardState, stolen: bool = False
    ) -> None:
        state.attempts += 1 if not stolen else 0
        state.active.add(worker.name)
        state.dispatched_at = self._clock()
        worker.shards.add(state.shard.id)
        worker.locality = state.shard.locality
        self._dispatch_spans[(state.shard.id, worker.name)] = (
            self.registry.begin_span(
                "shard.dispatch", shard=state.shard.id, worker=worker.name
            )
        )
        message = {
            "type": "shard",
            "shard": state.shard.id,
            "factory": self._factory_b64,
            "points": encode_points(
                [(i, p) for i, p in state.shard.pending if i in state.remaining]
            ),
        }
        self._emit(
            "shard-dispatched",
            shard=state.shard.id,
            worker=worker.name,
            points=len(state.remaining),
            attempt=state.attempts,
            stolen=stolen,
        )
        # asyncio holds only a weak reference to running tasks: retain
        # the send until it completes, and cancel stragglers in stop().
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._send_or_drop(worker, message))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send_or_drop(self, worker: WorkerHandle, message: dict) -> None:
        try:
            await send_message(worker.writer, message)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            if worker.name in self._workers:
                self._drop_worker(worker, reason="send failed")

    async def _send_safe(self, worker: WorkerHandle, message: dict) -> None:
        try:
            await send_message(worker.writer, message)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass

    def _requeue(self, state: ShardState, reason: str) -> None:
        """Push a failed/lost shard back with backoff, or fail the run."""
        if state.done or self._finished.is_set():
            return
        if state.attempts > self.max_retries:
            self._fail(
                ClusterError(
                    f"shard {state.shard.id} failed after "
                    f"{state.attempts} attempt(s) "
                    f"({self.max_retries} retries allowed): {reason}"
                )
            )
            return
        delay = self.retry_backoff_s * (2 ** (state.attempts - 1))
        state.next_eligible_at = self._clock() + delay
        self._c_redispatches.inc()
        self._emit(
            "shard-requeued",
            shard=state.shard.id,
            reason=reason,
            attempt=state.attempts,
            retry_in_s=round(delay, 6),
        )
        self._queue.append(state)

    def _end_span(self, shard_id: int, worker_name: str) -> None:
        """Close the dispatch span for one (shard, worker) copy, if open."""
        span = self._dispatch_spans.pop((shard_id, worker_name), None)
        if span is not None:
            span.end()

    def _drop_worker(self, worker: WorkerHandle, reason: str) -> None:
        self._workers.pop(worker.name, None)
        self.registry.counter("cluster.workers_lost").inc()
        if reason == "heartbeat timeout":
            self.registry.counter("cluster.worker_evictions").inc()
        self._emit(
            "worker-lost",
            worker=worker.name,
            reason=reason,
            workers=len(self._workers),
        )
        for shard_id in list(worker.shards):
            state = self._states_by_id[shard_id]
            self._end_span(shard_id, worker.name)
            state.active.discard(worker.name)
            if not state.done and not state.active:
                self._requeue(state, reason=f"worker {worker.name} {reason}")
        worker.shards.clear()
        if not self._workers:
            self._workerless_since = self._clock()

    def _fail(self, exc: BaseException) -> None:
        if not self._finished.is_set():
            self._failure = exc
            self._emit("cluster-failed", message=str(exc))
            self._finished.set()

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    async def _monitor_loop(self) -> None:
        tick = max(0.05, min(self.heartbeat_timeout / 4, 0.5))
        while not self._finished.is_set():
            await asyncio.sleep(tick)
            now = self._clock()
            for worker in list(self._workers.values()):
                if now - worker.last_seen > self.heartbeat_timeout:
                    self._drop_worker(worker, reason="heartbeat timeout")
                    await self._send_safe(
                        worker, {"type": "shutdown", "reason": "heartbeat timeout"}
                    )
                    worker.writer.close()
            # Backoffs expire and workers go idle between messages; give
            # every idle worker a dispatch opportunity each tick.
            for worker in list(self._workers.values()):
                self._assign(worker)
            if (
                not self._workers
                and self._ever_had_workers
                and self._workerless_since is not None
                and now - self._workerless_since > self.no_worker_grace_s
                and len(self._results) < self.total_points
            ):
                self._fail(
                    ClusterError(
                        "every worker disconnected and none rejoined within "
                        f"{self.no_worker_grace_s:.1f}s; "
                        f"{self.total_points - len(self._results)} point(s) "
                        "unresolved"
                    )
                )

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **data) -> None:
        if self._on_event is None:
            return
        self._on_event(Event(kind, {**data, "seq": next(self._seq)}))
