"""Wire protocol of the cluster fabric: JSONL frames over a socket.

Coordinator and workers exchange newline-delimited JSON objects, one
message per line, over TCP or a Unix socket (the same framing as the
sweep service's front door).  The vocabulary:

worker -> coordinator:

* ``{"type": "register", "worker": name, "slots": n, "version": 1}``
  — join the cluster; the coordinator answers ``welcome`` (possibly
  renaming the worker to keep names unique);
* ``{"type": "heartbeat", "worker": name}`` — liveness, sent every
  ``heartbeat_interval`` seconds while idle *and* while computing;
* ``{"type": "point-result", "shard": id, "index": i, "metrics": {...},
  "elapsed_s": x, "cached": bool}`` — one computed (or locally cached)
  point, streamed the moment it finishes;
* ``{"type": "shard-done", "shard": id}`` — every point of the shard
  was reported;
* ``{"type": "shard-error", "shard": id, "message": str}`` — the
  factory raised; the coordinator retries the shard elsewhere.

coordinator -> worker:

* ``{"type": "welcome", "worker": name, "version": 1}``;
* ``{"type": "shard", "shard": id, "factory": b64, "points":
  [[index, b64], ...]}`` — one work unit;
* ``{"type": "shutdown", "reason": str}`` — the run is over (or the
  coordinator is stopping); the worker disconnects.

Sweep points and the factory cross the wire as base64-encoded pickles —
the exact serialisation contract :class:`~repro.exec.parallel.ParallelExecutor`
already imposes on factories (module-level functions or
``functools.partial``), extended from process boundaries to host
boundaries.  Pickle is executable by construction, so the transport is
only as trustworthy as the peers: bind coordinators to loopback or a
trusted network, never the open internet (``docs/distributed.md``).
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.sweep import SweepPoint

__all__ = [
    "PROTOCOL_VERSION",
    "ClusterError",
    "ClusterProtocolError",
    "send_message",
    "read_message",
    "encode_obj",
    "decode_obj",
    "encode_points",
    "decode_points",
    "decode_factory",
]

#: Bump when the message vocabulary changes incompatibly; register /
#: welcome carry it so mismatched peers fail fast instead of mid-run.
#: v2: workers answer ``shutdown`` with a ``goodbye`` frame (optionally
#: carrying a metrics snapshot, as ``shard-done`` now may too).
PROTOCOL_VERSION = 2


class ClusterError(ReproError):
    """A distributed run could not complete (no workers, retries spent)."""


class ClusterProtocolError(ClusterError):
    """A peer sent a malformed or unexpected message."""


async def send_message(writer: asyncio.StreamWriter, message: Mapping) -> None:
    """Write one JSONL frame and flush it."""
    writer.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")
    await writer.drain()


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one JSONL frame; ``None`` means the peer closed the stream."""
    line = await reader.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ClusterProtocolError(f"undecodable frame: {line[:80]!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ClusterProtocolError(f"frame is not a typed object: {line[:80]!r}")
    return message


def encode_obj(obj: object) -> str:
    """Pickle + base64: how factories and points ride inside JSON."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_obj(text: str) -> object:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:  # corrupt payload: a protocol-level failure
        raise ClusterProtocolError(f"undecodable payload: {exc}") from exc


def encode_points(pending: Sequence[tuple[int, SweepPoint]]) -> list[list]:
    """``[[index, b64(point)], ...]`` for one shard message."""
    return [[int(index), encode_obj(point)] for index, point in pending]


def decode_points(payload: object) -> list[tuple[int, SweepPoint]]:
    if not isinstance(payload, list):
        raise ClusterProtocolError(f"shard points must be a list: {payload!r}")
    pending: list[tuple[int, SweepPoint]] = []
    for item in payload:
        if not isinstance(item, list) or len(item) != 2:
            raise ClusterProtocolError(f"bad shard point entry: {item!r}")
        index, encoded = item
        point = decode_obj(encoded)
        if not isinstance(point, SweepPoint):
            raise ClusterProtocolError(
                f"shard point {index} decoded to {type(point).__name__}"
            )
        pending.append((int(index), point))
    return pending


def decode_factory(payload: object) -> Callable:
    factory = decode_obj(str(payload))
    if not callable(factory):
        raise ClusterProtocolError(
            f"shard factory decoded to non-callable {type(factory).__name__}"
        )
    return factory
