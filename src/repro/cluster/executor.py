"""``DistributedExecutor``: the cluster fabric behind the ``Executor`` API.

This is the piece that makes distribution invisible to the rest of the
repository: it subclasses :class:`~repro.exec.base.Executor`, so
``ParameterSweep.run()``, the sweep service's scheduler, the benchmark
harness and the CLI all drive it exactly like the serial or parallel
executors — same cache handling, same ordered reassembly, same stats.

Per run it stands up a :class:`~repro.cluster.coordinator.Coordinator`
on ``bind`` (loopback TCP by default), optionally launches ``workers``
in-process :class:`~repro.cluster.worker.ClusterWorker` clients against
the *real* socket (so even the single-machine path exercises the full
wire protocol), and waits for the merged results.  External workers
started with ``python -m repro worker --connect ...`` may join the same
address and simply enlarge the pool.

Degradation is graceful by design: if **no** worker registers within
``wait_workers_s``, the run silently falls back to the local
:class:`~repro.exec.parallel.ParallelExecutor` (or serial for one job)
— a sweep never fails just because a cluster did not materialise.  Set
``fallback=False`` to make that a hard :class:`ClusterError` instead.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, Mapping, Sequence

from repro.cluster.coordinator import Coordinator
from repro.cluster.protocol import ClusterError
from repro.cluster.worker import ClusterWorker
from repro.errors import ConfigurationError
from repro.exec.base import Executor
from repro.exec.parallel import ParallelExecutor
from repro.exec.serial import SerialExecutor
from repro.obs import MetricsRegistry
from repro.service.endpoints import Endpoint, parse_endpoint
from repro.service.events import Event
from repro.sweep import SweepPoint

__all__ = ["DistributedExecutor"]


class DistributedExecutor(Executor):
    """Shard a sweep across cluster workers; merge byte-identically.

    Parameters
    ----------
    workers:
        In-process workers to launch per run.  ``0`` relies entirely on
        external workers dialing ``bind`` — useful with a fixed TCP
        address and ``python -m repro worker`` on other hosts.
    bind:
        Coordinator endpoint: ``tcp://host:port`` (``port`` may be 0
        for an ephemeral pick), bare ``host:port``, or a Unix socket
        path.  Defaults to loopback; see ``docs/distributed.md`` before
        binding anything wider.
    jobs:
        Process-pool width *inside each* in-process worker.
    shard_size:
        Max points per dispatched shard.
    wait_workers_s:
        How long to wait for the first registration before degrading.
    heartbeat_timeout / max_retries / retry_backoff_s / steal_after_s:
        Fault-tolerance knobs, forwarded to the coordinator.
    cache_dir:
        Optional per-worker result-cache directory for the in-process
        workers (the executor-level cache passed to :meth:`run` is
        independent and still applies first).
    fallback:
        ``False`` turns the no-workers degradation into a hard error.
    on_event:
        Optional callback for the coordinator's shard/worker events.
    """

    name = "distributed"

    def __init__(
        self,
        workers: int = 2,
        *,
        bind: str = "tcp://127.0.0.1:0",
        jobs: int = 1,
        shard_size: int = 4,
        wait_workers_s: float = 10.0,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 3,
        retry_backoff_s: float = 0.5,
        steal_after_s: float | None = 30.0,
        no_worker_grace_s: float = 30.0,
        cache_dir: str | None = None,
        fallback: bool = True,
        on_event: Callable[[Event], None] | None = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.workers = int(workers)
        self.bind = parse_endpoint(bind)
        self.worker_jobs = int(jobs)
        self.shard_size = int(shard_size)
        self.wait_workers_s = float(wait_workers_s)
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else max(0.05, heartbeat_timeout / 4)
        )
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.steal_after_s = steal_after_s
        self.no_worker_grace_s = float(no_worker_grace_s)
        self.cache_dir = cache_dir
        self.fallback = bool(fallback)
        self.on_event = on_event
        #: Reported parallelism: every in-process worker times its pool.
        self.jobs = max(1, self.workers * self.worker_jobs)
        #: Actual bound address of the most recent run (ephemeral ports
        #: resolve here), and that run's fault-tolerance counters.
        self.address: Endpoint | None = None
        self.last_run: dict | None = None

    # ------------------------------------------------------------------
    def _compute(
        self,
        pending: Sequence[tuple[int, SweepPoint]],
        factory: Callable[[SweepPoint], Mapping[str, float]],
    ) -> Iterable[tuple[int, Mapping[str, float], float]]:
        if not pending:
            return []
        results = asyncio.run(self._run_cluster(list(pending), factory))
        if results is None:  # nobody registered: degrade to local compute
            if not self.fallback:
                raise ClusterError(
                    f"no workers registered at {self.address} within "
                    f"{self.wait_workers_s:.1f}s and fallback is disabled"
                )
            self.last_run = {"fallback": True, "workers": 0}
            local: Executor = (
                ParallelExecutor(jobs=self.jobs)
                if self.jobs > 1
                else SerialExecutor()
            )
            return local.compute_stream(pending, factory)
        return results

    async def _run_cluster(
        self,
        pending: list[tuple[int, SweepPoint]],
        factory: Callable[[SweepPoint], Mapping[str, float]],
    ) -> list[tuple[int, dict, float]] | None:
        coordinator = Coordinator(
            pending,
            factory,
            shard_size=self.shard_size,
            heartbeat_timeout=self.heartbeat_timeout,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            steal_after_s=self.steal_after_s,
            no_worker_grace_s=self.no_worker_grace_s,
            on_event=self.on_event,
        )
        self.address = await coordinator.start(self.bind)
        loop = asyncio.get_running_loop()
        worker_tasks = [
            loop.create_task(
                ClusterWorker(
                    self.address,
                    name=f"local-{i + 1}",
                    jobs=self.worker_jobs,
                    cache_dir=self.cache_dir,
                    heartbeat_interval=self.heartbeat_interval,
                    # Each in-process worker tallies on its own registry
                    # and ships snapshots over the wire, exactly like an
                    # external worker — the coordinator's fleet merge
                    # lands the totals back on the process registry.
                    registry=MetricsRegistry(),
                    ship_metrics=True,
                ).run(),
                name=f"cluster-worker-{i + 1}",
            )
            for i in range(self.workers)
        ]
        try:
            if not await coordinator.wait_for_workers(self.wait_workers_s):
                return None
            results = await coordinator.results()
            self.last_run = {
                "fallback": False,
                "workers": len(worker_tasks) or len(coordinator.workers),
                "shards": coordinator.shard_count,
                "redispatches": coordinator.redispatches,
                "steals": coordinator.steals,
                "duplicates": coordinator.duplicate_results,
                "remote_cache_hits": coordinator.remote_cache_hits,
                "address": str(self.address),
            }
            return results
        finally:
            await coordinator.stop("run complete")
            for task in worker_tasks:
                task.cancel()
            await asyncio.gather(*worker_tasks, return_exceptions=True)
