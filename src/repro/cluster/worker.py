"""Cluster worker: connect, register, compute shards, stream results.

A :class:`ClusterWorker` is one compute node of the fabric.  It dials
the coordinator (TCP or Unix socket), registers under a requested name
(the coordinator may rename it to keep names unique), then loops:
receive a shard, compute its points, stream each ``point-result`` back
the moment it finishes, close with ``shard-done``.  A heartbeat task
pings the coordinator every ``heartbeat_interval`` seconds — including
*while computing*, because the actual point work runs in a worker
thread (via the same :class:`~repro.exec.parallel.ParallelExecutor`
machinery a local run uses when ``jobs > 1``), so a busy worker is
never mistaken for a dead one.

Workers may carry their own on-disk
:class:`~repro.exec.cache.ResultCache`: points already present locally
are reported back as ``cached`` without recomputation, which is what
makes the coordinator's locality-aware shard assignment pay off across
runs.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Mapping, Sequence

from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    ClusterError,
    ClusterProtocolError,
    decode_factory,
    decode_points,
    read_message,
    send_message,
)
from repro.errors import ConfigurationError
from repro.exec.base import Executor
from repro.exec.cache import ResultCache
from repro.exec.canonical import callable_fingerprint
from repro.exec.parallel import ParallelExecutor
from repro.exec.serial import SerialExecutor
from repro.obs import Counter, MetricsRegistry, get_registry
from repro.service.endpoints import Endpoint, open_endpoint, parse_endpoint
from repro.sweep import SweepPoint

__all__ = ["ClusterWorker", "run_worker"]


class ClusterWorker:
    """One compute node: dials a coordinator and works shards to death.

    Parameters
    ----------
    connect:
        Coordinator endpoint (``tcp://host:port``, ``host:port``, or a
        Unix socket path).
    name:
        Requested worker name; the coordinator uniquifies clashes.
    jobs:
        Local process-pool width per shard (``1`` computes in-line in
        the worker thread, ``> 1`` fans out like ``sweep --jobs``).
    cache_dir:
        Optional per-worker :class:`ResultCache` directory; locally
        cached points are answered without recomputation.
    heartbeat_interval:
        Seconds between liveness pings.  Keep well under the
        coordinator's ``heartbeat_timeout``.
    connect_attempts / connect_delay_s:
        Dial retries — workers often start before their coordinator.
    registry:
        The :class:`~repro.obs.MetricsRegistry` this worker's tallies
        live on; defaults to the process registry.  Give each in-process
        worker of a test or executor its own so shipped snapshots stay
        per-worker.
    ship_metrics:
        Ship this registry's snapshot in every ``shard-done`` and in the
        ``goodbye`` sent on shutdown, for the coordinator's fleet-wide
        metrics merge.
    """

    def __init__(
        self,
        connect: Endpoint | str,
        *,
        name: str | None = None,
        jobs: int = 1,
        cache_dir: str | None = None,
        heartbeat_interval: float = 2.0,
        connect_attempts: int = 25,
        connect_delay_s: float = 0.2,
        registry: MetricsRegistry | None = None,
        ship_metrics: bool = False,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        self.endpoint = (
            parse_endpoint(connect) if isinstance(connect, str) else connect
        )
        self.name = name
        self.jobs = int(jobs)
        self.heartbeat_interval = float(heartbeat_interval)
        self.connect_attempts = int(connect_attempts)
        self.connect_delay_s = float(connect_delay_s)
        self._cache = ResultCache(cache_dir) if cache_dir else None
        self._executor: Executor = (
            ParallelExecutor(jobs=self.jobs) if self.jobs > 1 else SerialExecutor()
        )
        self._send_lock = asyncio.Lock()
        # Tallies live on the process registry, tagged with the final
        # worker name — which the coordinator only confirms at welcome,
        # so the instruments bind then.  The public attributes are views
        # (deltas since binding) and read 0 until registration.
        self._registry = registry if registry is not None else get_registry()
        self.ship_metrics = bool(ship_metrics)
        self._c_shards: Counter | None = None
        self._c_points: Counter | None = None
        self._c_hits: Counter | None = None
        self._b_shards = 0
        self._b_points = 0
        self._b_hits = 0

    def _bind_instruments(self) -> None:
        """Create the per-worker counters once the name is final."""
        self._c_shards = self._registry.counter(
            "worker.shards_done", worker=self.name
        )
        self._c_points = self._registry.counter(
            "worker.points_done", worker=self.name
        )
        self._c_hits = self._registry.counter(
            "worker.cache_hits", worker=self.name
        )
        self._b_shards = self._c_shards.value
        self._b_points = self._c_points.value
        self._b_hits = self._c_hits.value

    @property
    def shards_done(self) -> int:
        """Shards completed; a view over ``worker.shards_done``."""
        return 0 if self._c_shards is None else self._c_shards.value - self._b_shards

    @property
    def points_done(self) -> int:
        """Point results reported; a view over ``worker.points_done``."""
        return 0 if self._c_points is None else self._c_points.value - self._b_points

    @property
    def cache_hits(self) -> int:
        """Points served from the local cache; a view over ``worker.cache_hits``."""
        return 0 if self._c_hits is None else self._c_hits.value - self._b_hits

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve shards until the coordinator says ``shutdown`` (or hangs up)."""
        reader, writer = await self._connect()
        heartbeat: asyncio.Task | None = None
        try:
            await self._send(
                writer,
                {
                    "type": "register",
                    "worker": self.name,
                    "slots": self.jobs,
                    "version": PROTOCOL_VERSION,
                },
            )
            welcome = await read_message(reader)
            if welcome is None:
                return  # coordinator refused us (e.g. version mismatch)
            if welcome.get("type") == "shutdown":
                return
            if welcome.get("type") != "welcome":
                raise ClusterProtocolError(
                    f"expected welcome, got {welcome.get('type')!r}"
                )
            if welcome.get("version") != PROTOCOL_VERSION:
                # The coordinator vets our version on register, but the
                # check must hold in both directions: a newer
                # coordinator welcoming an older worker would otherwise
                # fail later, mid-shard, with an opaque frame error.
                raise ClusterProtocolError(
                    f"coordinator speaks protocol {welcome.get('version')!r}, "
                    f"this worker speaks {PROTOCOL_VERSION}"
                )
            self.name = str(welcome.get("worker"))
            self._bind_instruments()
            heartbeat = asyncio.get_running_loop().create_task(
                self._heartbeat(writer), name=f"heartbeat-{self.name}"
            )
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "shard":
                    await self._run_shard(writer, message)
                elif kind == "shutdown":
                    await self._send_goodbye(writer)
                    break
                else:
                    raise ClusterProtocolError(
                        f"unexpected coordinator message {kind!r}"
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass  # coordinator went away; nothing left to serve
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
                try:
                    await heartbeat
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        last: OSError | None = None
        for _ in range(max(1, self.connect_attempts)):
            try:
                return await open_endpoint(self.endpoint)
            except OSError as exc:
                last = exc
                await asyncio.sleep(self.connect_delay_s)
        raise ClusterError(
            f"could not reach coordinator at {self.endpoint}: {last}"
        )

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        # One lock per connection: the heartbeat task and the shard loop
        # both write, and frames must never interleave mid-line.
        async with self._send_lock:
            await send_message(writer, message)

    async def _heartbeat(self, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                await self._send(
                    writer, {"type": "heartbeat", "worker": self.name}
                )
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            return  # connection is gone; the main loop will notice too

    async def _send_goodbye(self, writer: asyncio.StreamWriter) -> None:
        """Final frame before honouring ``shutdown``: the parting snapshot.

        Best-effort — a coordinator tearing the connection down right
        after its ``shutdown`` must not turn the clean exit into a
        traceback.
        """
        goodbye: dict = {"type": "goodbye", "worker": self.name}
        if self.ship_metrics:
            goodbye["snapshot"] = self._registry.snapshot()
        try:
            await self._send(writer, goodbye)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    async def _run_shard(self, writer: asyncio.StreamWriter, message: dict) -> None:
        shard_id = int(message.get("shard", -1))
        try:
            factory = decode_factory(message.get("factory"))
            pending = decode_points(message.get("points"))
        except ClusterProtocolError as exc:
            await self._send(
                writer,
                {"type": "shard-error", "shard": shard_id, "message": str(exc)},
            )
            return
        try:
            fingerprint = (
                callable_fingerprint(factory) if self._cache is not None else ""
            )
            to_compute: list[tuple[int, SweepPoint]] = []
            for index, point in pending:
                metrics = (
                    await asyncio.to_thread(self._cache.load, point, fingerprint)
                    if self._cache is not None
                    else None
                )
                if metrics is not None:
                    assert self._c_hits is not None  # bound at welcome
                    self._c_hits.inc()
                    await self._report(writer, shard_id, index, metrics, 0.0, True)
                else:
                    to_compute.append((index, point))
            points_by_index = dict(to_compute)
            async for index, metrics, elapsed in self._stream(to_compute, factory):
                metrics = dict(metrics)
                if self._cache is not None:
                    await asyncio.to_thread(
                        self._cache.store, points_by_index[index], fingerprint,
                        metrics,
                    )
                await self._report(writer, shard_id, index, metrics, elapsed, False)
            assert self._c_shards is not None  # bound at welcome
            self._c_shards.inc()
            done: dict = {"type": "shard-done", "shard": shard_id}
            if self.ship_metrics:
                # Counted *before* snapshotting so the shipped totals
                # include the shard they close.
                done["snapshot"] = self._registry.snapshot()
            await self._send(writer, done)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            raise
        except Exception as exc:  # the factory failed: report, stay alive
            await self._send(
                writer,
                {
                    "type": "shard-error",
                    "shard": shard_id,
                    "message": f"{type(exc).__name__}: {exc}",
                },
            )

    async def _report(
        self,
        writer: asyncio.StreamWriter,
        shard_id: int,
        index: int,
        metrics: Mapping[str, float],
        elapsed_s: float,
        cached: bool,
    ) -> None:
        assert self._c_points is not None  # bound at welcome
        self._c_points.inc()
        await self._send(
            writer,
            {
                "type": "point-result",
                "shard": shard_id,
                "index": index,
                "metrics": dict(metrics),
                "elapsed_s": elapsed_s,
                "cached": cached,
            },
        )

    async def _stream(
        self,
        pending: Sequence[tuple[int, SweepPoint]],
        factory: Callable[[SweepPoint], Mapping[str, float]],
    ):
        """Bridge the executor's synchronous completion stream onto the loop.

        The executor runs in a worker thread (so heartbeats keep flowing
        during long points) and hands each finished point across via an
        asyncio queue the moment it completes.
        """
        if not pending:
            return
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def pump() -> None:
            # Worker thread: the only place the synchronous stream runs.
            try:
                for item in self._executor.compute_stream(pending, factory):
                    loop.call_soon_threadsafe(queue.put_nowait, ("item", item))
            except BaseException as exc:
                loop.call_soon_threadsafe(queue.put_nowait, ("error", exc))
                return
            loop.call_soon_threadsafe(queue.put_nowait, ("done", None))

        pump_task = loop.run_in_executor(None, pump)
        try:
            while True:
                kind, payload = await queue.get()
                if kind == "done":
                    break
                if kind == "error":
                    raise payload
                yield payload
        finally:
            await pump_task


def run_worker(connect: str, **kwargs) -> None:
    """Blocking convenience wrapper: ``asyncio.run`` one worker (the CLI verb)."""
    asyncio.run(ClusterWorker(connect, **kwargs).run())
