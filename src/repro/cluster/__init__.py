"""Distributed sweep fabric: coordinator, workers, sharding, transport.

The cluster layer turns a single-machine sweep into a multi-worker
(and, over TCP, multi-host) run while preserving the repository's core
guarantee: **byte-identical tables**.  The same derived seeds travel
with every point, results merge idempotently by point index, and JSON
round-trips metrics bit-exactly, so ``DistributedExecutor`` output
matches ``SerialExecutor`` output for any grid — regardless of worker
count, worker deaths, retries or steals along the way.

Entry points:

* :class:`DistributedExecutor` — drop-in :class:`~repro.exec.base.Executor`
  (``python -m repro sweep --workers N``);
* :class:`ClusterWorker` / ``python -m repro worker`` — a compute node;
* :class:`Coordinator` — the per-run shard dispatcher, for embedding.

See ``docs/distributed.md`` for topology, fault-tolerance semantics and
the security caveats of TCP transport.
"""

from repro.cluster.coordinator import Coordinator
from repro.cluster.executor import DistributedExecutor
from repro.cluster.protocol import PROTOCOL_VERSION, ClusterError, ClusterProtocolError
from repro.cluster.shards import Shard, locality_key, plan_shards
from repro.cluster.worker import ClusterWorker, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "ClusterError",
    "ClusterProtocolError",
    "ClusterWorker",
    "Coordinator",
    "DistributedExecutor",
    "Shard",
    "locality_key",
    "plan_shards",
    "run_worker",
]
