"""Exception hierarchy for the leaky-frontends reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one handler while still distinguishing the
specific failure modes that matter for experiment scripts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A machine, channel, or experiment was configured inconsistently.

    Examples: requesting an MT attack on a machine whose SMT is disabled,
    or building a DSB with a non-power-of-two set count.
    """


class LayoutError(ReproError):
    """Instruction-layout constraints were violated.

    Raised when a mix block exceeds the 32-byte window or 6-uop DSB line
    limit, or when a chain cannot be placed at the requested DSB set.
    """


class ExecutionError(ReproError):
    """The simulated machine was driven into an invalid state.

    Examples: executing on a thread id that does not exist on the core, or
    running a program with no instructions.
    """


class MeasurementError(ReproError):
    """A measurement facility was misused.

    Examples: stopping a timer that was never started, or reading RAPL on a
    machine where the interface is disabled.
    """


class ChannelError(ReproError):
    """A covert channel could not be constructed or operated.

    Examples: parameter ``d`` outside ``1..N``, or decoding before the
    detection threshold has been calibrated.
    """


class EnclaveError(ReproError):
    """SGX enclave lifecycle misuse (enter twice, exit without enter, ...)."""


class SpectreError(ReproError):
    """Spectre experiment misconfiguration (bad secret chunk size, ...)."""
