"""Execution-port pressure model (Skylake: 8 ports).

Computes, for a multiset of uops executed per loop iteration, the minimum
cycles the execution ports need, using an optimal fractional assignment of
uops to their allowed ports (a small max-flow solved greedily, exact for
the interval-free port sets used here).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.uops import SKYLAKE_PORTS, Uop, UopKind

__all__ = ["PortModel", "PortPressure"]


@dataclass(frozen=True)
class PortPressure:
    """Result of a port-pressure analysis for one loop iteration.

    Attributes
    ----------
    cycles:
        Minimum cycles the ports need for the iteration's uops.
    busiest_port:
        Port with the highest load under the balancing assignment.
    load:
        Per-port uop load under the balancing assignment.
    """

    cycles: float
    busiest_port: int
    load: dict[int, float]


class PortModel:
    """Optimal balancing of uops over their allowed execution ports."""

    def __init__(self, ports: frozenset[int] = SKYLAKE_PORTS) -> None:
        self.ports = ports

    def pressure(self, uops: list[Uop]) -> PortPressure:
        """Minimum-makespan fractional assignment of ``uops`` to ports.

        Uses the standard water-filling bound: for every subset S of
        ports, cycles >= (uops restricted to S) / |S|.  We evaluate the
        bound on the distinct port-set groups appearing in the input,
        which is exact for laminar families like the Skylake bindings.
        NOP uops retire without executing and are skipped.
        """
        executable = [u for u in uops if u.kind is not UopKind.NOP]
        if not executable:
            return PortPressure(cycles=0.0, busiest_port=0, load=dict.fromkeys(self.ports, 0.0))
        groups: Counter[frozenset[int]] = Counter()
        for uop in executable:
            groups[uop.ports] += 1
        # Evaluate the water-filling bound over unions of groups.
        port_sets = list(groups)
        best = 0.0
        for mask in range(1, 1 << len(port_sets)):
            union: set[int] = set()
            count = 0
            for bit, pset in enumerate(port_sets):
                if mask & (1 << bit):
                    union |= pset
                    count += groups[pset]
            bound = count / len(union)
            if bound > best:
                best = bound
        load = self._balanced_load(groups, best)
        busiest = max(load, key=load.get)  # type: ignore[arg-type]
        return PortPressure(cycles=best, busiest_port=busiest, load=load)

    def _balanced_load(
        self, groups: Counter[frozenset[int]], makespan: float
    ) -> dict[int, float]:
        """Greedy proportional split of each group over its ports."""
        load: dict[int, float] = dict.fromkeys(self.ports, 0.0)
        # Narrowest groups first so constrained uops claim capacity early.
        for pset in sorted(groups, key=len):
            remaining = float(groups[pset])
            ports = sorted(pset, key=lambda p: load[p])
            for i, port in enumerate(ports):
                if remaining <= 0:
                    break
                headroom = max(makespan - load[port], 0.0)
                share = min(remaining / (len(ports) - i), headroom) if headroom else 0.0
                share = max(share, 0.0)
                load[port] += share
                remaining -= share
            if remaining > 1e-9:
                # Makespan bound should absorb everything; spread leftovers.
                for port in pset:
                    load[port] += remaining / len(pset)
                remaining = 0.0
        return load
