"""Frontend-boundedness analysis of loop bodies (Section III-A4).

The paper's channels only work when instruction delivery — not execution —
limits throughput.  These helpers compute the backend-bound cycle count of
a loop body (retire cap vs port pressure) so callers can assert the
frontend signal is observable.
"""

from __future__ import annotations

from itertools import chain

from repro.backend.ports import PortModel
from repro.frontend.params import FrontendParams
from repro.isa.program import LoopProgram
from repro.isa.uops import Uop

__all__ = ["backend_bound_cycles", "is_frontend_bound", "iteration_uops"]


def iteration_uops(program: LoopProgram) -> list[Uop]:
    """All uops of one loop-body iteration, in program order."""
    return list(
        chain.from_iterable(
            instruction.uops
            for block in program.body
            for instruction in block.instructions
        )
    )


def backend_bound_cycles(
    program: LoopProgram, params: FrontendParams | None = None
) -> float:
    """Cycles per iteration imposed by the backend alone.

    The larger of the rename/retire cap (4 uops/cycle) and the execution
    port pressure.  Branch uops also face the 1-taken-branch-per-cycle
    limit, which the port model captures via the port-0/6 binding.
    """
    params = params or FrontendParams()
    uops = iteration_uops(program)
    retire = len(uops) / params.issue_width
    pressure = PortModel().pressure(uops).cycles
    return max(retire, pressure)


def is_frontend_bound(
    program: LoopProgram,
    params: FrontendParams | None = None,
    slack: float = 1.05,
) -> bool:
    """True when port pressure leaves the retire cap as the binding limit.

    The paper's mix blocks are chosen so execution ports are *not* the
    bottleneck: the retire cap (which every path shares) dominates, so any
    extra cycles are attributable to the frontend path taken.  ``slack``
    tolerates small imbalances.
    """
    params = params or FrontendParams()
    uops = iteration_uops(program)
    if not uops:
        return False
    retire = len(uops) / params.issue_width
    pressure = PortModel().pressure(uops).cycles
    memory_uops = sum(1 for u in uops if u.touches_memory)
    return pressure <= retire * slack and memory_uops == 0
