"""Backend (out-of-order engine) model.

The paper's channels require the *frontend* to be the bottleneck, which
only holds for carefully chosen instruction mixes (Section III-A4).  This
package models the two backend limits that matter:

* the rename/retire cap of 4 uops per cycle, and
* the 8 execution ports with per-kind port bindings.

:func:`repro.backend.analysis.is_frontend_bound` verifies that a loop
body keeps every port below saturation so observed timing differences are
attributable to the frontend path, exactly the property the paper's
4-mov+1-jmp block is constructed to have.
"""

from repro.backend.ports import PortModel, PortPressure
from repro.backend.analysis import backend_bound_cycles, is_frontend_bound

__all__ = [
    "PortModel",
    "PortPressure",
    "backend_bound_cycles",
    "is_frontend_bound",
]
