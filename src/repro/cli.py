"""Command-line interface: ``python -m repro <command>``.

Gives each of the library's headline capabilities a one-line invocation:

* ``machines``    — list the simulated Table I CPUs;
* ``transmit``    — run a covert channel end to end;
* ``probe``       — time the three frontend paths (Figure 4 style);
* ``fingerprint`` — detect the machine's microcode/LSD state;
* ``spectre``     — recover a secret via Spectre v1 over a chosen channel;
* ``sgx``         — run an SGX enclave attack;
* ``defense``     — print the mitigation/attack matrix;
* ``scenario``    — list/describe/run/submit declarative attack
  scenarios (the ``repro.scenarios`` registry, see ``docs/scenarios.md``);
* ``synth``       — run/minimize/report automated attack-program
  synthesis against the defense layer (``repro.synth``, see
  ``docs/synthesis.md``; ``--workers N`` shards candidate batches
  across the cluster fabric);
* ``sweep``       — grid-sweep channel parameters (parallel + cached;
  ``--workers N`` shards it across the distributed fabric);
* ``serve``       — run the sweep service on a Unix socket (and,
  optionally, a TCP listener via ``--tcp``); ``--state-dir`` makes the
  queue crash-safe, ``--auth`` gates clients by token and quota;
* ``submit``      — submit a grid to a running service, stream progress;
* ``watch``       — mirror a running service's event feed as JSONL;
* ``metrics``     — fetch a running service's metrics snapshot;
* ``worker``      — join a cluster coordinator as a compute node;
* ``bench``       — benchmark a pinned micro suite (``--suite frontend``
  writes ``BENCH_frontend.json``, ``--suite scenarios`` writes
  ``BENCH_scenarios.json``, ``--suite service`` writes
  ``BENCH_service.json``);
* ``validate``    — run the 10-point model-invariant checklist;
* ``report``      — assemble benchmark results into REPORT.md.

All commands accept ``--seed`` for exact reproducibility.  ``sweep``
additionally takes ``--jobs N`` (worker processes), ``--cache-dir``
(on-disk result cache, default ``.repro-cache``) and ``--no-cache``.
``sweep --progress`` and ``submit`` stream JSONL events (the service's
event format, see ``docs/service.md``) to **stderr**; stdout carries
only results, so piping stays clean (``watch`` is the exception: its
event stream *is* the result, so it goes to stdout).  Verbs that dial
a service (``submit``, ``watch``, ``metrics``, ``scenario submit``)
take ``--token`` (default ``$REPRO_SERVICE_TOKEN``) for servers
started with ``--auth``, and ``--timeout`` for a per-read deadline.

``sweep``, ``serve`` and ``worker`` accept ``--backend`` to pick the
frontend simulation backend (see ``docs/backends.md``).  The flag is
applied as the process default *and* exported via ``REPRO_SIM_BACKEND``
so spawned worker processes inherit it; it never enters sweep point
keys, so caches stay valid across backends.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import Sequence

from repro.analysis.bits import alternating_bits, random_bits, string_to_bits
from repro.channels.probes import path_timing_samples
from repro.errors import ReproError
from repro.frontend.backends import ENV_VAR, available_backends, set_default_backend
from repro.frontend.paths import DeliveryPath
from repro.machine.machine import Machine
from repro.machine.specs import ALL_SPECS, spec_by_name
from repro.service.spec import (
    CHANNEL_NAMES,
    build_channel,
    parse_param_axis,
    sweep_point_metrics,
)

__all__ = ["main", "build_parser"]

DEFAULT_SOCKET = ".repro-service.sock"
_DEFAULT_BIND = "tcp://127.0.0.1:0"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leaky Frontends (HPCA 2022) reproduction toolkit",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "machines", help="list the simulated Table I CPUs", parents=[common]
    )

    transmit = sub.add_parser(
        "transmit", help="run a covert channel", parents=[common]
    )
    transmit.add_argument("--machine", default="Gold 6226")
    transmit.add_argument(
        "--channel", default="eviction", choices=list(CHANNEL_NAMES)
    )
    transmit.add_argument(
        "--variant", default="stealthy", choices=["stealthy", "fast"]
    )
    transmit.add_argument("--message", default=None, help="bit string, e.g. 0110")
    transmit.add_argument("--bits", type=int, default=64, help="random-bit count")

    probe = sub.add_parser(
        "probe", help="time the three frontend paths", parents=[common]
    )
    probe.add_argument("--machine", default="Gold 6226")
    probe.add_argument("--samples", type=int, default=100)

    fingerprint = sub.add_parser(
        "fingerprint", help="detect the microcode/LSD state", parents=[common]
    )
    fingerprint.add_argument("--machine", default="Gold 6226")
    fingerprint.add_argument(
        "--patch", default=None, choices=[None, "patch1", "patch2"],
        help="apply a microcode patch before probing",
    )

    spectre = sub.add_parser(
        "spectre", help="Spectre v1 secret recovery", parents=[common]
    )
    spectre.add_argument("--machine", default="Gold 6226")
    spectre.add_argument("--secret", default="SecretKey!")
    spectre.add_argument(
        "--channel",
        default="frontend-dsb",
        choices=[
            "mem-flush-reload",
            "l1d-flush-reload",
            "l1d-lru",
            "l1i-flush-reload",
            "l1i-prime-probe",
            "frontend-dsb",
        ],
    )

    sgx = sub.add_parser("sgx", help="attack an SGX enclave", parents=[common])
    sgx.add_argument("--machine", default="Xeon E-2174G")
    sgx.add_argument(
        "--mode", default="non-mt", choices=["non-mt", "mt", "power"]
    )
    sgx.add_argument(
        "--mechanism", default="eviction", choices=["eviction", "misalignment"]
    )
    sgx.add_argument("--bits", type=int, default=32)

    defense = sub.add_parser(
        "defense", help="mitigation/attack matrix", parents=[common]
    )
    defense.add_argument("--bits", type=int, default=32)

    scenario = sub.add_parser(
        "scenario",
        help="run declarative attack scenarios (docs/scenarios.md)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list the registered scenarios")
    describe = scenario_sub.add_parser(
        "describe", help="print one scenario's full spec"
    )
    describe.add_argument("name", help="registered scenario name")
    describe.add_argument(
        "--json",
        action="store_true",
        help="print the canonical JSON form instead of the table",
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="run a scenario and check its success criteria"
    )
    scenario_run.add_argument("name", help="registered scenario name")
    scenario_run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the spec's trial count",
    )
    scenario_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the spec's base seed",
    )
    scenario_run.add_argument(
        "--json",
        action="store_true",
        help="print the pooled outcome as canonical JSON",
    )
    scenario_run.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="also write the scenario.* metrics snapshot as JSON",
    )
    _add_backend_argument(scenario_run)
    scenario_submit = scenario_sub.add_parser(
        "submit",
        help="submit a scenario parameter grid to a running service",
    )
    scenario_submit.add_argument("name", help="registered scenario name")
    scenario_submit.add_argument(
        "--socket", default=DEFAULT_SOCKET, help="Unix socket of the service"
    )
    scenario_submit.add_argument(
        "--param",
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="grid axis over a scenario parameter, e.g. "
        "attempts_per_chunk=1,3,5 (repeat for multi-axis grids)",
    )
    scenario_submit.add_argument("--trials", type=int, default=1)
    scenario_submit.add_argument(
        "--seed", type=int, default=0, help="sweep base seed"
    )
    scenario_submit.add_argument("--priority", type=int, default=0)
    scenario_submit.add_argument(
        "--label", default=None, help="job label for the event log"
    )
    _add_client_auth_arguments(scenario_submit)

    synth = sub.add_parser(
        "synth",
        help="synthesise attack programs against the defenses "
        "(docs/synthesis.md)",
    )
    synth_sub = synth.add_subparsers(dest="synth_command", required=True)
    synth_run = synth_sub.add_parser(
        "run", help="run a search campaign and print its findings"
    )
    synth_run.add_argument("--seed", type=int, default=0, help="campaign seed")
    synth_run.add_argument(
        "--budget", type=int, default=64, help="oracle evaluations to spend"
    )
    synth_run.add_argument(
        "--batch-size", type=int, default=8, help="candidates per round"
    )
    synth_run.add_argument("--machine", default="Gold 6226")
    synth_run.add_argument(
        "--bits", type=int, default=32, help="message bits per oracle run"
    )
    synth_run.add_argument("--training-bits", type=int, default=12)
    synth_run.add_argument(
        "--max-findings", type=int, default=4, help="stop after N findings"
    )
    synth_run.add_argument(
        "--shrink-budget",
        type=int,
        default=96,
        help="oracle evaluations the minimizer may spend per finding",
    )
    synth_run.add_argument(
        "--defense",
        action="append",
        default=None,
        metavar="M1+M2",
        help="mitigation stack findings are re-scored against, as "
        "'+'-joined names from repro.defense (repeat for several "
        "stacks; default: uniform-path-timing)",
    )
    synth_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    synth_run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard candidate batches across N cluster workers "
        "(0 = local execution); combines with --jobs",
    )
    synth_run.add_argument(
        "--bind",
        default=_DEFAULT_BIND,
        help="coordinator endpoint for cluster runs (see 'sweep --bind')",
    )
    synth_run.add_argument(
        "--shard-size", type=int, default=4, help="max points per shard"
    )
    synth_run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk oracle-result cache (resumed campaigns replay "
        "cached candidates; default: no cache)",
    )
    synth_run.add_argument(
        "--json",
        action="store_true",
        help="print the full report as canonical JSON instead of the "
        "summary table",
    )
    synth_run.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the canonical JSON report to FILE",
    )
    synth_run.add_argument(
        "--scenarios-out",
        default=None,
        metavar="FILE",
        help="also write ScenarioSpec payloads for every finding "
        "(registrable via repro.scenarios)",
    )
    _add_backend_argument(synth_run)
    synth_minimize = synth_sub.add_parser(
        "minimize", help="shrink one candidate genome to its minimal "
        "still-leaking form"
    )
    synth_minimize.add_argument(
        "candidate",
        help="candidate genome as a JSON file path, or '-' for stdin",
    )
    synth_minimize.add_argument("--seed", type=int, default=0)
    synth_minimize.add_argument("--machine", default="Gold 6226")
    synth_minimize.add_argument("--bits", type=int, default=32)
    synth_minimize.add_argument("--training-bits", type=int, default=12)
    synth_minimize.add_argument(
        "--budget", type=int, default=96, help="oracle evaluations to spend"
    )
    _add_backend_argument(synth_minimize)
    synth_report = synth_sub.add_parser(
        "report", help="summarise a saved campaign report"
    )
    synth_report.add_argument(
        "input", help="report JSON written by 'synth run --out'"
    )

    sweep = sub.add_parser(
        "sweep",
        help="grid-sweep channel parameters (parallel + cached)",
        parents=[common],
    )
    _add_grid_arguments(sweep)
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    sweep.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="on-disk result cache directory",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="stream per-point JSONL events to stderr",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard across N cluster workers (0 = local execution); "
        "combines with --jobs for per-worker process pools",
    )
    sweep.add_argument(
        "--bind",
        default=_DEFAULT_BIND,
        help="coordinator endpoint for cluster runs; an explicit --bind "
        "with --workers 0 waits for external workers started with "
        "'repro worker --connect' (default: loopback, ephemeral port)",
    )
    sweep.add_argument(
        "--shard-size",
        type=int,
        default=4,
        help="max grid points per dispatched shard",
    )
    _add_backend_argument(sweep)

    serve = sub.add_parser(
        "serve",
        help="run the sweep service on a Unix socket",
        parents=[common],
    )
    serve.add_argument(
        "--socket", default=DEFAULT_SOCKET, help="Unix socket path to listen on"
    )
    serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="additionally listen on TCP (no filesystem access control — "
        "bind to loopback or a trusted network, see docs/distributed.md)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, help="worker processes per batch (1 = serial)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="concurrently scheduled jobs"
    )
    serve.add_argument(
        "--batch-size", type=int, default=8, help="points per executor dispatch"
    )
    serve.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="on-disk result cache directory shared by all jobs",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve.add_argument(
        "--job-ttl",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="evict terminal jobs (and their event logs) after this many "
        "seconds; <= 0 keeps jobs forever (default: 3600)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="persist submitted jobs to a write-ahead log in DIR; a "
        "restarted service reloads the queue and resumes unfinished "
        "jobs (docs/service.md)",
    )
    serve.add_argument(
        "--auth",
        default=None,
        metavar="FILE",
        help="JSON account file: per-client tokens plus quota and "
        "rate limits; unknown tokens get a typed deny frame "
        "(docs/service.md)",
    )
    _add_backend_argument(serve)

    submit = sub.add_parser(
        "submit",
        help="submit a sweep to a running service and stream progress",
        parents=[common],
    )
    submit.add_argument(
        "--socket", default=DEFAULT_SOCKET, help="Unix socket of the service"
    )
    _add_grid_arguments(submit)
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--label", default=None, help="job label for the event log")
    _add_client_auth_arguments(submit)

    watch = sub.add_parser(
        "watch",
        help="stream a running service's event feed as JSONL on stdout",
        parents=[common],
    )
    watch.add_argument(
        "--socket",
        default=DEFAULT_SOCKET,
        help="service endpoint (Unix socket path or tcp://host:port)",
    )
    watch.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2,...",
        help="only stream these event kinds (e.g. job-done,error)",
    )
    watch.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="exit after N events (default: stream until service stops)",
    )
    _add_client_auth_arguments(watch)

    metrics = sub.add_parser(
        "metrics",
        help="fetch a running service's metrics snapshot",
        parents=[common],
    )
    metrics.add_argument(
        "--socket",
        default=DEFAULT_SOCKET,
        help="service endpoint (Unix socket path or tcp://host:port)",
    )
    metrics.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "json"],
        help="human table (default) or canonical JSON",
    )
    _add_client_auth_arguments(metrics)

    worker = sub.add_parser(
        "worker",
        help="join a cluster coordinator as a compute node",
        parents=[common],
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="ENDPOINT",
        help="coordinator endpoint (tcp://host:port, host:port, or a "
        "Unix socket path)",
    )
    worker.add_argument(
        "--name", default=None, help="requested worker name (uniquified)"
    )
    worker.add_argument(
        "--jobs", type=int, default=1, help="process-pool width per shard"
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="per-worker result cache (locally cached points are answered "
        "without recomputation)",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="liveness ping interval (keep under the coordinator timeout)",
    )
    _add_backend_argument(worker)

    bench = sub.add_parser(
        "bench",
        help="benchmark a pinned micro suite (frontend, scenarios, lint, "
        "synth or service)",
        parents=[common],
    )
    bench.add_argument(
        "--suite",
        default="frontend",
        choices=["frontend", "scenarios", "lint", "synth", "service"],
        help="frontend: raw run_loop dispatch (BENCH_frontend.json); "
        "scenarios: whole scenario trials (BENCH_scenarios.json); "
        "lint: full-tree analysis timing (BENCH_lint.json); "
        "synth: pinned search campaign (BENCH_synth.json); "
        "service: submit latency, multi-tenant throughput and "
        "restart recovery (BENCH_service.json)",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="result file (canonical JSON; default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--loops",
        type=int,
        default=None,
        help="samples per latency median (default: 300 frontend, "
        "5 scenarios)",
    )
    bench.add_argument(
        "--reps",
        type=int,
        default=200,
        help="loop executions per sweep point (frontend suite)",
    )
    bench.add_argument(
        "--trials",
        type=int,
        default=2,
        help="sweep trials per grid point (scenarios suite)",
    )
    bench.add_argument(
        "--jobs", type=int, default=2, help="parallel executor process count"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="fail unless the vectorized speedup clears the committed "
        "floor (frontend suite only)",
    )

    sub.add_parser(
        "validate",
        help="check the model's paper invariants (10-point checklist)",
        parents=[common],
    )

    lint = sub.add_parser(
        "lint",
        help="run the determinism/layering/fidelity linter (repro.lint)",
        parents=[common],
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of tolerated violations (missing file = empty)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current active violations into --baseline",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report findings only for files changed vs REF (default "
        "HEAD) plus untracked files; the whole tree is still analysed, "
        "and the run falls back to full-tree when git is unavailable",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    report = sub.add_parser(
        "report",
        help="assemble benchmarks/results/ into REPORT.md",
        parents=[common],
    )
    report.add_argument(
        "--results", default="benchmarks/results", help="results directory"
    )
    report.add_argument("--output", default="REPORT.md")

    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The simulation-backend option shared by sweep/serve/worker."""
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="frontend simulation backend (default: $REPRO_SIM_BACKEND "
        "or 'reference'); results are identical across backends and the "
        "choice never enters cache keys",
    )


def _apply_backend(args) -> None:
    """Install ``--backend`` as process default + inherited environment.

    The env export is what carries the choice into spawned sweep worker
    processes; factories stay backend-agnostic so point keys (and any
    on-disk cache) are unaffected.
    """
    if getattr(args, "backend", None):
        set_default_backend(args.backend)
        os.environ[ENV_VAR] = args.backend


def _add_client_auth_arguments(parser: argparse.ArgumentParser) -> None:
    """The service-client options shared by every verb that dials one."""
    parser.add_argument(
        "--token",
        default=None,
        help="client token for a service started with --auth "
        "(default: $REPRO_SERVICE_TOKEN)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-read timeout on the service connection (default: none)",
    )


def _client_auth(args) -> dict:
    """``token=``/``timeout_s=`` keyword arguments for the client helpers."""
    token = args.token if args.token is not None else os.environ.get(
        "REPRO_SERVICE_TOKEN"
    )
    return {"token": token, "timeout_s": args.timeout}


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The grid-description options shared by ``sweep`` and ``submit``."""
    parser.add_argument("--machine", default="Gold 6226")
    parser.add_argument(
        "--channel", default="eviction", choices=list(CHANNEL_NAMES)
    )
    parser.add_argument(
        "--variant", default="fast", choices=["stealthy", "fast"]
    )
    parser.add_argument(
        "--param",
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="grid axis over a ChannelConfig field, e.g. d=1,2,4,6,8 "
        "(repeat for multi-axis grids)",
    )
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument(
        "--bits", type=int, default=32, help="message bits per point"
    )


# ----------------------------------------------------------------------
# command implementations
# ----------------------------------------------------------------------
def _cmd_machines(_args) -> int:
    print(f"{'model':14s} {'uarch':13s} {'freq':>7s} {'LSD':>9s} {'SMT':>4s} {'SGX':>4s}")
    for spec in ALL_SPECS:
        lsd = str(spec.lsd_entries) if spec.lsd_enabled else "disabled"
        print(
            f"{spec.name:14s} {spec.microarchitecture:13s} "
            f"{spec.frequency_ghz:>6.1f}G {lsd:>9s} "
            f"{'yes' if spec.smt else 'no':>4s} {'yes' if spec.sgx else 'no':>4s}"
        )
    return 0


def _cmd_transmit(args) -> int:
    machine = Machine(spec_by_name(args.machine), seed=args.seed)
    channel = build_channel(machine, args.channel, args.variant)
    if args.message:
        bits = string_to_bits(args.message)
    else:
        bits = random_bits(args.bits, machine.rngs.stream("cli-payload"))
    result = channel.transmit(bits)
    print(f"channel : {channel.name} on {machine.spec.name}")
    print(f"sent    : {result.sent_string}")
    print(f"received: {result.received_string}")
    print(f"rate    : {result.kbps:.2f} Kbps")
    print(f"error   : {result.error_rate * 100:.2f}% (Wagner-Fischer)")
    return 0


def _cmd_probe(args) -> int:
    machine = Machine(spec_by_name(args.machine), seed=args.seed)
    samples = path_timing_samples(machine, samples=args.samples)
    print(f"frontend path timings on {machine.spec.name} "
          f"(LSD {'on' if machine.core.lsd_enabled else 'off'}):")
    for path in (DeliveryPath.LSD, DeliveryPath.DSB, DeliveryPath.MITE):
        observations = sorted(samples[path])
        median = observations[len(observations) // 2]
        label = "MITE+DSB" if path is DeliveryPath.MITE else str(path)
        print(f"  {label:9s} median {median:8.1f} cycles "
              f"(min {observations[0]:.1f}, max {observations[-1]:.1f})")
    return 0


def _cmd_fingerprint(args) -> int:
    from repro.fingerprint import PATCH1, PATCH2, LsdFingerprint, apply_patch

    machine = Machine(spec_by_name(args.machine), seed=args.seed)
    if args.patch:
        apply_patch(machine, PATCH1 if args.patch == "patch1" else PATCH2)
    result = LsdFingerprint().detect(machine)
    reading = result.reading
    print(f"machine      : {machine.spec.name}")
    print(f"timing ratio : {reading.timing_ratio:.3f}")
    print(f"power ratio  : {reading.power_ratio:.3f}")
    print(f"verdict      : LSD {'ENABLED' if result.lsd_enabled else 'DISABLED'}")
    patch = result.matching_patch((PATCH1, PATCH2))
    print(f"microcode    : consistent with {patch}")
    if not patch.mitigated_cves:
        print(f"vulnerable to: {', '.join(PATCH2.mitigated_cves)}")
    return 0


def _cmd_spectre(args) -> int:
    from repro.spectre import ALL_SPECTRE_CHANNELS, SpectreV1Attack

    machine = Machine(spec_by_name(args.machine), seed=args.seed)
    channel_cls = {cls.name: cls for cls in ALL_SPECTRE_CHANNELS}[args.channel]
    channel = channel_cls(machine)
    report = SpectreV1Attack(machine, channel, args.secret.encode()).run()
    print(f"channel     : {channel.name}")
    print(f"secret      : {args.secret!r}")
    print(f"recovered   : {report.recovered.decode(errors='replace')!r}")
    print(f"accuracy    : {report.accuracy * 100:.1f}% of chunks")
    print(f"L1 miss rate: {report.l1_miss_rate * 100:.3f}%")
    return 0


def _cmd_sgx(args) -> int:
    from repro.sgx import SgxMtAttack, SgxNonMtAttack, SgxPowerAttack

    machine = Machine(spec_by_name(args.machine), seed=args.seed)
    if args.mode == "mt":
        attack = SgxMtAttack(machine, mechanism=args.mechanism)
    elif args.mode == "power":
        attack = SgxPowerAttack(machine, mechanism=args.mechanism)
    else:
        attack = SgxNonMtAttack(machine, mechanism=args.mechanism)
    result = attack.transmit(alternating_bits(args.bits))
    print(f"attack  : {attack.name} on {machine.spec.name}")
    print(f"rate    : {result.kbps:.2f} Kbps")
    print(f"error   : {result.error_rate * 100:.2f}%")
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.lint import Baseline, all_rules, run_lint
    from repro.lint.reporters import write_report

    if args.list_rules:
        for rule_cls in all_rules():
            print(
                f"{rule_cls.name:24s} {rule_cls.default_severity.value:8s} "
                f"[{rule_cls.family}] {rule_cls.description}"
            )
        return 0
    root = Path.cwd()
    baseline = Baseline.load(args.baseline)
    report = run_lint(
        root,
        paths=args.paths or None,
        baseline=baseline,
        strict=args.strict,
        changed_only=args.changed,
    )
    if args.write_baseline:
        if args.baseline is None:
            raise ConfigurationError("--write-baseline requires --baseline FILE")
        Baseline.write(args.baseline, report.active)
        print(
            f"wrote {len(report.active)} entr"
            f"{'y' if len(report.active) == 1 else 'ies'} to {args.baseline}"
        )
        return 0
    write_report(report, args.fmt, sys.stdout)
    return report.exit_code()


def _cmd_validate(_args) -> int:
    from repro.validate import run_validation

    results = run_validation(verbose=True)
    return 0 if all(result.passed for result in results) else 1


def _cmd_report(args) -> int:
    from repro.reporting import write_report

    path = write_report(args.results, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.exec import ParallelExecutor, ResultCache, SerialExecutor
    from repro.reporting import format_execution_stats
    from repro.service.events import jsonl_progress
    from repro.sweep import ParameterSweep

    _apply_backend(args)
    grid = dict(parse_param_axis(axis) for axis in args.param)
    factory = functools.partial(
        sweep_point_metrics, args.machine, args.channel, args.variant, args.bits
    )
    sweep = ParameterSweep(factory, grid, trials=args.trials, base_seed=args.seed)
    if args.jobs < 1:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    if args.workers < 0:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"--workers must be >= 0, got {args.workers}")
    # --workers N launches in-process cluster workers; an explicit
    # --bind with --workers 0 runs the coordinator for *external*
    # workers only (python -m repro worker --connect <bind>).
    distributed = args.workers > 0 or args.bind != _DEFAULT_BIND
    if distributed:
        from repro.cluster import DistributedExecutor

        # Shard/worker events share the progress stream (stderr JSONL).
        on_event = (
            (lambda event: print(event.to_json(), file=sys.stderr, flush=True))
            if args.progress
            else None
        )
        executor = DistributedExecutor(
            workers=args.workers,
            bind=args.bind,
            jobs=args.jobs,
            shard_size=args.shard_size,
            on_event=on_event,
        )
    else:
        executor = (
            ParallelExecutor(jobs=args.jobs) if args.jobs > 1 else SerialExecutor()
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    # Progress events go to stderr in the service's JSONL format, so
    # stdout stays byte-identical with and without --progress.
    progress = jsonl_progress() if args.progress else None
    table = sweep.run(executor=executor, cache=cache, progress=progress)
    print(
        f"sweep over {', '.join(grid)} — {args.channel} on {args.machine} "
        f"({args.bits}-bit message, {args.trials} trial(s)/point)"
    )
    print(table.render(precision=3))
    print(format_execution_stats(sweep.last_stats))
    if getattr(executor, "last_run", None) is not None:
        run = executor.last_run
        if run.get("fallback"):
            print("cluster: no workers registered; fell back to local execution",
                  file=sys.stderr)
        else:
            print(
                f"cluster: {run['workers']} worker(s), {run['shards']} shard(s), "
                f"{run['redispatches']} redispatch(es), {run['steals']} steal(s), "
                f"{run['duplicates']} duplicate(s) dropped",
                file=sys.stderr,
            )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.errors import ConfigurationError
    from repro.exec import ParallelExecutor, ResultCache, SerialExecutor
    from repro.service import AuthPolicy, JobStore, SweepServer, SweepService

    _apply_backend(args)
    if args.jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    executor = (
        ParallelExecutor(jobs=args.jobs) if args.jobs > 1 else SerialExecutor()
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = JobStore(args.state_dir) if args.state_dir else None
    auth = AuthPolicy.from_file(args.auth) if args.auth else None
    service = SweepService(
        executor=executor,
        cache=cache,
        batch_size=args.batch_size,
        workers=args.workers,
        job_ttl_s=args.job_ttl if args.job_ttl > 0 else None,
        store=store,
    )
    server = SweepServer(service, args.socket, tcp=args.tcp, auth=auth)
    if store is not None:
        print(f"persisting jobs to {args.state_dir}", file=sys.stderr)
    print(f"sweep service listening on {args.socket}", file=sys.stderr)
    if args.tcp:
        print(f"sweep service also listening on tcp://{args.tcp} "
              "(no filesystem access control; see docs/distributed.md)",
              file=sys.stderr)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        print("sweep service stopped", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import render_rows, submit_and_stream
    from repro.service.spec import SweepSpec

    grid = dict(parse_param_axis(axis) for axis in args.param)
    spec = SweepSpec(
        grid=grid,
        machine=args.machine,
        channel=args.channel,
        variant=args.variant,
        bits=args.bits,
        trials=args.trials,
        base_seed=args.seed,
        priority=args.priority,
        label=args.label,
    )
    final = submit_and_stream(args.socket, spec, **_client_auth(args))
    if final.kind != "job-done":
        print(f"error: {final.get('message')}", file=sys.stderr)
        return 1
    status = final.get("status")
    if status != "ok":
        print(f"job {final.get('job')} finished with status: {status}",
              file=sys.stderr)
        return 1
    print(
        f"sweep over {', '.join(grid)} — {args.channel} on {args.machine} "
        f"({args.bits}-bit message, {args.trials} trial(s)/point)"
    )
    print(
        render_rows(
            final.get("parameters", []),
            final.get("metrics", []),
            final.get("rows", []),
        )
    )
    print(
        f"{final.get('points')} points via service — "
        f"cache hits {final.get('cache_hits')}, computed {final.get('computed')}, "
        f"shared {final.get('shared')}, {final.get('elapsed_s'):.2f}s"
    )
    return 0


def _cmd_watch(args) -> int:
    from repro.service.client import watch_and_stream

    kinds = args.kinds.split(",") if args.kinds else None
    try:
        seen = watch_and_stream(
            args.socket, kinds=kinds, limit=args.limit, **_client_auth(args)
        )
    except KeyboardInterrupt:
        return 0
    print(f"service stream ended after {seen} event(s)", file=sys.stderr)
    return 0


def _cmd_metrics(args) -> int:
    import json as _json

    from repro.obs import render_text
    from repro.service.client import fetch_metrics

    snapshot = fetch_metrics(args.socket, **_client_auth(args))
    if args.fmt == "json":
        print(_json.dumps(snapshot, sort_keys=True, separators=(",", ":")))
    else:
        print(render_text(snapshot))
    return 0


def _cmd_worker(args) -> int:
    from repro.cluster import run_worker
    from repro.errors import ConfigurationError

    _apply_backend(args)
    if args.jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    print(f"worker connecting to {args.connect}", file=sys.stderr)
    try:
        run_worker(
            args.connect,
            name=args.name,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            heartbeat_interval=args.heartbeat,
            # A CLI worker's process registry is its own; ship snapshots
            # so the coordinator's fleet merge sees this node's tallies.
            ship_metrics=True,
        )
    except KeyboardInterrupt:
        pass
    print("worker stopped", file=sys.stderr)
    return 0


def _cmd_defense(args) -> int:
    from repro.defense import ALL_MITIGATIONS, DefenseEvaluator

    evaluator = DefenseEvaluator(seed=args.seed, message_bits=args.bits)
    for report in evaluator.evaluate_all(ALL_MITIGATIONS):
        print(
            f"{report.mitigation_name:22s} slowdown x{report.benign_slowdown:4.2f} "
            f"energy x{report.benign_energy_ratio:4.2f} "
            f"set-leak {report.set_leak_accuracy * 100:3.0f}%"
        )
        for outcome in report.outcomes:
            print(
                f"    {outcome.channel_name:22s} {outcome.status:9s}"
                + (
                    f" {outcome.kbps:9.1f} Kbps, err {outcome.error_rate * 100:5.1f}%"
                    if outcome.status != "blocked"
                    else ""
                )
            )
    return 0


def _render_criteria(criteria) -> str:
    """``min_accuracy=0.9, min_kbps=100.0`` — only the set thresholds."""
    return ", ".join(
        f"{name}={value}"
        for name, value in criteria.to_dict().items()
        if value is not None
    )


def _cmd_scenario(args) -> int:
    import json as _json

    from repro import scenarios

    if args.scenario_command == "list":
        print(f"{'name':20s} {'kind':11s} {'machine':14s} {'trials':>6s}  title")
        for spec in scenarios.all_specs():
            print(
                f"{spec.name:20s} {spec.kind:11s} {spec.machine:14s} "
                f"{spec.trials:>6d}  {spec.title}"
            )
        return 0
    spec = scenarios.get(args.name)
    if args.scenario_command == "describe":
        if args.json:
            print(spec.to_json())
            return 0
        print(f"name     : {spec.name}")
        print(f"kind     : {spec.kind}")
        print(f"title    : {spec.title}")
        print(f"machine  : {spec.machine}")
        print(f"trials   : {spec.trials} (base seed {spec.base_seed})")
        print(f"criteria : {_render_criteria(spec.criteria)}")
        for name in sorted(spec.params):
            print(f"param    : {name} = {spec.params[name]!r}")
        return 0
    if args.scenario_command == "run":
        from repro.obs import MetricsRegistry

        _apply_backend(args)
        registry = MetricsRegistry()
        result = scenarios.run_scenario(
            spec, trials=args.trials, base_seed=args.seed, registry=registry
        )
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                _json.dump(
                    registry.snapshot(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        if args.json:
            print(_json.dumps(result.to_dict(), sort_keys=True))
            return 0 if result.passed else 1
        outcome = result.outcome
        print(f"scenario : {spec.name} ({spec.kind}) on {spec.machine}")
        print(f"trials   : {len(result.per_trial)}")
        print(
            f"outcome  : accuracy {outcome.accuracy * 100:.1f}%, "
            f"error {outcome.error_rate * 100:.2f}%, "
            f"{outcome.kbps:.1f} Kbps"
        )
        verdict = "PASS" if result.passed else "FAIL"
        print(f"criteria : {_render_criteria(spec.criteria)} -> {verdict}")
        for failure in result.failures:
            print(f"  failed : {failure}")
        return 0 if result.passed else 1
    # submit: a scenario parameter grid through the running sweep service.
    from repro.scenarios.sweep import ScenarioSweepSpec
    from repro.service.client import render_rows, submit_and_stream

    grid = dict(parse_param_axis(axis) for axis in args.param)
    sweep_spec = ScenarioSweepSpec(
        scenario=spec.name,
        grid=grid,
        trials=args.trials,
        base_seed=args.seed,
        priority=args.priority,
        label=args.label,
    )
    final = submit_and_stream(args.socket, sweep_spec, **_client_auth(args))
    if final.kind != "job-done":
        print(f"error: {final.get('message')}", file=sys.stderr)
        return 1
    status = final.get("status")
    if status != "ok":
        print(f"job {final.get('job')} finished with status: {status}",
              file=sys.stderr)
        return 1
    print(
        f"scenario grid over {', '.join(grid)} — {spec.name} on "
        f"{spec.machine} ({args.trials} trial(s)/point)"
    )
    print(
        render_rows(
            final.get("parameters", []),
            final.get("metrics", []),
            final.get("rows", []),
        )
    )
    print(
        f"{final.get('points')} points via service — "
        f"cache hits {final.get('cache_hits')}, computed {final.get('computed')}, "
        f"shared {final.get('shared')}, {final.get('elapsed_s'):.2f}s"
    )
    return 0


def _parse_defense_stacks(values) -> tuple[dict, ...]:
    """``--defense a+b`` flags into defense-config dicts, names checked."""
    from repro.defense import MITIGATIONS_BY_NAME
    from repro.errors import ConfigurationError

    stacks = []
    for value in values:
        names = [name for name in value.split("+") if name]
        if value in ("none", "baseline"):
            names = []
        unknown = sorted(set(names) - set(MITIGATIONS_BY_NAME))
        if unknown:
            raise ConfigurationError(
                f"unknown mitigation(s) {unknown}; choose from "
                f"{sorted(MITIGATIONS_BY_NAME)}"
            )
        stacks.append({"mitigations": names})
    return tuple(stacks)


def _synth_executor(args):
    """Executor for a synth campaign (mirrors the sweep verb's choices)."""
    from repro.errors import ConfigurationError
    from repro.exec import ParallelExecutor, SerialExecutor

    if args.jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    if args.workers < 0:
        raise ConfigurationError(f"--workers must be >= 0, got {args.workers}")
    if args.workers > 0 or args.bind != _DEFAULT_BIND:
        from repro.cluster import DistributedExecutor

        return DistributedExecutor(
            workers=args.workers,
            bind=args.bind,
            jobs=args.jobs,
            shard_size=args.shard_size,
        )
    return ParallelExecutor(jobs=args.jobs) if args.jobs > 1 else SerialExecutor()


def _render_synth_findings(report) -> None:
    """The human summary 'synth run' prints (timing-free: byte-stable)."""
    print(
        f"synth campaign on {report.config.machine} — seed "
        f"{report.config.seed}, {report.evaluated} candidate(s) over "
        f"{report.rounds} round(s), corpus {len(report.corpus)}, "
        f"{len(report.findings)} finding(s)"
    )
    for index, finding in enumerate(report.findings):
        undefended = finding.undefended
        print(f"finding {index}: {finding.fingerprint}")
        print(
            f"  undefended : {undefended['status']:9s} "
            f"{float(undefended['kbps']):9.1f} Kbps, "
            f"err {float(undefended['error_rate']) * 100:5.1f}%"
        )
        for label, metrics in finding.defenses.items():
            print(
                f"  {label:11s}: {metrics['status']:9s} "
                f"{float(metrics['kbps']):9.1f} Kbps, "
                f"err {float(metrics['error_rate']) * 100:5.1f}%"
            )
        print(
            f"  minimized  : {finding.minimized.total_blocks} block(s) x "
            f"{finding.minimized.iterations} iteration(s) "
            f"({finding.shrink_steps} shrink step(s))"
        )


def _cmd_synth(args) -> int:
    import json as _json

    from repro.synth import (
        CandidateProgram,
        LeakageOracle,
        OracleConfig,
        SearchConfig,
        SynthSearch,
        shrink,
    )

    if args.synth_command == "report":
        with open(args.input, encoding="utf-8") as handle:
            payload = _json.load(handle)
        config = payload["config"]
        print(
            f"synth campaign on {config['machine']} — seed {config['seed']}, "
            f"{payload['evaluated']} candidate(s) over {payload['rounds']} "
            f"round(s), corpus {len(payload['corpus'])}, "
            f"{len(payload['findings'])} finding(s)"
        )
        for index, finding in enumerate(payload["findings"]):
            undefended = finding["undefended"]
            print(f"finding {index}: {finding['fingerprint']}")
            print(
                f"  undefended : {undefended['status']:9s} "
                f"{float(undefended['kbps']):9.1f} Kbps, "
                f"err {float(undefended['error_rate']) * 100:5.1f}%"
            )
            for label in sorted(finding["defenses"]):
                metrics = finding["defenses"][label]
                print(
                    f"  {label:11s}: {metrics['status']:9s} "
                    f"{float(metrics['kbps']):9.1f} Kbps, "
                    f"err {float(metrics['error_rate']) * 100:5.1f}%"
                )
        return 0

    _apply_backend(args)
    if args.synth_command == "minimize":
        if args.candidate == "-":
            text = sys.stdin.read()
        else:
            with open(args.candidate, encoding="utf-8") as handle:
                text = handle.read()
        candidate = CandidateProgram.from_json(text)
        oracle = LeakageOracle(
            OracleConfig(
                machine=args.machine,
                bits=args.bits,
                training_bits=args.training_bits,
            )
        )
        minimized, steps = shrink(candidate, oracle, args.seed, args.budget)
        print(minimized.to_json())
        print(
            f"minimize: cost {candidate.cost} -> {minimized.cost} in "
            f"{steps} oracle evaluation(s)",
            file=sys.stderr,
        )
        return 0

    # run
    from repro.exec import ResultCache
    from repro.reporting import format_execution_stats

    kwargs = {}
    if args.defense is not None:
        kwargs["defenses"] = _parse_defense_stacks(args.defense)
    config = SearchConfig(
        seed=args.seed,
        budget=args.budget,
        batch_size=args.batch_size,
        machine=args.machine,
        bits=args.bits,
        training_bits=args.training_bits,
        max_findings=args.max_findings,
        shrink_budget=args.shrink_budget,
        **kwargs,
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    report = SynthSearch(config).run(
        executor=_synth_executor(args), cache=cache
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    if args.scenarios_out:
        with open(args.scenarios_out, "w", encoding="utf-8") as handle:
            handle.write(
                _json.dumps(
                    report.scenario_payloads(),
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
    if args.json:
        print(report.to_json())
    else:
        _render_synth_findings(report)
    # Timing-dependent accounting stays off stdout so two equal-seed
    # runs produce byte-identical result streams.
    if report.stats is not None:
        print(format_execution_stats(report.stats), file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import check_floor, run_bench, write_bench

    if args.suite == "lint":
        from repro.bench import run_lint_bench
        from repro.errors import ConfigurationError

        if args.check:
            raise ConfigurationError(
                "--check applies to the frontend suite only"
            )
        result = run_lint_bench(
            loops=args.loops if args.loops is not None else 3
        )
        target = write_bench(result, args.output or "BENCH_lint.json")
        print(
            f"lint        full tree        {result['total_s']:9.3f} s/run "
            f"({result['files']} files, {result['files_per_sec']:.0f} files/s)"
        )
        for phase, seconds in sorted(result["phases_s"].items()):
            print(f"lint        {phase:16s} {seconds:9.3f} s")
        for family, seconds in sorted(result["families_s"].items()):
            print(f"lint        family:{family:9s} {seconds:9.3f} s")
        print(f"wrote {target}", file=sys.stderr)
        return 0
    if args.suite == "synth":
        from repro.bench import run_synth_bench
        from repro.errors import ConfigurationError

        if args.check:
            raise ConfigurationError(
                "--check applies to the frontend suite only"
            )
        result = run_synth_bench(
            loops=args.loops if args.loops is not None else 5,
            jobs=args.jobs,
        )
        target = write_bench(result, args.output or "BENCH_synth.json")
        print(f"synth       oracle          {result['oracle_ms']:9.2f} ms/eval")
        for label, rate in sorted(result["candidates_per_sec"].items()):
            print(f"synth       {label:15s} {rate:9.2f} candidates/s")
        minimizer = result["minimizer"]
        print(
            f"synth       minimizer       {minimizer['steps']:9d} steps "
            f"(cost {minimizer['cost_before']} -> {minimizer['cost_after']}, "
            f"{minimizer['seconds']:.3f} s)"
        )
        print(f"wrote {target}", file=sys.stderr)
        return 0
    if args.suite == "service":
        from repro.bench import run_service_bench
        from repro.errors import ConfigurationError

        if args.check:
            raise ConfigurationError(
                "--check applies to the frontend suite only"
            )
        result = run_service_bench(
            loops=args.loops if args.loops is not None else 30
        )
        target = write_bench(result, args.output or "BENCH_service.json")
        print(
            f"service     submit latency  {result['submit_ms']:9.2f} ms/job"
        )
        for tenants, rate in sorted(
            result["jobs_per_sec"].items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"service     {tenants:>2s} tenant(s)    {rate:9.1f} jobs/s"
            )
        recovery = result["recovery"]
        print(
            f"service     recovery        {recovery['ms']:9.2f} ms "
            f"({recovery['jobs']} jobs, {recovery['wal_records']} WAL "
            "records)"
        )
        print(f"wrote {target}", file=sys.stderr)
        return 0
    if args.suite == "scenarios":
        from repro.errors import ConfigurationError
        from repro.scenarios.bench import run_bench as run_scenario_bench

        if args.check:
            raise ConfigurationError(
                "--check applies to the frontend suite only"
            )
        result = run_scenario_bench(
            loops=args.loops if args.loops is not None else 5,
            trials=args.trials,
        )
        target = write_bench(result, args.output or "BENCH_scenarios.json")
        for backend, per_scenario in result["latency_ms"].items():
            for name, millis in per_scenario.items():
                print(f"{backend:11s} {name:20s} {millis:9.2f} ms/trial")
        for backend, rates in result["points_per_sec"].items():
            for name, rate in rates.items():
                print(f"{backend:11s} {name:20s} {rate:9.2f} points/s")
        print(f"wrote {target}", file=sys.stderr)
        return 0
    result = run_bench(
        loops=args.loops if args.loops is not None else 300,
        reps=args.reps,
        jobs=args.jobs,
    )
    target = write_bench(result, args.output or "BENCH_frontend.json")
    for backend, per_program in result["latency_us"].items():
        for name, micros in per_program.items():
            print(f"{backend:11s} {name:16s} {micros:9.1f} us/point")
    for backend, rates in result["points_per_sec"].items():
        print(
            f"{backend:11s} {rates['serial']:8.1f} points/s serial, "
            f"{rates['parallel']:8.1f} parallel"
        )
    speedup = result.get("speedup")
    if speedup is not None:
        print(
            f"vectorized speedup: {speedup['serial']:.2f}x serial, "
            f"{speedup['parallel']:.2f}x parallel "
            f"(floor {result['floor']:.1f}x)"
        )
    print(f"wrote {target}", file=sys.stderr)
    if args.check:
        check_floor(result)
    return 0


_COMMANDS = {
    "machines": _cmd_machines,
    "transmit": _cmd_transmit,
    "probe": _cmd_probe,
    "fingerprint": _cmd_fingerprint,
    "spectre": _cmd_spectre,
    "sgx": _cmd_sgx,
    "defense": _cmd_defense,
    "scenario": _cmd_scenario,
    "synth": _cmd_synth,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "watch": _cmd_watch,
    "metrics": _cmd_metrics,
    "worker": _cmd_worker,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
    "validate": _cmd_validate,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
