"""Vectorized backend: per-program trace tables + analytic phase replay.

The reference interpreter walks every window of every iteration.  For
the workloads that dominate sweeps — a loop body whose windows become
DSB-resident after one cold pass and then repeat bit-identically — that
per-window walk recomputes the same per-iteration cost dozens of times.
This backend precomputes a **trace table** per program body (numpy
arrays of window addresses, uop counts, decode costs, LCP structure,
DSB geometry) and evaluates each distinct *phase* — the cold first
iteration, the warm all-hit iteration, the LSD-captured iteration, the
streaming iteration — exactly once with array operations.  The run is
then replayed as a cheap walk over those memoized phase costs, using
the same steady-state driver (warmup, period-1/2 detection,
:func:`~repro.frontend.engine.extrapolate_tail` semantics) as the
reference backend, followed by a bulk application of the
microarchitectural state the skipped interpretation would have produced
(DSB residency/LRU/stats, L1I fetches, LSD captures/flushes/streamed
counts).

Bit-identity is non-negotiable (backend choice is excluded from sweep
cache identity), so every float is accumulated in the reference's
evaluation order: ``np.cumsum`` is a sequential left fold over float64
exactly like the interpreter's ``+=`` chains (``np.sum`` is pairwise
and therefore never used on floats here), and the scalar cycle/energy
formulas are transcribed literally from
:meth:`FrontendEngine.run_iteration`.  The driver mirror accumulates
report fields with the same per-iteration ``+=`` sequence the reference
driver's ``merge`` calls produce, and the extrapolated tail expands to
the same ``scaled``/``merge`` arithmetic.

Fallback conditions (the run delegates to the reference backend):

* ``exact=True`` runs and SMT-active runs (cross-thread interference);
* pending LSD flush penalties or a non-idle LSD (history matters);
* a non-``None`` last delivery path (switch accounting spans runs);
* duplicate or uncacheable windows, over-capacity DSB sets (eviction
  listeners would fire), or cold MITE streaks beyond the fill gate.

The fallback is exercised deliberately by the eviction/misalignment
attack channels, which live on exactly those stateful corner cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.frontend.engine import (
    FrontendEngine,
    LoopReport,
    _IterationCost,
)
from repro.frontend.backends.reference import ReferenceBackend
from repro.frontend.paths import DeliveryPath
from repro.isa.program import LoopProgram

__all__ = ["VectorizedBackend"]

#: Residency pattern of one iteration: True per access that hits the DSB.
_HitsKey = tuple[bool, ...]


@dataclass(frozen=True)
class _PhaseCost:
    """One distinct iteration shape, fully evaluated."""

    cost: _IterationCost
    #: ``cost.key()``, precomputed for the steady-state history.
    key: tuple
    #: The same iteration when it additionally captures the LSD.
    captured: _IterationCost
    captured_key: tuple
    #: Delivery path after the iteration's last window.
    end_path: DeliveryPath
    #: MITE fill streak after the iteration's last plain window.
    end_streak: int
    #: True when every plain-window miss was allowed to fill the DSB.
    gate_ok: bool
    #: Access indices whose windows this iteration inserts into the DSB.
    inserts: tuple[int, ...]


class _TraceTable:
    """Static per-program arrays the phase evaluation runs over."""

    def __init__(self, engine: FrontendEngine, program: LoopProgram) -> None:
        accesses = engine.window_accesses(program)
        self.accesses = accesses
        self.n = len(accesses)
        self.addr = np.array([a.window_addr for a in accesses], dtype=np.int64)
        self.uops = np.array([a.uops for a in accesses], dtype=np.int64)
        self.plain_uops = np.array([a.plain_uops for a in accesses], dtype=np.int64)
        self.lcp_uops = np.array([a.lcp_uops for a in accesses], dtype=np.int64)
        self.lcp_count = np.array([a.lcp_count for a in accesses], dtype=np.int64)
        self.lcp_runs = np.array([a.lcp_runs for a in accesses], dtype=np.int64)
        self.decode = np.array([a.decode_cycles for a in accesses], dtype=np.float64)
        self.plain_decode = np.array(
            [a.plain_decode_cycles for a in accesses], dtype=np.float64
        )
        self.misaligned = np.array(
            [a.spans_from_misaligned for a in accesses], dtype=bool
        )
        self.is_plain = np.array([a.lcp_count == 0 for a in accesses], dtype=bool)
        self.is_pure = np.array([a.pure_lcp for a in accesses], dtype=bool)
        self.is_mixed = ~(self.is_plain | self.is_pure)
        #: Windows that can live in the DSB (at least their plain part).
        self.cacheable = self.is_plain | self.is_mixed
        self.insert_uops = np.where(
            self.is_plain, self.uops, np.where(self.is_mixed, self.plain_uops, 0)
        )
        self.ways = np.array(
            [
                engine.dsb.ways_for_uops(int(u)) if u > 0 else 0
                for u in self.insert_uops
            ],
            dtype=np.int64,
        )
        wb = engine.params.window_bytes
        self.set_index = (self.addr // wb) % engine.params.dsb_sets
        #: Static fast-path viability: at least one window, no aliased
        #: window addresses (intra-iteration residency changes), and no
        #: uncacheable-but-cacheable-destined windows (those re-miss and
        #: bump ``uncacheable_lookups`` every iteration).
        self.static_ok = (
            self.n > 0
            and len({int(a) for a in self.addr}) == self.n
            and bool(np.all(self.ways[self.cacheable] >= 1))
        )
        #: Per-access (index, addr, physical set) for the single-thread
        #: mode (``effective_index`` reduces to addr//wb mod sets there).
        self.lookup_triples = tuple(
            (int(i), int(self.addr[i]), int(self.set_index[i]))
            for i in np.flatnonzero(self.cacheable)
        )
        self.cacheable_list = [bool(c) for c in self.cacheable]
        self.addr_list = [int(a) for a in self.addr]
        self.set_list = [int(s) for s in self.set_index]
        self.insert_list = [int(u) for u in self.insert_uops]
        self.ways_list = [int(w) for w in self.ways]
        self.pure_addrs = tuple(int(a) for a in self.addr[self.is_pure])
        #: Residency pattern of a fully warmed iteration.
        self.warm_key: _HitsKey = tuple(self.cacheable_list)
        #: Enabled-independent LSD qualification: pure in (program,
        #: params), so safe to cache per program.  The ``enabled`` bit
        #: is re-read per run — microcode patches toggle it on a live
        #: core without invalidating trace tables.
        self.body_qualifies = engine.lsds[0].body_qualifies(program)
        self._phase_memo: dict[tuple, _PhaseCost] = {}
        self._stream: tuple[_IterationCost, tuple] | None = None

    # ------------------------------------------------------------------
    # phase evaluation
    # ------------------------------------------------------------------
    def phase(
        self,
        engine: FrontendEngine,
        hits_key: _HitsKey,
        entering: DeliveryPath | None,
    ) -> _PhaseCost:
        """Cost of one full-interpretation iteration with ``hits_key`` residency.

        Memoized on (residency pattern, entering path); the arithmetic
        transcribes :meth:`FrontendEngine.run_iteration` with the same
        float accumulation order.
        """
        memo = self._phase_memo.get((hits_key, entering))
        if memo is not None:
            return memo
        params = engine.params
        energy = engine.energy
        plain, pure, mixed = self.is_plain, self.is_pure, self.is_mixed
        hits = np.array(hits_key, dtype=bool)
        hit = hits & self.cacheable
        miss = self.cacheable & ~hit

        # Integer counters: exact under any summation order.
        uops_dsb = int(self.uops[plain & hit].sum()) + int(
            self.plain_uops[mixed & hit].sum()
        )
        uops_mite = (
            int(self.uops[plain & miss].sum())
            + int(self.uops[pure].sum())
            + int(self.plain_uops[mixed & miss].sum())
            + int(self.lcp_uops[mixed].sum())
        )
        windows_dsb = int(np.count_nonzero(hit))
        windows_mite = int(np.count_nonzero(miss)) + int(np.count_nonzero(pure))
        lcp_stalls = int(self.lcp_count[pure | mixed].sum())

        # MITE decode cycles accumulate in access order, with mixed
        # windows contributing their plain-decode term before their
        # sequential LCP term — a two-column layout raveled row-major
        # reproduces the interpreter's += sequence, and cumsum is a
        # sequential left fold so the float bits match.
        cols = np.zeros((self.n, 2), dtype=np.float64)
        if params.uniform_delivery:
            cols[:, 0][plain & hit] = self.decode[plain & hit]
        cols[:, 0][plain & miss] = self.decode[plain & miss]
        cols[:, 0][pure] = self.decode[pure]
        cols[:, 0][mixed & miss] = self.plain_decode[mixed & miss]
        cols[:, 1][mixed] = self.lcp_count[mixed] * 1.0
        flat = cols.ravel()
        mite_cycles = float(np.cumsum(flat)[-1]) if flat.size else 0.0
        k_misaligned = int(np.count_nonzero(plain & hit & self.misaligned))
        misalign_cycles = (
            float(
                np.cumsum(
                    np.full(k_misaligned, params.misalign_dsb_penalty, dtype=np.float64)
                )[-1]
            )
            if k_misaligned
            else 0.0
        )

        # Switch accounting: the delivery path after each access is DSB
        # on a hit and MITE otherwise; compare each access against its
        # predecessor (the entering path for the first).
        after_dsb = hit
        prev_dsb_or_lsd = np.empty(self.n, dtype=bool)
        prev_mite = np.empty(self.n, dtype=bool)
        prev_dsb_or_lsd[0] = entering in (DeliveryPath.DSB, DeliveryPath.LSD)
        prev_mite[0] = entering is DeliveryPath.MITE
        prev_dsb_or_lsd[1:] = after_dsb[:-1]
        prev_mite[1:] = ~after_dsb[:-1]
        mixed_hit_runs = int(self.lcp_runs[mixed & hit].sum())
        to_dsb = int(np.count_nonzero(hit & prev_mite)) + mixed_hit_runs
        to_mite = (
            int(np.count_nonzero((miss | pure) & prev_dsb_or_lsd)) + mixed_hit_runs
        )

        # MITE fill streak along the plain windows: hits reset it, every
        # miss must stay within the fill gate for the cold pass to leave
        # all windows resident.
        plain_hit_seq = hit[plain]
        if plain_hit_seq.size:
            seq = np.arange(1, plain_hit_seq.size + 1, dtype=np.int64)
            last_reset = np.maximum.accumulate(np.where(plain_hit_seq, seq, 0))
            streaks = seq - last_reset
            miss_streaks = streaks[~plain_hit_seq]
            gate_ok = (
                bool(np.all(miss_streaks <= params.mite_fill_streak_limit))
                if miss_streaks.size
                else True
            )
            end_streak = int(streaks[-1])
        else:
            gate_ok = True
            end_streak = 0

        base = (uops_dsb + uops_mite) / params.issue_width
        frontend = (
            windows_dsb * params.dsb_window_overhead
            + misalign_cycles
            + mite_cycles
            + to_mite * params.dsb_to_mite_penalty
            + to_dsb * params.mite_to_dsb_penalty
            + lcp_stalls * params.lcp_stall
        )
        cycles = base + frontend + params.loop_iteration_overhead + 0.0
        energy_nj = (
            uops_dsb * energy.dsb_uop_energy
            + uops_mite * energy.mite_uop_energy
            + cycles * energy.cycle_energy
            + lcp_stalls * energy.lcp_stall_energy
            + (to_mite + to_dsb) * energy.switch_energy
        )
        cost = _IterationCost(
            cycles=cycles,
            uops_lsd=0,
            uops_dsb=uops_dsb,
            uops_mite=uops_mite,
            windows_lsd=0,
            windows_dsb=windows_dsb,
            windows_mite=windows_mite,
            switches_to_mite=to_mite,
            switches_to_dsb=to_dsb,
            lcp_stalls=lcp_stalls,
            lsd_flushes=0,
            lsd_captures=0,
            dsb_evictions=0,
            energy_nj=energy_nj,
        )
        # The capturing variant pays lsd_capture_cost *before* energy is
        # computed, so its energy derives from the larger cycle count.
        cap_cycles = cycles + params.lsd_capture_cost
        cap_energy = (
            uops_dsb * energy.dsb_uop_energy
            + uops_mite * energy.mite_uop_energy
            + cap_cycles * energy.cycle_energy
            + lcp_stalls * energy.lcp_stall_energy
            + (to_mite + to_dsb) * energy.switch_energy
        )
        captured = _IterationCost(
            cycles=cap_cycles,
            uops_lsd=0,
            uops_dsb=uops_dsb,
            uops_mite=uops_mite,
            windows_lsd=0,
            windows_dsb=windows_dsb,
            windows_mite=windows_mite,
            switches_to_mite=to_mite,
            switches_to_dsb=to_dsb,
            lcp_stalls=lcp_stalls,
            lsd_flushes=0,
            lsd_captures=1,
            dsb_evictions=0,
            energy_nj=cap_energy,
        )
        phase = _PhaseCost(
            cost=cost,
            key=cost.key(),
            captured=captured,
            captured_key=captured.key(),
            end_path=DeliveryPath.DSB if bool(after_dsb[-1]) else DeliveryPath.MITE,
            end_streak=end_streak,
            gate_ok=gate_ok,
            inserts=tuple(int(i) for i in np.flatnonzero(miss)),
        )
        self._phase_memo[(hits_key, entering)] = phase
        return phase

    def stream(
        self, engine: FrontendEngine, program: LoopProgram
    ) -> tuple[_IterationCost, tuple]:
        """Cost of an LSD-streamed iteration (mirrors ``_lsd_iteration``)."""
        if self._stream is None:
            params = engine.params
            uops = program.uops_per_iteration
            windows = program.window_events_per_iteration
            base = uops / params.issue_width
            frontend = windows * params.lsd_window_overhead
            if params.uniform_delivery:
                frontend += sum(a.decode_cycles for a in self.accesses)
            cycles = base + frontend + params.loop_iteration_overhead + 0.0
            energy_nj = (
                uops * engine.energy.lsd_uop_energy
                + cycles * engine.energy.cycle_energy
            )
            cost = _IterationCost(
                cycles=cycles,
                uops_lsd=uops,
                uops_dsb=0,
                uops_mite=0,
                windows_lsd=windows,
                windows_dsb=0,
                windows_mite=0,
                switches_to_mite=0,
                switches_to_dsb=0,
                lcp_stalls=0,
                lsd_flushes=0,
                lsd_captures=0,
                dsb_evictions=0,
                energy_nj=energy_nj,
            )
            self._stream = (cost, cost.key())
        return self._stream


class VectorizedBackend:
    """Trace-table fast path with reference fallback."""

    name = "vectorized"

    def __init__(self) -> None:
        self._reference = ReferenceBackend()
        self._tables: dict[tuple, _TraceTable] = {}
        self._engine: FrontendEngine | None = None
        # One-entry identity memo: sweeps hammer the same program object,
        # and hashing a body tuple of frozen blocks is measurably costly.
        self._last_program: LoopProgram | None = None
        self._last_table: _TraceTable | None = None

    def run_loop(
        self,
        engine: FrontendEngine,
        program: LoopProgram,
        thread: int,
        smt_active: bool,
        exact: bool,
    ) -> LoopReport:
        report = self._try_fast(engine, program, thread, smt_active, exact)
        if report is None:
            return self._reference.run_loop(engine, program, thread, smt_active, exact)
        return report

    # ------------------------------------------------------------------
    # fast path
    # ------------------------------------------------------------------
    def _table(self, engine: FrontendEngine, program: LoopProgram) -> _TraceTable:
        if program is self._last_program and self._engine is engine:
            return self._last_table  # type: ignore[return-value]
        # Tables derive from one engine's params; a backend normally
        # serves exactly one engine, but guard against sharing.
        if self._engine is not engine:
            self._tables.clear()
            self._last_program = None
            self._engine = engine
        table = self._tables.get(program.body)
        if table is None:
            table = _TraceTable(engine, program)
            self._tables[program.body] = table
        self._last_program = program
        self._last_table = table
        return table

    def _try_fast(
        self,
        engine: FrontendEngine,
        program: LoopProgram,
        thread: int,
        smt_active: bool,
        exact: bool,
    ) -> LoopReport | None:
        if exact or smt_active or program.iterations <= 0:
            return None
        if engine._pending_penalty[thread] or engine._pending_flushes[thread]:
            return None
        if engine._last_path[thread] is not None:
            return None
        lsd = engine.lsds[thread]
        if not lsd.idle:
            return None
        table = self._table(engine, program)
        if not table.static_ok:
            return None
        dsb = engine.dsb
        params = engine.params
        sets = dsb._sets

        h0 = list(table.cacheable_list)
        for i, addr, set_i in table.lookup_triples:
            h0[i] = (thread, addr) in sets[set_i]
        h0_key: _HitsKey = tuple(h0)
        cold = table.phase(engine, h0_key, None)
        if not cold.gate_ok:
            return None
        if cold.inserts:
            # Every cold insert must fit without evicting (evictions
            # would fire the LSD inclusivity listeners mid-run).
            need: dict[int, int] = {}
            for i in cold.inserts:
                set_i = table.set_list[i]
                need[set_i] = need.get(set_i, 0) + table.ways_list[i]
            for set_i, extra in need.items():
                if dsb._used_ways(sets[set_i]) + extra > params.dsb_ways:
                    return None

        qualifies = table.body_qualifies and lsd.enabled
        detect = params.lsd_detect_iterations

        # --- driver mirror: same warmup / steady / extrapolation logic
        # as the reference backend, walking memoized phase costs.  The
        # report fields accumulate with the reference's merge sequence
        # (per-iteration += in order, then the scaled tail once).
        history: list[tuple] = []
        iteration = 0
        limit = min(program.iterations, engine.MAX_SIMULATED)
        steady = False
        prev_cost: _IterationCost | None = None
        cost: _IterationCost | None = None
        min_warmup = engine.MIN_WARMUP
        if qualifies:
            min_warmup = max(min_warmup, detect + 2)
        streaming = False
        captured = False
        streak = 0
        n_warm = 0
        n_stream = 0
        entering: DeliveryPath | None = None
        last_end_streak = 0
        cycles = 0.0
        energy_nj = 0.0
        uops_lsd = uops_dsb = uops_mite = 0
        windows_lsd = windows_dsb = windows_mite = 0
        to_mite = to_dsb = lcp_stalls = captures = 0
        is_steady = FrontendEngine._is_steady
        while iteration < limit:
            if streaming:
                current, key = table.stream(engine, program)
                n_stream += 1
            else:
                phase = table.phase(
                    engine, h0_key if iteration == 0 else table.warm_key, entering
                )
                if iteration > 0:
                    n_warm += 1
                current, key = phase.cost, phase.key
                if qualifies and phase.cost.windows_mite == 0:
                    streak += 1
                    if streak >= detect:
                        streaming = True
                        captured = True
                        current, key = phase.captured, phase.captured_key
                elif qualifies:
                    streak = 0
                entering = phase.end_path
                last_end_streak = phase.end_streak
            prev_cost, cost = cost, current
            cycles += current.cycles
            energy_nj += current.energy_nj
            uops_lsd += current.uops_lsd
            uops_dsb += current.uops_dsb
            uops_mite += current.uops_mite
            windows_lsd += current.windows_lsd
            windows_dsb += current.windows_dsb
            windows_mite += current.windows_mite
            to_mite += current.switches_to_mite
            to_dsb += current.switches_to_dsb
            lcp_stalls += current.lcp_stalls
            captures += current.lsd_captures
            history.append(key)
            iteration += 1
            if iteration >= min_warmup and is_steady(history):
                steady = True
                break
        simulated = iteration
        remaining = program.iterations - iteration
        if remaining > 0:
            if not steady:
                # Phase costs are constant after warmup, so this cannot
                # happen; if the model ever grows a longer transient,
                # the reference driver stays authoritative.
                return None
            # Expanded extrapolate_tail: period-1 repeats the last cost;
            # period-2 continues prev, last, prev, ... after the last
            # simulated iteration.  Factors are exact integers, and each
            # field receives one += of the combined tail, matching the
            # reference's single merge of the scaled report.
            if history[-1] != history[-2] and prev_cost is not None:
                h, f = (remaining + 1) // 2, remaining // 2
                cycles += prev_cost.cycles * h + cost.cycles * f
                energy_nj += prev_cost.energy_nj * h + cost.energy_nj * f
                uops_lsd += prev_cost.uops_lsd * h + cost.uops_lsd * f
                uops_dsb += prev_cost.uops_dsb * h + cost.uops_dsb * f
                uops_mite += prev_cost.uops_mite * h + cost.uops_mite * f
                windows_lsd += prev_cost.windows_lsd * h + cost.windows_lsd * f
                windows_dsb += prev_cost.windows_dsb * h + cost.windows_dsb * f
                windows_mite += prev_cost.windows_mite * h + cost.windows_mite * f
                to_mite += prev_cost.switches_to_mite * h + cost.switches_to_mite * f
                to_dsb += prev_cost.switches_to_dsb * h + cost.switches_to_dsb * f
                lcp_stalls += prev_cost.lcp_stalls * h + cost.lcp_stalls * f
                captures += prev_cost.lsd_captures * h + cost.lsd_captures * f
            else:
                cycles += cost.cycles * remaining
                energy_nj += cost.energy_nj * remaining
                uops_lsd += cost.uops_lsd * remaining
                uops_dsb += cost.uops_dsb * remaining
                uops_mite += cost.uops_mite * remaining
                windows_lsd += cost.windows_lsd * remaining
                windows_dsb += cost.windows_dsb * remaining
                windows_mite += cost.windows_mite * remaining
                to_mite += cost.switches_to_mite * remaining
                to_dsb += cost.switches_to_dsb * remaining
                lcp_stalls += cost.lcp_stalls * remaining
                captures += cost.lsd_captures * remaining

        # --- apply the microarchitectural state the skipped
        # interpretation would have produced.
        l1i = engine.l1i
        cacheable = table.cacheable_list
        addrs = table.addr_list
        for i in range(table.n):
            addr = addrs[i]
            if cacheable[i]:
                got = dsb.lookup(thread, addr, False)
                if got != h0[i]:
                    raise ExecutionError(
                        "vectorized fast path: DSB residency prediction diverged"
                    )
                if not got:
                    if l1i is not None:
                        l1i.access(addr)
                    dsb.insert(thread, addr, table.insert_list[i], False)
            else:
                if l1i is not None:
                    l1i.access(addr)
        if n_warm:
            for i, addr, _set_i in table.lookup_triples:
                if not dsb.lookup(thread, addr, False):
                    raise ExecutionError(
                        "vectorized fast path: warm lookup unexpectedly missed"
                    )
            if l1i is not None:
                for addr in table.pure_addrs:
                    l1i.access(addr)
            if n_warm > 1:
                # Warm passes beyond the first are LRU-idempotent (the
                # same keys move to the end in the same order), so only
                # the statistics need the repetition.
                dsb.stats.hits += (n_warm - 1) * len(table.lookup_triples)
                if l1i is not None:
                    for _ in range(n_warm - 1):
                        for addr in table.pure_addrs:
                            l1i.access(addr)
        if captured:
            lsd.stats.captures += 1
        streamed = n_stream + (remaining if streaming and remaining > 0 else 0)
        if streamed:
            lsd.stats.streamed_iterations += streamed
        if streaming:
            # The reference driver's terminal flush() ends the stream.
            lsd.stats.flushes += 1
        cycles += params.loop_exit_mispredict
        energy_nj += params.loop_exit_mispredict * engine.energy.cycle_energy
        engine._mite_streak[thread] = last_end_streak
        engine._last_path[thread] = None
        return LoopReport(
            cycles=cycles,
            iterations=simulated + max(remaining, 0),
            uops_lsd=uops_lsd,
            uops_dsb=uops_dsb,
            uops_mite=uops_mite,
            windows_lsd=windows_lsd,
            windows_dsb=windows_dsb,
            windows_mite=windows_mite,
            switches_to_mite=to_mite,
            switches_to_dsb=to_dsb,
            lcp_stalls=lcp_stalls,
            lsd_flushes=0,
            lsd_captures=captures,
            dsb_evictions=0,
            energy_nj=energy_nj,
            simulated_iterations=simulated,
        )
