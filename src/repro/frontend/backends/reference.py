"""The reference backend: the original per-iteration interpreter driver.

This is the engine's historical ``run_loop`` body, extracted verbatim so
other backends have a single source of truth to be bit-identical
against.  Every iteration goes through
:meth:`FrontendEngine.run_iteration` (full per-window interpretation);
once the per-iteration cost repeats with period 1 or 2 the remaining
iterations are extrapolated analytically via
:func:`repro.frontend.engine.extrapolate_tail`.
"""

from __future__ import annotations

from repro.frontend.engine import (
    FrontendEngine,
    LoopReport,
    _IterationCost,
    extrapolate_tail,
)
from repro.isa.program import LoopProgram

__all__ = ["ReferenceBackend"]


class ReferenceBackend:
    """Iteration-by-iteration driver over the full interpreter."""

    name = "reference"

    def run_loop(
        self,
        engine: FrontendEngine,
        program: LoopProgram,
        thread: int,
        smt_active: bool,
        exact: bool,
    ) -> LoopReport:
        report = LoopReport()
        history: list[tuple] = []
        iteration = 0
        limit = (
            program.iterations
            if exact
            else min(program.iterations, engine.MAX_SIMULATED)
        )
        steady = False
        prev_cost: _IterationCost | None = None
        cost: _IterationCost | None = None
        # Pre-capture DSB iterations look steady but are not: a loop the
        # LSD could still lock onto must be simulated past the detection
        # latency before extrapolation may engage.
        min_warmup = engine.MIN_WARMUP
        if engine.lsds[thread].structurally_qualifies(program):
            min_warmup = max(min_warmup, engine.params.lsd_detect_iterations + 2)
        while iteration < limit:
            prev_cost, cost = cost, engine.run_iteration(program, thread, smt_active)
            report.merge(cost.to_report())
            history.append(cost.key())
            iteration += 1
            if not exact and iteration >= min_warmup and engine._is_steady(history):
                steady = True
                break
        remaining = program.iterations - iteration
        if remaining > 0 and cost is not None:
            if not steady:
                # Hit MAX_SIMULATED without period-1/2 convergence: run
                # one more live iteration and repeat it for the tail.
                prev_cost, cost = None, engine.run_iteration(
                    program, thread, smt_active
                )
                report.merge(cost.to_report())
                remaining -= 1
            if remaining > 0:
                period_two = steady and history[-1] != history[-2]
                report.merge(
                    extrapolate_tail(prev_cost, cost, remaining, period_two)
                )
                if engine.lsds[thread].is_streaming(program):
                    engine.lsds[thread].stats.streamed_iterations += remaining
        # Loop exit: the terminal backward branch mispredicts and any LSD
        # stream for this loop ends (no flush penalty is charged to the
        # *next* loop; the exit cost covers it).
        report.cycles += engine.params.loop_exit_mispredict
        report.energy_nj += engine.params.loop_exit_mispredict * engine.energy.cycle_energy
        engine.lsds[thread].flush()
        engine._last_path[thread] = None
        return report
