"""Pluggable loop-simulation backends for the frontend engine.

A *backend* is a strategy for executing :meth:`FrontendEngine.run_loop`:
it owns the iteration driver (warmup, steady-state detection, analytic
extrapolation, loop-exit accounting) while the engine keeps the modelled
state (DSB, LSDs, MITE, L1I).  The contract is strict:

* **bit-identical results** — every backend must produce byte-for-byte
  the same :class:`~repro.frontend.engine.LoopReport` and leave the
  engine in exactly the same microarchitectural state as the
  ``reference`` interpreter.  Backend choice may never change *what* is
  computed, only how fast — which is why the backend name is **not**
  part of :func:`repro.exec.canonical.point_key` cache identity, and
  why tier-1 cross-validates the registered backends on a seeded
  program corpus instead.
* **graceful fallback** — a backend that cannot handle a run (SMT
  interference, pending flush penalties, DSB pressure) must delegate to
  the reference driver rather than approximate.

Selection precedence: explicit ``FrontendEngine(backend=...)`` argument
> process default (:func:`set_default_backend`) > the
``REPRO_SIM_BACKEND`` environment variable > ``reference``.  The CLI's
``--backend`` flag sets both the process default and the environment
variable so spawned worker processes inherit the choice.

See ``docs/backends.md`` for the full contract and the vectorization
strategy.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.frontend.engine import FrontendEngine, LoopReport
    from repro.isa.program import LoopProgram

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "FrontendBackend",
    "register_backend",
    "available_backends",
    "resolve_backend_name",
    "create_backend",
    "default_backend_name",
    "set_default_backend",
]

#: Environment variable naming the backend for processes that take no flag.
ENV_VAR = "REPRO_SIM_BACKEND"

#: The always-available interpreter backend every other backend must match.
DEFAULT_BACKEND = "reference"


@runtime_checkable
class FrontendBackend(Protocol):
    """What a simulation backend must provide.

    ``run_loop`` receives the engine whose state it drives; it must
    return the same report bits and leave the same engine state as the
    reference driver for every input.  Instances are engine-affine: the
    engine creates one backend per :class:`FrontendEngine` so backends
    may cache per-program derived data without cross-engine aliasing.
    """

    name: str

    def run_loop(
        self,
        engine: "FrontendEngine",
        program: "LoopProgram",
        thread: int,
        smt_active: bool,
        exact: bool,
    ) -> "LoopReport": ...


_factories: dict[str, Callable[[], FrontendBackend]] = {}
_lock = threading.Lock()
_process_default: str | None = None


def register_backend(name: str, factory: Callable[[], FrontendBackend]) -> None:
    """Register ``factory`` under ``name`` (last registration wins)."""
    with _lock:
        _factories[str(name)] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted for stable display."""
    with _lock:
        return tuple(sorted(_factories))


def set_default_backend(name: str | None) -> str | None:
    """Set the process-wide default backend; returns the previous value.

    ``None`` clears the default, falling back to ``REPRO_SIM_BACKEND``
    and then ``reference``.
    """
    global _process_default
    if name is not None and name not in available_backends():
        raise ConfigurationError(
            f"unknown simulation backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    with _lock:
        previous = _process_default
        _process_default = name
    return previous


def default_backend_name() -> str:
    """The name an engine constructed without an explicit backend gets."""
    return resolve_backend_name(None)


def resolve_backend_name(explicit: str | None) -> str:
    """Apply the selection precedence: explicit > default > env > reference."""
    if explicit is not None:
        return explicit
    with _lock:
        if _process_default is not None:
            return _process_default
    return os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def create_backend(name: str | None = None) -> FrontendBackend:
    """Instantiate the backend ``name`` resolves to.

    Each call returns a fresh instance: backends carry per-engine caches
    and must not be shared between engines.
    """
    resolved = resolve_backend_name(name)
    with _lock:
        factory = _factories.get(resolved)
    if factory is None:
        raise ConfigurationError(
            f"unknown simulation backend {resolved!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return factory()


def _make_reference() -> FrontendBackend:
    from repro.frontend.backends.reference import ReferenceBackend

    return ReferenceBackend()


def _make_vectorized() -> FrontendBackend:
    from repro.frontend.backends.vectorized import VectorizedBackend

    return VectorizedBackend()


register_backend("reference", _make_reference)
register_backend("vectorized", _make_vectorized)
