"""MITE (legacy decode pipeline) cost model.

The Micro-Instruction Translation Engine fetches 16 bytes per cycle from
the L1I, predecodes instruction lengths, and feeds up to 4 decoders (one
complex + three simple).  Two properties matter for the paper:

* it is the *slow, high-power* path — the per-window delivery overhead is
  several cycles larger than DSB/LSD delivery, and
* Length Changing Prefixes (LCPs) stall the length predecoder for up to 3
  cycles per prefixed instruction, and LCP instructions decode strictly
  sequentially (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.params import FrontendParams
from repro.isa.instructions import Instruction

__all__ = ["MiteDecoder", "WindowDecodeCost"]

#: Bytes fetched from L1I per cycle by the legacy pipeline.
FETCH_BYTES_PER_CYCLE = 16

#: Simple decoders available per cycle (plus one complex decoder).
SIMPLE_DECODERS = 3


@dataclass(frozen=True)
class WindowDecodeCost:
    """Decode cost of one instruction window through MITE.

    Attributes
    ----------
    cycles:
        Fetch + decode cycles (excluding path-switch penalties, which the
        engine accounts separately).
    lcp_stalls:
        Number of LCP predecode stall events in the window.
    uops:
        Uops produced.
    """

    cycles: float
    lcp_stalls: int
    uops: int


class MiteDecoder:
    """Stateless cost model for legacy decode of instruction windows."""

    def __init__(self, params: FrontendParams | None = None) -> None:
        self.params = params or FrontendParams()

    def decode_window(self, instructions: list[Instruction], window_bytes: int) -> WindowDecodeCost:
        """Cost of decoding ``instructions`` occupying ``window_bytes`` bytes.

        Fetch cost: ``ceil(bytes / 16)`` cycles.  Decode cost: complex
        instructions need the single complex decoder (one per cycle);
        simple instructions pack 3 per cycle alongside it.  LCP
        instructions each add a predecode stall of ``params.lcp_stall``
        cycles and serialise decoding.
        """
        if not instructions:
            return WindowDecodeCost(cycles=0.0, lcp_stalls=0, uops=0)
        fetch_cycles = -(-window_bytes // FETCH_BYTES_PER_CYCLE)
        complex_count = sum(1 for i in instructions if i.is_complex)
        simple_count = len(instructions) - complex_count
        decode_cycles = max(
            complex_count,  # one complex decode per cycle
            -(-simple_count // SIMPLE_DECODERS),
        )
        lcp_stalls = sum(1 for i in instructions if i.has_lcp)
        # LCP instructions decode sequentially: one decode slot each, on
        # top of the predecode stall accounted by the engine.
        decode_cycles += lcp_stalls
        uops = sum(i.uop_count for i in instructions)
        cycles = float(max(fetch_cycles, decode_cycles)) + self.params.mite_window_overhead
        return WindowDecodeCost(cycles=cycles, lcp_stalls=lcp_stalls, uops=uops)
