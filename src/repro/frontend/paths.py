"""Delivery path identifiers and switch-penalty bookkeeping."""

from __future__ import annotations

import enum

__all__ = ["DeliveryPath"]


class DeliveryPath(enum.Enum):
    """Which frontend structure delivered a group of uops to the backend.

    The same instruction's uops can, over time, be delivered by any of the
    three paths; the path taken determines latency and energy, which is
    the root cause of every channel in the paper.
    """

    LSD = "lsd"
    DSB = "dsb"
    MITE = "mite"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()
