"""Frontend geometry, latency, and energy parameters.

All structural constants come from the paper (Table I and Section III)
and the Intel SDM it cites.  The latency/energy coefficients are the
*calibrated* part of the reproduction: they are chosen so that the
simulator reproduces the orderings the paper measures —

* per-iteration latency:  ``DSB < LSD < MITE+DSB`` for the short
  chained-block loops the channels use (Figure 4; the misalignment
  channels rely on DSB being slightly *faster* than LSD for these tiny
  loops, Section IV-B, while eviction channels rely on MITE+DSB being
  much slower, Section IV-A);
* per-uop energy: ``LSD < DSB << MITE`` (Figures 12 and 13);
* LCP predecode stalls of up to 3 cycles plus a DSB-to-MITE switch
  penalty (Section III-D).

Every coefficient can be overridden to run sensitivity studies; the
ablation benchmarks sweep several of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["FrontendParams", "EnergyParams"]


@dataclass(frozen=True)
class FrontendParams:
    """Structural and timing parameters of the frontend model.

    Structural parameters (paper / Intel SDM):

    dsb_sets, dsb_ways, dsb_line_uops, window_bytes:
        DSB geometry: 32 sets x 8 ways, 6 uops per 32-byte window.
    lsd_capacity:
        Maximum uops the LSD can stream (64).
    lsd_detect_iterations:
        Consecutive all-DSB loop iterations before the LSD locks on.
    lsd_misalign_limit:
        Misaligned (window-spanning) blocks per DSB set above which the
        LSD collides outright (reverse-engineered: 4 misaligned blocks
        mapping to one set defeat the LSD even though they fit the DSB,
        Section III-C).
    issue_width:
        Rename/retire cap of 4 uops per cycle (Section III-A4).

    Timing coefficients (cycles; calibrated):

    dsb_window_overhead, lsd_window_overhead, mite_window_overhead:
        Added frontend bubble per 32-byte window delivered via each path.
    dsb_to_mite_penalty / mite_to_dsb_penalty:
        Path switch penalties per transition.
    lsd_flush_penalty / lsd_capture_cost:
        One-off costs when the LSD is flushed (eviction/misalignment) or
        locks onto a new loop.
    misalign_dsb_penalty:
        Extra cycles per DSB delivery of a window belonging to a
        window-spanning (misaligned) block: the DSB must read two lines
        to reconstruct the block's uop sequence.
    lcp_stall:
        Predecode stall per LCP instruction decoded by MITE (up to 3
        cycles per the paper).
    loop_iteration_overhead:
        Loop-control overhead (decrement + taken branch) per iteration.
    loop_exit_mispredict:
        Branch mispredict penalty when a loop exits.
    smt_frontend_factor:
        Frontend throughput derating while both hardware threads are
        active (fetch/decode structures are competitively shared).

    Ablation switches (DESIGN.md Section 5):

    smt_partitioning:
        When False, the DSB keeps its full 32-set indexing even with two
        active threads (no SMT fold) — removes the Figure 2 conflicts
        and starves the MT eviction channel.
    lsd_inclusive:
        When False, a DSB eviction no longer flushes the LSD — the
        eviction channel's LSD->MITE+DSB transition disappears on LSD
        machines.
    """

    # --- structure (paper values) -------------------------------------
    dsb_sets: int = 32
    dsb_ways: int = 8
    dsb_line_uops: int = 6
    window_bytes: int = 32
    lsd_capacity: int = 64
    lsd_detect_iterations: int = 2
    lsd_misalign_limit: int = 4
    issue_width: int = 4

    # --- timing (calibrated) ------------------------------------------
    dsb_window_overhead: float = 0.15
    lsd_window_overhead: float = 0.45
    mite_window_overhead: float = 2.50
    dsb_to_mite_penalty: float = 4.0
    mite_to_dsb_penalty: float = 2.0
    lsd_flush_penalty: float = 20.0
    lsd_capture_cost: float = 8.0
    misalign_dsb_penalty: float = 0.35
    lcp_stall: float = 3.0
    loop_iteration_overhead: float = 1.0
    loop_exit_mispredict: float = 14.0
    smt_frontend_factor: float = 1.6

    # --- ablation switches ---------------------------------------------
    smt_partitioning: bool = True
    lsd_inclusive: bool = True

    #: Defense: pad every DSB/LSD delivery to the full legacy-decode
    #: cost of its window, removing all path-dependent timing (at MITE
    #: pace for everything).  Used by the UniformPathTiming mitigation.
    uniform_delivery: bool = False

    #: Defense: give each hardware thread an *exclusive* half of the DSB
    #: sets under SMT (thread 0 -> sets 0-15, thread 1 -> sets 16-31)
    #: instead of folding both threads into the same half.  Cross-thread
    #: way competition — the MT eviction channel's mechanism — becomes
    #: impossible; the capacity halving (and its own self-conflicts)
    #: remains.
    smt_isolation: bool = False

    #: DSB replacement policy: "lru" (default; matches the overflow-by-
    #: one eviction arithmetic of the attacks) or "hashed" — a
    #: deterministic pseudo-random victim choice kept for sensitivity
    #: studies.
    dsb_replacement: str = "lru"

    #: Consecutive MITE-delivered windows (within one loop iteration)
    #: after which the DSB stops accepting fills until the next DSB/LSD
    #: hit or loop-back branch.  Sustained legacy-decode streaks (loops
    #: far beyond DSB capacity) therefore leave a stable resident prefix
    #: instead of LRU-thrashing the whole cache to zero — reproducing
    #: the substantial steady DSB share the paper's Figure 3 measures
    #: for 4000-uop loops.  The attacks' overflow-by-one miss bursts
    #: (at most N+1 windows) stay below this limit and are unaffected.
    mite_fill_streak_limit: int = 12

    def __post_init__(self) -> None:
        if self.dsb_sets < 2 or self.dsb_sets & (self.dsb_sets - 1):
            raise ConfigurationError(
                f"dsb_sets must be a power of two >= 2, got {self.dsb_sets}"
            )
        if self.dsb_ways < 1:
            raise ConfigurationError(f"dsb_ways must be >= 1, got {self.dsb_ways}")
        if self.lsd_capacity < 1:
            raise ConfigurationError(
                f"lsd_capacity must be >= 1, got {self.lsd_capacity}"
            )
        if self.issue_width < 1:
            raise ConfigurationError(
                f"issue_width must be >= 1, got {self.issue_width}"
            )
        for name in (
            "dsb_window_overhead",
            "lsd_window_overhead",
            "mite_window_overhead",
            "dsb_to_mite_penalty",
            "mite_to_dsb_penalty",
            "lsd_flush_penalty",
            "lsd_capture_cost",
            "misalign_dsb_penalty",
            "lcp_stall",
            "loop_iteration_overhead",
            "loop_exit_mispredict",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.smt_frontend_factor < 1.0:
            raise ConfigurationError("smt_frontend_factor must be >= 1.0")
        if self.dsb_replacement not in ("lru", "hashed"):
            raise ConfigurationError(
                f"dsb_replacement must be 'lru' or 'hashed', "
                f"got {self.dsb_replacement!r}"
            )

    @property
    def dsb_capacity_uops(self) -> int:
        """Maximum uops the whole DSB can hold (1536 with paper geometry)."""
        return self.dsb_sets * self.dsb_ways * self.dsb_line_uops

    def with_overrides(self, **kwargs: object) -> "FrontendParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy coefficients (nanojoules; calibrated).

    The orderings are what matter for the power channels: delivering a uop
    through MITE costs several times a DSB delivery, which in turn costs
    more than an LSD replay (the LSD exists to save power; Section III).
    """

    lsd_uop_energy: float = 0.8
    dsb_uop_energy: float = 1.4
    mite_uop_energy: float = 4.5
    cycle_energy: float = 2.0  # static + clock tree, per core cycle
    lcp_stall_energy: float = 1.0  # per stall cycle
    switch_energy: float = 3.0  # per DSB<->MITE transition

    def __post_init__(self) -> None:
        for name in (
            "lsd_uop_energy",
            "dsb_uop_energy",
            "mite_uop_energy",
            "cycle_energy",
            "lcp_stall_energy",
            "switch_energy",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def with_overrides(self, **kwargs: object) -> "EnergyParams":
        return replace(self, **kwargs)  # type: ignore[arg-type]
