"""Frontend execution engine.

Drives :class:`~repro.isa.program.LoopProgram` bodies through the modelled
frontend, iteration by iteration, and produces :class:`LoopReport`
delivery summaries (cycles, per-path uops, switches, stalls, energy).

The engine is **deterministic**: all measurement noise is added later by
the measurement layer (:mod:`repro.measure`), so identical programs on
identical state always produce identical reports.

Cost model per iteration (cycles)::

    base      = uops / issue_width                 (rename/retire cap)
    frontend  = dsb_windows * dsb_window_overhead
              + lsd_windows * lsd_window_overhead
              + sum(MITE window decode costs)
              + switches * switch penalties
              + lcp_stalls * lcp_stall
    cycles    = base + frontend * smt_factor + loop_iteration_overhead
              + pending LSD flush/capture penalties

For long loops the engine detects a steady state (per-iteration cost
repeating with period 1 or 2) and extrapolates the remaining iterations
analytically, which lets the 20-million-iteration experiments of
Section III run in milliseconds without changing the modelled state
machine behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator

from repro.caches.sa_cache import SetAssociativeCache
from repro.errors import ExecutionError
from repro.obs import get_registry
from repro.frontend.dsb import DecodedStreamBuffer
from repro.frontend.lsd import LoopStreamDetector
from repro.frontend.mite import MiteDecoder
from repro.frontend.params import EnergyParams, FrontendParams
from repro.frontend.paths import DeliveryPath
from repro.isa.blocks import MixBlock
from repro.isa.instructions import Instruction
from repro.isa.program import LoopProgram

__all__ = ["FrontendEngine", "LoopReport", "WindowAccess"]


@dataclass(frozen=True)
class WindowAccess:
    """Pre-computed static description of one window touch in a loop body.

    LCP-prefixed instructions never issue from the DSB (Section III-D):
    a window containing both plain and LCP instructions delivers its
    plain uops from the DSB (once cached) and its LCP uops from MITE,
    paying a DSB->MITE->DSB switch per maximal LCP run — the mechanism
    the slow-switch channel and Figure 6 exploit.

    Attributes
    ----------
    lcp_runs:
        Number of maximal runs of consecutive LCP instructions.
    spans_from_misaligned:
        True when this window belongs to a block that crosses a window
        boundary; such insertions disturb other threads' LSD streams on
        the same DSB set (Section IV-B).
    """

    window_addr: int
    instructions: tuple[Instruction, ...]
    uops: int
    bytes_used: int
    lcp_count: int
    lcp_runs: int = 0
    spans_from_misaligned: bool = False
    #: Precomputed MITE decode cost of the full window (cycles).
    decode_cycles: float = 0.0
    #: Precomputed MITE decode cost of the window's non-LCP part.
    plain_decode_cycles: float = 0.0

    @property
    def pure_lcp(self) -> bool:
        return self.lcp_count == len(self.instructions)

    @property
    def plain_uops(self) -> int:
        return sum(i.uop_count for i in self.instructions if not i.has_lcp)

    @property
    def lcp_uops(self) -> int:
        return self.uops - self.plain_uops

    @property
    def cacheable(self) -> bool:
        """At least the plain part of the window can live in the DSB."""
        return self.lcp_count < len(self.instructions)


@dataclass
class LoopReport:
    """Delivery summary of one (or more, when merged) loop executions."""

    cycles: float = 0.0
    iterations: int = 0
    uops_lsd: int = 0
    uops_dsb: int = 0
    uops_mite: int = 0
    windows_lsd: int = 0
    windows_dsb: int = 0
    windows_mite: int = 0
    switches_to_mite: int = 0
    switches_to_dsb: int = 0
    lcp_stalls: int = 0
    lsd_flushes: int = 0
    lsd_captures: int = 0
    dsb_evictions: int = 0
    energy_nj: float = 0.0
    simulated_iterations: int = 0

    @property
    def total_uops(self) -> int:
        return self.uops_lsd + self.uops_dsb + self.uops_mite

    @property
    def ipc(self) -> float:
        """Retired uops per cycle."""
        return self.total_uops / self.cycles if self.cycles else 0.0

    def merge(self, other: "LoopReport") -> "LoopReport":
        """Accumulate another report into this one (in place) and return self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "LoopReport":
        """Return a copy with every counter multiplied by ``factor``.

        Integral factors (the steady-state extrapolation always passes an
        iteration *count*) multiply integer counters exactly, so scaled
        reports conserve uops: ``scaled(n).total_uops == n * total_uops``.
        Fractional factors fall back to rounding each integer counter,
        which cannot conserve sums — callers that need conservation must
        scale by integers.
        """
        result = LoopReport()
        integral = isinstance(factor, int) or (
            isinstance(factor, float) and factor.is_integer()
        )
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, float):
                setattr(result, f.name, value * factor)
            elif integral:
                setattr(result, f.name, value * int(factor))
            else:
                setattr(result, f.name, round(value * factor))
        return result

    def dominant_path(self) -> DeliveryPath:
        """Path that delivered the most uops."""
        counts = {
            DeliveryPath.LSD: self.uops_lsd,
            DeliveryPath.DSB: self.uops_dsb,
            DeliveryPath.MITE: self.uops_mite,
        }
        return max(counts, key=counts.get)  # type: ignore[arg-type]


@dataclass
class _IterationCost:
    """Deterministic cost of a single loop iteration (internal)."""

    cycles: float
    uops_lsd: int
    uops_dsb: int
    uops_mite: int
    windows_lsd: int
    windows_dsb: int
    windows_mite: int
    switches_to_mite: int
    switches_to_dsb: int
    lcp_stalls: int
    lsd_flushes: int
    lsd_captures: int
    dsb_evictions: int
    energy_nj: float

    def key(self) -> tuple:
        """Equality key for steady-state detection.

        Every cost field participates: two iterations only count as
        "the same" when the full delivery profile repeats.  A key over a
        subset (the pre-fix behaviour) let iterations with differing
        switch/flush/eviction counters compare equal, so extrapolation
        could scale the wrong per-iteration deltas.  Floats are rounded
        to 9 decimals to absorb representation jitter only.
        """
        return (
            round(self.cycles, 9),
            self.uops_lsd,
            self.uops_dsb,
            self.uops_mite,
            self.windows_lsd,
            self.windows_dsb,
            self.windows_mite,
            self.switches_to_mite,
            self.switches_to_dsb,
            self.lcp_stalls,
            self.lsd_flushes,
            self.lsd_captures,
            self.dsb_evictions,
            round(self.energy_nj, 9),
        )

    def to_report(self) -> LoopReport:
        return LoopReport(
            cycles=self.cycles,
            iterations=1,
            uops_lsd=self.uops_lsd,
            uops_dsb=self.uops_dsb,
            uops_mite=self.uops_mite,
            windows_lsd=self.windows_lsd,
            windows_dsb=self.windows_dsb,
            windows_mite=self.windows_mite,
            switches_to_mite=self.switches_to_mite,
            switches_to_dsb=self.switches_to_dsb,
            lcp_stalls=self.lcp_stalls,
            lsd_flushes=self.lsd_flushes,
            lsd_captures=self.lsd_captures,
            dsb_evictions=self.dsb_evictions,
            energy_nj=self.energy_nj,
            simulated_iterations=1,
        )


def extrapolate_tail(
    prev_cost: "_IterationCost | None",
    last_cost: "_IterationCost",
    remaining: int,
    period_two: bool,
) -> LoopReport:
    """Analytic report for ``remaining`` unsimulated iterations.

    Period-1 steady states repeat ``last_cost``.  Period-2 steady states
    alternate the two costs; the last *simulated* iteration already paid
    ``last_cost``, so the continuation is ``prev, last, prev, ...`` —
    ``ceil(remaining / 2)`` copies of ``prev_cost`` and ``remaining // 2``
    of ``last_cost``.  Both factors are integers, so integer counters
    scale exactly and the extrapolated totals conserve
    (``total_uops == sum of per-iteration uops``), which the old
    single-cost float-factor path did not guarantee.
    """
    if period_two and prev_cost is not None:
        tail = prev_cost.to_report().scaled((remaining + 1) // 2)
        tail.merge(last_cost.to_report().scaled(remaining // 2))
    else:
        tail = last_cost.to_report().scaled(remaining)
    tail.simulated_iterations = 0
    tail.iterations = remaining
    return tail


class FrontendEngine:
    """Executes loop programs through the modelled frontend.

    One engine corresponds to one physical core: a shared DSB and MITE,
    plus one LSD per hardware thread.

    Parameters
    ----------
    params / energy:
        Model coefficients; defaults are the calibrated values.
    n_threads:
        Hardware threads on the core (1 or 2).
    lsd_enabled:
        Whether the LSD exists/is enabled (microcode patch 2 and two of
        the Table I machines have it disabled).
    backend:
        Simulation backend name (see :mod:`repro.frontend.backends`).
        ``None`` resolves the process default / ``REPRO_SIM_BACKEND`` at
        first use.  Backends are bit-identical by contract, so the
        choice never changes reports — only how fast they arrive.
    """

    #: Iterations simulated before steady-state extrapolation may engage.
    MIN_WARMUP = 4
    #: Upper bound of explicitly simulated iterations per run_loop call.
    MAX_SIMULATED = 64

    def __init__(
        self,
        params: FrontendParams | None = None,
        energy: EnergyParams | None = None,
        n_threads: int = 2,
        lsd_enabled: bool = True,
        l1i: "SetAssociativeCache | None" = None,
        backend: str | None = None,
    ) -> None:
        if n_threads not in (1, 2):
            raise ExecutionError(f"cores have 1 or 2 hardware threads, got {n_threads}")
        self.params = params or FrontendParams()
        self.energy = energy or EnergyParams()
        self.n_threads = n_threads
        #: L1 instruction cache; only MITE fetches touch it (DSB/LSD hits
        #: bypass the L1I entirely, which is why the frontend channels are
        #: invisible to instruction-cache monitors, Section III-B).
        self.l1i = l1i
        self.dsb = DecodedStreamBuffer(self.params)
        self.mite = MiteDecoder(self.params)
        self.lsds = {
            thread: LoopStreamDetector(self.params, enabled=lsd_enabled)
            for thread in range(n_threads)
        }
        self.dsb.add_eviction_listener(self._on_dsb_eviction)
        # Penalties charged to a thread's next iteration (LSD flush, ...).
        self._pending_penalty = {thread: 0.0 for thread in range(n_threads)}
        # Consecutive MITE-delivered windows per thread (fill throttling).
        self._mite_streak = {thread: 0 for thread in range(n_threads)}
        self._pending_flushes = {thread: 0 for thread in range(n_threads)}
        # Last delivery path per thread, for switch-penalty accounting.
        self._last_path: dict[int, DeliveryPath | None] = {
            thread: None for thread in range(n_threads)
        }
        self._window_cache: dict[tuple[MixBlock, ...], tuple[WindowAccess, ...]] = {}
        # Backend resolution is lazy: resolving at first run_loop keeps
        # construction cheap and lets the process default / env var set
        # after engine creation still take effect.
        self._backend_name = backend
        self._backend: "object | None" = None
        # (registry, sim.points counter, sim.latency histogram) — rebuilt
        # whenever the process registry is swapped (use_registry in tests).
        self._sim_cache: tuple | None = None

    # ------------------------------------------------------------------
    # static program analysis
    # ------------------------------------------------------------------
    def window_accesses(self, program: LoopProgram) -> tuple[WindowAccess, ...]:
        """Split the loop body into per-window instruction groups.

        Each instruction is attributed to the window containing its first
        byte.  Results are cached by body *content* (MixBlock is a frozen,
        hashable dataclass) — two different bodies placed at the same
        addresses, e.g. JIT-recycled code regions, must not alias.
        """
        key = program.body
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached
        accesses: list[WindowAccess] = []
        wb = self.params.window_bytes
        for block in program.body:
            groups: dict[int, list[Instruction]] = {}
            order: list[int] = []
            for addr, instruction in block.instruction_addresses():
                window = addr - (addr % wb)
                if window not in groups:
                    groups[window] = []
                    order.append(window)
                groups[window].append(instruction)
            for window in order:
                instructions = tuple(groups[window])
                lcp_runs = sum(
                    1
                    for i, instr in enumerate(instructions)
                    if instr.has_lcp
                    and (i == 0 or not instructions[i - 1].has_lcp)
                )
                bytes_used = sum(i.length for i in instructions)
                full_decode = self.mite.decode_window(list(instructions), bytes_used)
                plain = [i for i in instructions if not i.has_lcp]
                plain_decode = self.mite.decode_window(plain, bytes_used)
                accesses.append(
                    WindowAccess(
                        window_addr=window,
                        instructions=instructions,
                        uops=sum(i.uop_count for i in instructions),
                        bytes_used=bytes_used,
                        lcp_count=sum(1 for i in instructions if i.has_lcp),
                        lcp_runs=lcp_runs,
                        spans_from_misaligned=block.spans_windows,
                        decode_cycles=full_decode.cycles,
                        plain_decode_cycles=plain_decode.cycles,
                    )
                )
        result = tuple(accesses)
        self._window_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # eviction plumbing (DSB -> LSD inclusivity)
    # ------------------------------------------------------------------
    def _on_dsb_eviction(self, thread: int, window_addr: int) -> None:
        if not self.params.lsd_inclusive:
            return  # ablation: non-inclusive hierarchy, LSD keeps streaming
        lsd = self.lsds.get(thread)
        if lsd is not None and lsd.on_dsb_eviction(window_addr):
            self._pending_penalty[thread] += self.params.lsd_flush_penalty
            self._pending_flushes[thread] += 1

    def _notify_misaligned_touch(
        self, thread: int, window_addr: int, smt_active: bool
    ) -> None:
        """Cross-thread LSD disturbance from misaligned accesses.

        A thread touching a window-spanning block perturbs any *sibling*
        thread's LSD stream whose loop occupies the same (SMT-folded)
        DSB set — the mechanism behind the MT misalignment attack
        (Section IV-B).  Only relevant while both threads share the
        frontend.
        """
        if not smt_active:
            return
        half_sets = self.params.dsb_sets // 2
        for other, lsd in self.lsds.items():
            if other == thread:
                continue
            if lsd.on_misaligned_set_touch(
                window_addr, self.params.window_bytes, half_sets
            ):
                self._pending_penalty[other] += self.params.lsd_flush_penalty
                self._pending_flushes[other] += 1

    # ------------------------------------------------------------------
    # per-iteration execution
    # ------------------------------------------------------------------
    def run_iteration(
        self, program: LoopProgram, thread: int = 0, smt_active: bool = False
    ) -> _IterationCost:
        """Execute one iteration of ``program`` on ``thread``; mutate state."""
        if thread not in self.lsds:
            raise ExecutionError(f"no hardware thread {thread} on this core")
        params = self.params
        energy = self.energy
        lsd = self.lsds[thread]

        flushes = self._pending_flushes[thread]
        penalty = self._pending_penalty[thread]
        self._pending_flushes[thread] = 0
        self._pending_penalty[thread] = 0.0

        if lsd.is_streaming(program):
            cost = self._lsd_iteration(program, thread, penalty, flushes, smt_active)
            lsd.observe_iteration(program, all_from_dsb=True)
            return cost

        accesses = self.window_accesses(program)
        uops_dsb = uops_mite = 0
        windows_dsb = windows_mite = 0
        to_mite = to_dsb = 0
        lcp_stalls = 0
        evictions = 0
        mite_cycles = 0.0
        misalign_cycles = 0.0
        # The fill gate resets at the loop-back branch: throttling only
        # engages for sustained miss runs *within* one iteration (the
        # far-over-capacity straight-line loops of Figure 3), never for
        # the attacks' short overflow-by-one bursts.
        mite_streak = 0
        streak_limit = params.mite_fill_streak_limit
        path = self._last_path[thread]
        for access in accesses:
            if access.lcp_count == 0:
                # Plain window: DSB on hit, MITE + fill on miss.
                if self.dsb.lookup(thread, access.window_addr, smt_active):
                    uops_dsb += access.uops
                    windows_dsb += 1
                    mite_streak = 0
                    if params.uniform_delivery:
                        # Defense: hits are padded to legacy-decode pace.
                        mite_cycles += access.decode_cycles
                    if access.spans_from_misaligned:
                        misalign_cycles += params.misalign_dsb_penalty
                    if path is DeliveryPath.MITE:
                        to_dsb += 1
                    path = DeliveryPath.DSB
                else:
                    if self.l1i is not None:
                        self.l1i.access(access.window_addr)
                    mite_cycles += access.decode_cycles
                    uops_mite += access.uops
                    windows_mite += 1
                    if path in (DeliveryPath.DSB, DeliveryPath.LSD):
                        to_mite += 1
                    path = DeliveryPath.MITE
                    mite_streak += 1
                    if mite_streak <= streak_limit:
                        # Sustained MITE streaks stop filling the DSB, so
                        # far-over-capacity loops keep a stable resident
                        # prefix instead of thrashing it (Figure 3).
                        evicted = self.dsb.insert(
                            thread, access.window_addr, access.uops, smt_active
                        )
                        evictions += len(evicted)
                if access.spans_from_misaligned:
                    self._notify_misaligned_touch(thread, access.window_addr, smt_active)
            elif access.pure_lcp:
                # LCP-only window: never cached, always legacy-decoded.
                if self.l1i is not None:
                    self.l1i.access(access.window_addr)
                mite_cycles += access.decode_cycles
                lcp_stalls += access.lcp_count
                uops_mite += access.uops
                windows_mite += 1
                if path in (DeliveryPath.DSB, DeliveryPath.LSD):
                    to_mite += 1
                path = DeliveryPath.MITE
            else:
                # Mixed window: plain uops via DSB (once cached), LCP
                # uops via MITE, one DSB->MITE->DSB round trip per
                # maximal LCP run (the Figure 6 / slow-switch mechanism).
                plain_hit = self.dsb.lookup(thread, access.window_addr, smt_active)
                if plain_hit:
                    uops_dsb += access.plain_uops
                    windows_dsb += 1
                    if path is DeliveryPath.MITE:
                        to_dsb += 1
                else:
                    if self.l1i is not None:
                        self.l1i.access(access.window_addr)
                    mite_cycles += access.plain_decode_cycles
                    uops_mite += access.plain_uops
                    windows_mite += 1
                    if path in (DeliveryPath.DSB, DeliveryPath.LSD):
                        to_mite += 1
                    evicted = self.dsb.insert(
                        thread, access.window_addr, access.plain_uops, smt_active
                    )
                    evictions += len(evicted)
                # The LCP part always issues from MITE.
                uops_mite += access.lcp_uops
                lcp_stalls += access.lcp_count
                mite_cycles += access.lcp_count * 1.0  # sequential decode
                if plain_hit:
                    # Alternation between cached and LCP instructions
                    # forces a switch round trip per LCP run.
                    to_mite += access.lcp_runs
                    to_dsb += access.lcp_runs
                    path = DeliveryPath.DSB
                else:
                    path = DeliveryPath.MITE
        self._last_path[thread] = path
        self._mite_streak[thread] = mite_streak

        base = (uops_dsb + uops_mite) / params.issue_width
        frontend = (
            windows_dsb * params.dsb_window_overhead
            + misalign_cycles
            + mite_cycles
            + to_mite * params.dsb_to_mite_penalty
            + to_dsb * params.mite_to_dsb_penalty
            + lcp_stalls * params.lcp_stall
        )
        if smt_active:
            frontend *= params.smt_frontend_factor
        cycles = base + frontend + params.loop_iteration_overhead + penalty

        was_streaming_before = lsd.is_streaming(program)
        lsd.observe_iteration(program, all_from_dsb=(windows_mite == 0))
        captures = 0
        if not was_streaming_before and lsd.is_streaming(program):
            captures = 1
            cycles += params.lsd_capture_cost

        energy_nj = (
            uops_dsb * energy.dsb_uop_energy
            + uops_mite * energy.mite_uop_energy
            + cycles * energy.cycle_energy
            + lcp_stalls * energy.lcp_stall_energy
            + (to_mite + to_dsb) * energy.switch_energy
        )
        return _IterationCost(
            cycles=cycles,
            uops_lsd=0,
            uops_dsb=uops_dsb,
            uops_mite=uops_mite,
            windows_lsd=0,
            windows_dsb=windows_dsb,
            windows_mite=windows_mite,
            switches_to_mite=to_mite,
            switches_to_dsb=to_dsb,
            lcp_stalls=lcp_stalls,
            lsd_flushes=flushes,
            lsd_captures=captures,
            dsb_evictions=evictions,
            energy_nj=energy_nj,
        )

    def _lsd_iteration(
        self,
        program: LoopProgram,
        thread: int,
        penalty: float,
        flushes: int,
        smt_active: bool,
    ) -> _IterationCost:
        """Cost of an iteration streamed entirely from the LSD."""
        params = self.params
        uops = program.uops_per_iteration
        windows = program.window_events_per_iteration
        base = uops / params.issue_width
        frontend = windows * params.lsd_window_overhead
        if params.uniform_delivery:
            # Defense: streamed windows are padded to legacy-decode pace.
            frontend += sum(a.decode_cycles for a in self.window_accesses(program))
        if smt_active:
            frontend *= params.smt_frontend_factor
        cycles = base + frontend + params.loop_iteration_overhead + penalty
        energy_nj = uops * self.energy.lsd_uop_energy + cycles * self.energy.cycle_energy
        self._last_path[thread] = DeliveryPath.LSD
        return _IterationCost(
            cycles=cycles,
            uops_lsd=uops,
            uops_dsb=0,
            uops_mite=0,
            windows_lsd=windows,
            windows_dsb=0,
            windows_mite=0,
            switches_to_mite=0,
            switches_to_dsb=0,
            lcp_stalls=0,
            lsd_flushes=flushes,
            lsd_captures=0,
            dsb_evictions=0,
            energy_nj=energy_nj,
        )

    # ------------------------------------------------------------------
    # loop execution (dispatched to the selected backend)
    # ------------------------------------------------------------------
    @property
    def backend(self):
        """The resolved :class:`~repro.frontend.backends.FrontendBackend`."""
        if self._backend is None:
            from repro.frontend.backends import create_backend

            self._backend = create_backend(self._backend_name)
        return self._backend

    def _sim_instruments(self, registry, backend_name: str):
        """Per-backend ``sim.points`` / ``sim.latency``, cached per registry."""
        cache = self._sim_cache
        if cache is None or cache[0] is not registry:
            cache = (
                registry,
                registry.counter("sim.points", backend=backend_name),
                registry.histogram("sim.latency", backend=backend_name),
            )
            self._sim_cache = cache
        return cache[1], cache[2]

    def run_loop(
        self,
        program: LoopProgram,
        thread: int = 0,
        smt_active: bool = False,
        exact: bool = False,
    ) -> LoopReport:
        """Execute all iterations of ``program`` on ``thread``.

        ``exact=True`` disables steady-state extrapolation and simulates
        every iteration (used by tests and short loops).  The driver
        itself lives in the selected backend
        (:mod:`repro.frontend.backends`); backends are bit-identical by
        contract, so selection only changes throughput, never reports.
        """
        backend = self.backend
        registry = get_registry()
        start = registry.clock()
        report = backend.run_loop(self, program, thread, smt_active, exact)
        points, latency = self._sim_instruments(registry, backend.name)
        points.inc()
        latency.observe(registry.clock() - start)
        return report

    @staticmethod
    def _is_steady(history: list[tuple]) -> bool:
        """Detect per-iteration cost repeating with period 1 or 2."""
        if len(history) >= 2 and history[-1] == history[-2]:
            return True
        if len(history) >= 4 and history[-1] == history[-3] and history[-2] == history[-4]:
            return True
        return False

    # ------------------------------------------------------------------
    # generators for SMT interleaving
    # ------------------------------------------------------------------
    def iteration_stream(
        self, program: LoopProgram, thread: int, smt_active: bool
    ) -> Iterator[LoopReport]:
        """Yield one report per iteration; used by the SMT interleaver."""
        for _ in range(program.iterations):
            yield self.run_iteration(program, thread, smt_active).to_report()

    def reset_thread(self, thread: int) -> None:
        """Forget a thread's frontend state (context switch / teardown)."""
        self.lsds[thread].flush()
        self.dsb.flush_thread(thread)
        self._last_path[thread] = None
        self._mite_streak[thread] = 0
        self._pending_penalty[thread] = 0.0
        self._pending_flushes[thread] = 0
