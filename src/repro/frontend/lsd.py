"""Loop Stream Detector (LSD) model.

The LSD lives in the IDQ and can continuously replay a loop of up to 64
uops, bypassing both MITE and DSB (Section III-A1).  It is private to a
hardware thread.  Our model is a small state machine:

``IDLE`` --(loop body qualifies for N consecutive iterations)--> ``STREAMING``

A loop body *qualifies* when

* the LSD is enabled on this machine (microcode patch 2 disables it),
* total body uops <= 64,
* every window was delivered from the DSB this iteration (no MITE
  activity — the DSB is inclusive of the LSD, so a loop cannot stream
  until it is fully DSB-resident),
* the body contains no LCP-prefixed instructions (those always decode
  through MITE), and
* the misalignment rule holds (below).

**Misalignment rule** (reverse-engineered from Section III-C): group the
body's blocks by the DSB set of their first window; for each set with
``a`` aligned and ``m`` misaligned (window-spanning) blocks, the LSD
collides — and the loop can never stream — if ``m >= 1 and a + 2m >
ways`` or ``m >= lsd_misalign_limit`` (4).  This reproduces every
aligned+misaligned combination the paper reports as defeating the LSD
({7a+1m}, {5a+2m}, {6a+2m}, {3a+3m}, {4a+3m}, {5a+3m}, and 4 misaligned
blocks alone) while letting fully-aligned chains of <= 8 blocks stream.

While streaming, an eviction of any loop window from the DSB flushes the
LSD (inclusive hierarchy, Section III-B), and delivery falls back to
DSB+MITE.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.frontend.params import FrontendParams
from repro.isa.program import LoopProgram

__all__ = ["LsdState", "LoopStreamDetector", "misalignment_collides"]

#: Identity of a loop body: the tuple of its blocks' base addresses.
LoopKey = tuple[int, ...]


class LsdState(enum.Enum):
    IDLE = "idle"
    STREAMING = "streaming"


def loop_key(program: LoopProgram) -> LoopKey:
    """Stable identity of a loop body for LSD tracking."""
    return tuple(block.base for block in program.body)


def misalignment_collides(program: LoopProgram, params: FrontendParams) -> bool:
    """Apply the reverse-engineered LSD misalignment-collision rule."""
    aligned: Counter[int] = Counter()
    misaligned: Counter[int] = Counter()
    period = params.dsb_sets * params.window_bytes
    for block in program.body:
        first_window = block.windows[0]
        dsb_set = (first_window % period) // params.window_bytes
        if block.spans_windows:
            misaligned[dsb_set] += 1
        else:
            aligned[dsb_set] += 1
    for dsb_set, m in misaligned.items():
        if m >= params.lsd_misalign_limit:
            return True
        if m >= 1 and aligned[dsb_set] + 2 * m > params.dsb_ways:
            return True
    return False


@dataclass
class LsdStats:
    captures: int = 0
    flushes: int = 0
    streamed_iterations: int = 0


class LoopStreamDetector:
    """Per-hardware-thread LSD state machine."""

    def __init__(self, params: FrontendParams | None = None, enabled: bool = True) -> None:
        self.params = params or FrontendParams()
        self.enabled = enabled
        self.state = LsdState.IDLE
        self.stats = LsdStats()
        self._candidate: LoopKey | None = None
        self._qualify_streak = 0
        self._loop_windows: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    # structural qualification (independent of dynamic DSB state)
    # ------------------------------------------------------------------
    def structurally_qualifies(self, program: LoopProgram) -> bool:
        """Can this body ever stream from the LSD?"""
        return self.enabled and self.body_qualifies(program)

    def body_qualifies(self, program: LoopProgram) -> bool:
        """The enabled-independent part of :meth:`structurally_qualifies`.

        Pure in (program, params), so callers may cache it per program;
        ``enabled`` must be re-read at use time because microcode
        patches toggle it on a live core (``Core.set_lsd_enabled``).
        """
        if program.uops_per_iteration > self.params.lsd_capacity:
            return False
        if program.lcp_instructions_per_iteration:
            return False
        if misalignment_collides(program, self.params):
            return False
        return True

    # ------------------------------------------------------------------
    # dynamic protocol, driven by the engine once per loop iteration
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when nothing dynamic is in flight: no stream, no candidate.

        The vectorized backend uses this to decide whether a run starts
        from a clean LSD — any partial qualify streak or active stream
        means history matters and the run must take the reference path.
        """
        return (
            self.state is LsdState.IDLE
            and self._candidate is None
            and self._qualify_streak == 0
        )

    def is_streaming(self, program: LoopProgram) -> bool:
        """True if this iteration's uops come straight from the LSD."""
        return (
            self.state is LsdState.STREAMING
            and self._candidate == loop_key(program)
        )

    def observe_iteration(self, program: LoopProgram, all_from_dsb: bool) -> None:
        """Record one completed iteration of ``program``.

        ``all_from_dsb`` is True when every window of the iteration was
        serviced by the DSB (or the LSD itself).  Enough consecutive such
        iterations of a structurally-qualified loop start streaming.
        """
        key = loop_key(program)
        if self.state is LsdState.STREAMING:
            if self._candidate == key:
                self.stats.streamed_iterations += 1
                return
            # A different loop arrived: the old stream ends.
            self._reset()
        if not self.structurally_qualifies(program) or not all_from_dsb:
            self._candidate = None
            self._qualify_streak = 0
            return
        if self._candidate != key:
            self._candidate = key
            self._qualify_streak = 0
        self._qualify_streak += 1
        if self._qualify_streak >= self.params.lsd_detect_iterations:
            self.state = LsdState.STREAMING
            self.stats.captures += 1
            self._loop_windows = frozenset(program.windows)

    def on_misaligned_set_touch(
        self, window_addr: int, window_bytes: int, half_sets: int
    ) -> bool:
        """Flush if a sibling thread's misaligned access collides with us.

        ``window_addr`` is the window a *different* hardware thread just
        touched via a window-spanning block; if any window of our
        streaming loop folds to the same SMT-mode DSB set, the stream
        collapses and delivery falls back to the DSB (Section IV-B).
        """
        if self.state is not LsdState.STREAMING:
            return False
        touched = (window_addr // window_bytes) % half_sets
        for window in self._loop_windows:
            if (window // window_bytes) % half_sets == touched:
                self.flush()
                return True
        return False

    def on_dsb_eviction(self, window_addr: int) -> bool:
        """Inclusive-hierarchy flush: a loop window left the DSB.

        Returns True if the LSD was streaming and had to flush.
        """
        if self.state is LsdState.STREAMING and window_addr in self._loop_windows:
            self.flush()
            return True
        return False

    def flush(self) -> bool:
        """Unconditional flush (loop exit, repartition, different code)."""
        was_streaming = self.state is LsdState.STREAMING
        if was_streaming:
            self.stats.flushes += 1
        self._reset()
        return was_streaming

    def _reset(self) -> None:
        self.state = LsdState.IDLE
        self._candidate = None
        self._qualify_streak = 0
        self._loop_windows = frozenset()
