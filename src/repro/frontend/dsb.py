"""Decoded Stream Buffer (DSB, micro-op cache) model.

Geometry follows Table I: 32 sets x 8 ways, each line holding the uops of
one 32-byte instruction window (up to 6 uops per line; windows decoding to
more uops occupy multiple ways, up to 3, beyond which the window is not
cacheable and always decodes through MITE).

Indexing (Section III-A2):

* single-thread mode: set index is ``addr[9:5]`` — 32 sets;
* SMT mode (both hardware threads active): the paper's Figure 2 shows the
  DSB is *set partitioned*: each thread sees 16 sets, and a thread's
  addresses whose ``addr[9:5]`` values differ by 16 collide with each
  other.  We model this by folding the index to ``addr[9:5] mod 16`` for
  both threads while SMT is active.  Lines are virtually tagged per
  thread (no cross-thread sharing), and the two threads' lines compete
  for ways within the folded sets.  This single mechanism reproduces both
  experimental observations in the paper: the mod-16 self-conflicts of
  Figure 2 *and* the cross-thread evictions that drive the MT
  eviction-based attack of Section IV-A.

Replacement is LRU within a set.  Evictions are reported to registered
listeners so the LSD can implement the inclusive-hierarchy flush
(eviction from DSB flushes the LSD, Section III).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.frontend.params import FrontendParams

__all__ = ["DecodedStreamBuffer", "DsbLine", "DsbStats"]

#: A DSB line is identified by (hardware thread, window-aligned address).
LineKey = tuple[int, int]

#: Callback signature for eviction listeners: (thread, window_addr).
EvictionListener = Callable[[int, int], None]

#: Windows needing more than this many ways are never cached (stay MITE).
MAX_WAYS_PER_WINDOW = 3


@dataclass
class DsbLine:
    """One cached instruction window.

    Attributes
    ----------
    uops:
        Total uops of the window's instructions.
    ways:
        Ways this window occupies (``ceil(uops / 6)``).
    """

    uops: int
    ways: int


@dataclass
class DsbStats:
    """Aggregate DSB event counters (per DSB instance)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    uncacheable_lookups: int = 0

    def snapshot(self) -> "DsbStats":
        return DsbStats(
            self.hits,
            self.misses,
            self.insertions,
            self.evictions,
            self.uncacheable_lookups,
        )

    def delta(self, earlier: "DsbStats") -> "DsbStats":
        return DsbStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.insertions - earlier.insertions,
            self.evictions - earlier.evictions,
            self.uncacheable_lookups - earlier.uncacheable_lookups,
        )


class DecodedStreamBuffer:
    """The micro-op cache shared by a core's hardware threads."""

    def __init__(self, params: FrontendParams | None = None) -> None:
        self.params = params or FrontendParams()
        # One OrderedDict per physical set: key -> DsbLine, LRU order
        # (oldest first).  Capacity is counted in ways, not entries.
        self._sets: list[OrderedDict[LineKey, DsbLine]] = [
            OrderedDict() for _ in range(self.params.dsb_sets)
        ]
        self._listeners: list[EvictionListener] = []
        self.stats = DsbStats()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def effective_index(
        self, window_addr: int, smt_active: bool, thread: int = 0
    ) -> int:
        """Physical set index for ``window_addr`` under the current mode.

        With ``smt_isolation`` (a modelled defense) each thread's folded
        index lands in its own exclusive half, so the threads can never
        compete for ways.
        """
        if window_addr % self.params.window_bytes:
            raise ConfigurationError(
                f"address {window_addr:#x} is not window-aligned"
            )
        index = (window_addr // self.params.window_bytes) % self.params.dsb_sets
        if smt_active and self.params.smt_partitioning:
            index %= self.params.dsb_sets // 2
            if self.params.smt_isolation:
                index += (thread % 2) * (self.params.dsb_sets // 2)
        return index

    def ways_for_uops(self, uops: int) -> int:
        """Ways needed to cache a window of ``uops`` uops (0 = uncacheable)."""
        if uops <= 0:
            raise ConfigurationError(f"window uop count must be positive, got {uops}")
        ways = -(-uops // self.params.dsb_line_uops)  # ceil division
        return ways if ways <= MAX_WAYS_PER_WINDOW else 0

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_eviction_listener(self, listener: EvictionListener) -> None:
        """Register a callback invoked as ``listener(thread, window_addr)``."""
        self._listeners.append(listener)

    def _notify_eviction(self, key: LineKey) -> None:
        for listener in self._listeners:
            listener(key[0], key[1])

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def lookup(self, thread: int, window_addr: int, smt_active: bool) -> bool:
        """Probe for a window; updates LRU on hit."""
        entry_set = self._sets[self.effective_index(window_addr, smt_active, thread)]
        key = (thread, window_addr)
        line = entry_set.get(key)
        if line is None:
            self.stats.misses += 1
            return False
        entry_set.move_to_end(key)
        self.stats.hits += 1
        return True

    def resident(self, thread: int, window_addr: int, smt_active: bool) -> bool:
        """Probe without touching LRU state or statistics."""
        entry_set = self._sets[self.effective_index(window_addr, smt_active, thread)]
        return (thread, window_addr) in entry_set

    def insert(
        self, thread: int, window_addr: int, uops: int, smt_active: bool
    ) -> list[LineKey]:
        """Insert a decoded window; returns the evicted line keys.

        Uncacheable windows (needing more than 3 ways) are ignored and
        counted in ``stats.uncacheable_lookups``.
        """
        ways = self.ways_for_uops(uops)
        if ways == 0:
            self.stats.uncacheable_lookups += 1
            return []
        index = self.effective_index(window_addr, smt_active, thread)
        entry_set = self._sets[index]
        key = (thread, window_addr)
        if key in entry_set:
            entry_set.move_to_end(key)
            return []
        evicted: list[LineKey] = []
        while self._used_ways(entry_set) + ways > self.params.dsb_ways:
            victim_key = self._pick_victim(entry_set)
            del entry_set[victim_key]
            evicted.append(victim_key)
            self.stats.evictions += 1
            self._notify_eviction(victim_key)
        entry_set[key] = DsbLine(uops=uops, ways=ways)
        self.stats.insertions += 1
        return evicted

    def _pick_victim(self, entry_set: OrderedDict[LineKey, DsbLine]) -> LineKey:
        """Choose the eviction victim per the configured policy.

        ``lru``: the set's oldest entry.  ``hashed``: a deterministic
        pseudo-random pick keyed on the insertion counter — under cyclic
        over-capacity access this retains roughly ways/working-set of
        the loop in the DSB instead of thrashing to zero, which is the
        behaviour the paper's Figure 3 measurements imply.
        """
        if self.params.dsb_replacement == "lru":
            return next(iter(entry_set))
        # Pseudo-random (MRU-protected) victim: Knuth multiplicative hash
        # over the insertion counter, high bits for mixing; the most
        # recently used entry is never the victim, so a freshly fetched
        # window survives at least until the next conflict.
        keys = list(entry_set)
        candidates = keys[:-1] if len(keys) > 1 else keys
        mixed = (self.stats.insertions * 2654435761) & 0xFFFFFFFF
        return candidates[(mixed >> 16) % len(candidates)]

    def invalidate(self, thread: int, window_addr: int) -> bool:
        """Drop a specific line wherever it currently resides."""
        key = (thread, window_addr)
        for entry_set in self._sets:
            if key in entry_set:
                del entry_set[key]
                return True
        return False

    def flush_thread(self, thread: int) -> int:
        """Invalidate every line belonging to ``thread``; returns the count."""
        dropped = 0
        for entry_set in self._sets:
            victims = [key for key in entry_set if key[0] == thread]
            for key in victims:
                del entry_set[key]
                dropped += 1
        return dropped

    def flush(self) -> None:
        """Invalidate the whole DSB (used on repartition in strict mode)."""
        for entry_set in self._sets:
            entry_set.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _used_ways(entry_set: OrderedDict[LineKey, DsbLine]) -> int:
        return sum(line.ways for line in entry_set.values())

    def occupancy(self) -> int:
        """Total ways currently in use across all sets."""
        return sum(self._used_ways(s) for s in self._sets)

    def set_contents(self, index: int) -> list[LineKey]:
        """Keys resident in physical set ``index``, LRU-oldest first."""
        return list(self._sets[index])

    def resident_windows(self, thread: int) -> set[int]:
        """All window addresses currently cached for ``thread``."""
        return {
            key[1]
            for entry_set in self._sets
            for key in entry_set
            if key[0] == thread
        }
