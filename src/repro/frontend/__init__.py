"""Cycle-approximate model of the Intel Skylake-family processor frontend.

Implements the three micro-op delivery paths the paper studies:

* **MITE** (:mod:`repro.frontend.mite`) — the legacy fetch/decode pipeline:
  16 bytes/cycle fetch, length-changing-prefix (LCP) predecode stalls, and
  the DSB-to-MITE switch penalty.
* **DSB** (:mod:`repro.frontend.dsb`) — the micro-op cache: 32 sets x 8
  ways of 32-byte windows holding up to 6 uops each, LRU replacement,
  per-thread virtual tagging, and SMT set partitioning.
* **LSD** (:mod:`repro.frontend.lsd`) — the loop stream detector: captures
  qualified loops of up to 64 uops and streams them from the IDQ,
  flushing on DSB eviction (inclusivity) or misalignment collisions.

:class:`repro.frontend.engine.FrontendEngine` orchestrates the paths and
produces per-loop delivery reports (cycles, per-path uop counts, switch
and stall events, energy).
"""

from repro.frontend.params import FrontendParams, EnergyParams
from repro.frontend.paths import DeliveryPath
from repro.frontend.dsb import DecodedStreamBuffer, DsbStats
from repro.frontend.lsd import LoopStreamDetector, LsdState
from repro.frontend.mite import MiteDecoder
from repro.frontend.engine import FrontendEngine, LoopReport
from repro.frontend.backends import (
    FrontendBackend,
    available_backends,
    create_backend,
    resolve_backend_name,
    set_default_backend,
)

__all__ = [
    "FrontendParams",
    "EnergyParams",
    "DeliveryPath",
    "DecodedStreamBuffer",
    "DsbStats",
    "LoopStreamDetector",
    "LsdState",
    "MiteDecoder",
    "FrontendEngine",
    "LoopReport",
    "FrontendBackend",
    "available_backends",
    "create_backend",
    "resolve_backend_name",
    "set_default_backend",
]
