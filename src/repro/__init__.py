"""repro — reproduction of "Leaky Frontends" (HPCA 2022).

A production-quality simulation study of the security vulnerabilities in
Intel processor frontends described by Deng, Huang and Szefer: timing and
power covert channels built from the MITE / DSB / LSD micro-op delivery
paths, their application against SGX enclaves and inside Spectre v1, and
microcode-patch fingerprinting.

Quickstart::

    from repro import Machine, GOLD_6226
    from repro.channels import NonMtEvictionChannel

    machine = Machine(GOLD_6226, seed=42)
    channel = NonMtEvictionChannel(machine)
    result = channel.transmit([1, 0, 1, 1, 0])
    print(result.received_bits, result.kbps, result.error_rate)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.errors import (
    ChannelError,
    ConfigurationError,
    EnclaveError,
    ExecutionError,
    LayoutError,
    MeasurementError,
    ReproError,
    SpectreError,
)
from repro.machine import (
    ALL_SPECS,
    GOLD_6226,
    XEON_E2174G,
    XEON_E2286G,
    XEON_E2288G,
    Machine,
    MachineSpec,
    spec_by_name,
)
from repro.frontend import DeliveryPath, FrontendParams, EnergyParams, LoopReport
from repro.isa import BlockChainLayout, LoopProgram, MixBlock, standard_mix_block
from repro.rng import RngFactory

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "LayoutError",
    "ExecutionError",
    "MeasurementError",
    "ChannelError",
    "EnclaveError",
    "SpectreError",
    # machines
    "Machine",
    "MachineSpec",
    "GOLD_6226",
    "XEON_E2174G",
    "XEON_E2286G",
    "XEON_E2288G",
    "ALL_SPECS",
    "spec_by_name",
    # frontend
    "DeliveryPath",
    "FrontendParams",
    "EnergyParams",
    "LoopReport",
    # isa
    "BlockChainLayout",
    "LoopProgram",
    "MixBlock",
    "standard_mix_block",
    # infrastructure
    "RngFactory",
]
