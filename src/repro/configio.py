"""Experiment-configuration (de)serialisation.

Research artifacts live or die on exact reproducibility.  Everything an
experiment depends on here is plain data — the machine spec, the
frontend/energy coefficients, the channel parameters, and the seed — so
a single JSON document pins a run completely::

    config = ExperimentConfig(spec=GOLD_6226, seed=42,
                              channel=ChannelConfig(d=6))
    config.save("experiment.json")
    ...
    machine = ExperimentConfig.load("experiment.json").build_machine()

Round-tripping is lossless and validated by construction (every dataclass
re-runs its ``__post_init__`` checks on load).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.channels.base import ChannelConfig
from repro.errors import ConfigurationError
from repro.frontend.params import EnergyParams, FrontendParams
from repro.machine.machine import Machine
from repro.machine.specs import MachineSpec, spec_by_name

__all__ = ["ExperimentConfig"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ExperimentConfig:
    """A fully pinned experiment: machine + model + channel + seed."""

    spec: MachineSpec
    seed: int = 0
    params: FrontendParams = field(default_factory=FrontendParams)
    energy: EnergyParams = field(default_factory=EnergyParams)
    channel: ChannelConfig = field(default_factory=ChannelConfig)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build_machine(self) -> Machine:
        """Instantiate the pinned machine."""
        return Machine(
            self.spec, seed=self.seed, params=self.params, energy=self.energy
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": _FORMAT_VERSION,
            "seed": self.seed,
            "spec": dataclasses.asdict(self.spec),
            "params": dataclasses.asdict(self.params),
            "energy": dataclasses.asdict(self.energy),
            "channel": dataclasses.asdict(self.channel),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        version = data.get("format_version")
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported config format version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        try:
            return cls(
                spec=MachineSpec(**data["spec"]),
                seed=int(data["seed"]),
                params=FrontendParams(**data["params"]),
                energy=EnergyParams(**data["energy"]),
                channel=ChannelConfig(**data["channel"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed experiment config: {exc}") from exc

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentConfig":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read config {path}: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @classmethod
    def for_machine(cls, name: str, seed: int = 0, **channel_kwargs) -> "ExperimentConfig":
        """Config for a Table I machine by name, with channel overrides."""
        return cls(
            spec=spec_by_name(name),
            seed=seed,
            channel=ChannelConfig(**channel_kwargs) if channel_kwargs else ChannelConfig(),
        )
