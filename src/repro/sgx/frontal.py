"""The Frontal attack: interrupt-driven frontend timing of enclave code.

Reproduces the mechanism of arXiv 2005.11516 on this simulator: a
malicious OS single-steps an SGX enclave with timer interrupts (AEX /
ERESUME around every step) and times each step.  A *balanced* secret-
dependent branch — both sides execute the same instruction sequence —
still leaks its direction, because the two sides are laid out at
different code addresses and therefore different 16-byte-window
**alignments**: the misaligned side pays extra decode work every time
the frontend restarts cold.

The model maps each element of the real attack onto the substrate:

* **single-stepping** — every step is one `Enclave.ecall` (the
  ERESUME…AEX round trip of ``EnclaveParams``) around a short run of
  the current path's block chain;
* **interrupt side effect** — the attacker's interrupt handler runs
  between steps and evicts the enclave's frontend state, so each step
  executes *cold* (``Machine.reset()``), which is precisely what makes
  the per-window alignment difference visible (a warm DSB would serve
  both paths identically);
* **balanced branch** — the taken path is the not-taken path's chain
  rebuilt ``misaligned=True`` (``MISALIGN_OFFSET`` into the fetch
  window) in a different DSB set: same blocks, same micro-op counts,
  different alignment;
* **template classification** — the attacker first single-steps
  known-direction executions of both paths, fits a
  :class:`~repro.analysis.threshold.ThresholdDecoder` on the per-branch
  mean step times, then classifies each secret branch.

The enclave slowdown (×4) *amplifies* the alignment delta — SGX makes
this attack easier, not harder, matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bits import pack_chunks, unpack_chunks
from repro.analysis.outcome import ScenarioOutcome
from repro.analysis.threshold import calibrate_threshold
from repro.errors import ConfigurationError, EnclaveError
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine
from repro.sgx.enclave import Enclave, EnclaveParams

__all__ = ["FrontalParams", "FrontalAttack"]


@dataclass(frozen=True)
class FrontalParams:
    """Tunables of the single-stepping attacker.

    blocks_per_path:
        Chain length of each branch side (same for both — the branch is
        balanced).
    step_iterations:
        Loop iterations executed inside one interrupt window; longer
        windows integrate more per-window decode cost per timing shot.
    steps_per_branch:
        Interrupt windows averaged per secret branch execution; the
        mean suppresses occasional measurement spikes.
    calibration_reps:
        Known-direction branch executions per class used to fit the
        timing template.
    not_taken_set / taken_set:
        DSB sets the two sides' chains are placed in.
    """

    blocks_per_path: int = 6
    step_iterations: int = 30
    steps_per_branch: int = 5
    calibration_reps: int = 8
    not_taken_set: int = 3
    taken_set: int = 9

    def __post_init__(self) -> None:
        if self.blocks_per_path < 1:
            raise ConfigurationError("paths need at least one block")
        if self.step_iterations < 1 or self.steps_per_branch < 1:
            raise ConfigurationError("step counts must be >= 1")
        if self.calibration_reps < 2:
            raise ConfigurationError(
                "template calibration needs at least 2 reps per class"
            )
        if self.not_taken_set == self.taken_set:
            raise ConfigurationError(
                "the two branch sides must live in different DSB sets"
            )


class FrontalAttack:
    """Recovers secret branch directions by single-stepping an enclave."""

    def __init__(
        self,
        machine: Machine,
        secret: bytes,
        params: FrontalParams | None = None,
        enclave_params: EnclaveParams | None = None,
    ) -> None:
        if not secret:
            raise EnclaveError("frontal attack needs a non-empty secret")
        self.machine = machine
        self.params = params or FrontalParams()
        self.enclave = Enclave(machine, enclave_params)
        self._secret = secret
        self.secret_bits = pack_chunks(secret, chunk_bits=1)
        p = self.params
        layout = machine.layout()
        # The balanced branch: identical chains, one aligned and one
        # pushed MISALIGN_OFFSET into its fetch windows.
        self._paths = {
            0: LoopProgram(
                layout.chain(p.not_taken_set, p.blocks_per_path, label="frontal.nt"),
                p.step_iterations,
                "frontal.nt",
            ),
            1: LoopProgram(
                layout.chain(
                    p.taken_set,
                    p.blocks_per_path,
                    misaligned=True,
                    first_slot=p.blocks_per_path,
                    label="frontal.t",
                ),
                p.step_iterations,
                "frontal.t",
            ),
        }
        self._decoder = None
        #: True attack cycles (enclave steps, calibration excluded).
        self.cycles = 0.0

    # ------------------------------------------------------------------
    def _step(self, bit: int) -> tuple[float, float]:
        """One interrupt window: cold restart, ERESUME, run, AEX, time.

        Returns ``(measured, true_cycles)``.
        """
        # The interrupt handler and the attacker's collection code ran
        # on this core since the last step: the enclave's frontend
        # state is gone.
        self.machine.reset()
        report = self.enclave.ecall(self._paths[bit])
        measured = self.machine.timer.measure(report.cycles).measured_cycles
        return measured, report.cycles

    def _branch_mean(self, bit: int, charge: bool = True) -> float:
        """Mean step time over one branch execution's interrupt windows."""
        total_measured = 0.0
        for _ in range(self.params.steps_per_branch):
            measured, true_cycles = self._step(bit)
            total_measured += measured
            if charge:
                self.cycles += true_cycles
        return total_measured / self.params.steps_per_branch

    # ------------------------------------------------------------------
    def calibrate(self):
        """Fit the timing template from known-direction executions."""
        zero_obs = [
            self._branch_mean(0, charge=False)
            for _ in range(self.params.calibration_reps)
        ]
        one_obs = [
            self._branch_mean(1, charge=False)
            for _ in range(self.params.calibration_reps)
        ]
        self._decoder = calibrate_threshold(zero_obs, one_obs)
        return self._decoder

    def run(self) -> ScenarioOutcome:
        """Recover every secret branch direction; returns the outcome.

        Calibration traffic is not charged to the leak rate, matching
        the steady-state convention of the covert channels.
        """
        if self._decoder is None:
            self.calibrate()
        recovered_bits = [
            self._decoder.decide(self._branch_mean(bit))
            for bit in self.secret_bits
        ]
        correct = sum(
            1 for s, r in zip(self.secret_bits, recovered_bits) if s == r
        )
        self.recovered = unpack_chunks(
            recovered_bits, n_bytes=len(self._secret), chunk_bits=1
        )
        return ScenarioOutcome.from_counts(
            label="frontal",
            machine=self.machine.spec.name,
            units_correct=correct,
            units_total=len(self.secret_bits),
            bits=len(self.secret_bits),
            cycles=self.cycles,
            frequency_hz=self.machine.spec.frequency_hz,
            details={
                "steps_per_branch": float(self.params.steps_per_branch),
                "enclave_transitions": float(self.enclave.transitions),
            },
        )
