"""Intel SGX enclave execution model.

Only the properties relevant to the paper's attacks are modelled:

* **transition costs** — EENTER and EEXIT each take thousands of cycles
  (context save/restore, TLB flush).  The paper's attacks amortise this
  with a single entry and exit per transmitted bit.
* **execution slowdown** — enclave code runs slower than the same code
  outside: EPC accesses pay Memory Encryption Engine latency and the
  enclave's working set competes for the protected region.  We model a
  constant multiplicative factor on cycles and energy.
* **shared frontend** — crucially, *nothing* about the DSB/LSD/MITE state
  is partitioned or flushed between enclave and non-enclave execution on
  the same hardware thread (the iTLB flush does not touch decoded-uop
  structures), which is exactly the gap the attacks exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, EnclaveError
from repro.frontend.engine import LoopReport
from repro.isa.program import LoopProgram
from repro.machine.machine import Machine

__all__ = ["Enclave", "EnclaveParams"]


@dataclass(frozen=True)
class EnclaveParams:
    """Cost model of the SGX runtime.

    eenter_cycles / eexit_cycles:
        One-way transition costs (Skylake-measured values are in the
        3,000-8,000 cycle range depending on enclave size).
    slowdown:
        Multiplier on enclave-executed cycles (MEE latency, EPC paging
        pressure).  Applied to energy as well.
    """

    eenter_cycles: float = 7000.0
    eexit_cycles: float = 4000.0
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.eenter_cycles < 0 or self.eexit_cycles < 0:
            raise ConfigurationError("transition costs must be non-negative")
        if self.slowdown < 1.0:
            raise ConfigurationError("enclave slowdown must be >= 1.0")

    @property
    def round_trip_cycles(self) -> float:
        return self.eenter_cycles + self.eexit_cycles


class Enclave:
    """An SGX enclave hosted on a machine.

    The enclave runs loop programs through the host core's frontend —
    sharing the DSB, LSD, and MITE with non-enclave code — while paying
    the enclave execution overheads.
    """

    def __init__(self, machine: Machine, params: EnclaveParams | None = None) -> None:
        if not machine.spec.sgx:
            raise EnclaveError(f"{machine.spec.name} has no SGX support")
        self.machine = machine
        self.params = params or EnclaveParams()
        self._entered = False
        self.transitions = 0

    @property
    def entered(self) -> bool:
        return self._entered

    def enter(self) -> float:
        """EENTER; returns the transition cost in cycles."""
        if self._entered:
            raise EnclaveError("enclave is already entered")
        self._entered = True
        self.transitions += 1
        return self.params.eenter_cycles

    def exit(self) -> float:
        """EEXIT; returns the transition cost in cycles."""
        if not self._entered:
            raise EnclaveError("cannot exit an enclave that was not entered")
        self._entered = False
        self.transitions += 1
        return self.params.eexit_cycles

    def run(
        self, program: LoopProgram, thread: int = 0, smt_active: bool = False
    ) -> LoopReport:
        """Execute a loop inside the enclave (must be entered).

        The returned report's cycles and energy are inflated by the
        enclave slowdown; the *microarchitectural* side effects (DSB
        fills/evictions, LSD streams) are identical to normal execution,
        which is the attack surface.
        """
        if not self._entered:
            raise EnclaveError("enter() the enclave before running code in it")
        report = self.machine.run_loop(program, thread=thread, smt_active=smt_active)
        report.cycles *= self.params.slowdown
        report.energy_nj *= self.params.slowdown
        return report

    def ecall(
        self, program: LoopProgram, thread: int = 0, smt_active: bool = False
    ) -> LoopReport:
        """Convenience: enter, run, exit; transition costs included."""
        enter_cost = self.enter()
        try:
            report = self.run(program, thread=thread, smt_active=smt_active)
        finally:
            exit_cost = self.exit()
        report.cycles += enter_cost + exit_cost
        report.energy_nj += (
            enter_cost + exit_cost
        ) * self.machine.core.energy.cycle_energy
        return report
