"""SGX enclave model and frontend attacks against enclaves (Section VII).

SGX protects enclave memory from a hostile OS, but the processor
*frontend* is shared between enclave and non-enclave code on the same
core — and (for MT attacks) with the sibling hyper-thread.  A sender
Trojan inside the enclave can therefore modulate the frontend paths and
leak to a receiver outside.

* :class:`~repro.sgx.enclave.Enclave` — the execution model: EENTER /
  EEXIT transition costs and the slowdown enclave code pays for EPC
  memory-encryption traffic.
* :class:`~repro.sgx.attacks.SgxNonMtAttack` — the receiver triggers one
  enclave call per bit and times it end to end; the Trojan's
  internal-interference (eviction or misalignment) modulates the time.
* :class:`~repro.sgx.attacks.SgxMtAttack` — the Trojan keeps its own
  enclave thread busy; the receiver on the sibling hyper-thread observes
  its *own* loop timing change when the enclave is active.
"""

from repro.sgx.enclave import Enclave, EnclaveParams
from repro.sgx.attacks import SgxNonMtAttack, SgxMtAttack
from repro.sgx.power_attack import SgxPowerAttack
from repro.sgx.frontal import FrontalAttack, FrontalParams

__all__ = [
    "Enclave",
    "EnclaveParams",
    "SgxNonMtAttack",
    "SgxMtAttack",
    "SgxPowerAttack",
    "FrontalAttack",
    "FrontalParams",
]
